//! The global cycle scheduler.
//!
//! Each session paces its own cycle onto a simulated clock (the per-user
//! timing defense of `toppriv_core::pacing`); the service must then
//! submit the union of all tenants' schedules. [`CycleScheduler`] merges
//! the per-session plans into one time-ordered queue — the service-level
//! counterpart of [`toppriv_core::merge_schedules`], keeping its exact
//! ordering semantics — and drains it with a pool of `std::thread`
//! workers that resolve each submission through the shared
//! [`ResultCache`] / [`SearchEngine`].
//!
//! Draining consumes the queue in time order but does not sleep between
//! submissions: simulated time orders the trace the engine sees, while
//! wall-clock throughput is bounded only by the worker pool. Queue depth
//! and per-submit latency are reported to [`ServiceMetrics`].

use crate::cache::ResultCache;
use crate::metrics::ServiceMetrics;
use crate::session::SessionManager;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use toppriv_core::ScheduledQuery;
use tsearch_search::{SearchEngine, SearchHit};

/// One scheduled submission, tagged with its tenant.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// Owning session id.
    pub session: String,
    /// The paced submission (simulated time, tokens, ground truth).
    pub scheduled: ScheduledQuery,
    /// Results to fetch.
    pub k: usize,
}

/// Outcome of one drained submission.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Owning session id.
    pub session: String,
    /// Ground-truth cycle id within the session (evaluation only).
    pub cycle_id: usize,
    /// Simulated submission time.
    pub time_secs: f64,
    /// Whether this was the genuine query (evaluation only).
    pub is_genuine: bool,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// The genuine query's hits; ghost results are discarded at the
    /// trusted boundary and never materialize here.
    pub hits: Vec<SearchHit>,
}

/// Merges per-session plans and drains them on a worker pool.
pub struct CycleScheduler {
    engine: Arc<SearchEngine>,
    cache: Option<Arc<ResultCache>>,
    metrics: Arc<ServiceMetrics>,
    workers: usize,
}

impl CycleScheduler {
    /// A scheduler over explicit parts.
    pub fn new(
        engine: Arc<SearchEngine>,
        cache: Option<Arc<ResultCache>>,
        metrics: Arc<ServiceMetrics>,
        workers: usize,
    ) -> Self {
        CycleScheduler {
            engine,
            cache,
            metrics,
            workers: workers.max(1),
        }
    }

    /// A scheduler sharing a [`SessionManager`]'s engine, cache, and
    /// metrics registry.
    pub fn for_manager(manager: &SessionManager, workers: usize) -> Self {
        Self::new(
            manager.engine().clone(),
            manager.cache().cloned(),
            manager.metrics_registry().clone(),
            workers,
        )
    }

    /// Merges per-session plans into one globally time-ordered queue —
    /// the same stable ascending-time order as
    /// [`toppriv_core::merge_schedules`].
    pub fn merge(plans: Vec<Vec<PlannedQuery>>) -> Vec<PlannedQuery> {
        let mut all: Vec<PlannedQuery> = plans.into_iter().flatten().collect();
        all.sort_by(|a, b| {
            a.scheduled
                .time_secs
                .partial_cmp(&b.scheduled.time_secs)
                .expect("finite time")
        });
        all
    }

    /// Drains a merged queue: workers claim submissions in queue order and
    /// resolve them through the cache/engine. Returns outcomes sorted by
    /// simulated time (ties broken by queue position).
    pub fn drain(&self, queue: Vec<PlannedQuery>) -> Vec<SubmitOutcome> {
        let total = queue.len();
        self.metrics.set_queue_depth(total);
        let next = AtomicUsize::new(0);
        let outcomes: Mutex<Vec<(usize, SubmitOutcome)>> = Mutex::new(Vec::with_capacity(total));
        std::thread::scope(|s| {
            for _ in 0..self.workers.min(total.max(1)) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let plan = &queue[i];
                    let (hits, cache_hit) = SessionManager::resolve(
                        &self.engine,
                        self.cache.as_deref(),
                        &self.metrics,
                        &plan.scheduled.tokens,
                        plan.k,
                        plan.scheduled.is_genuine,
                    );
                    self.metrics.set_queue_depth(total.saturating_sub(i + 1));
                    let outcome = SubmitOutcome {
                        session: plan.session.clone(),
                        cycle_id: plan.scheduled.cycle_id,
                        time_secs: plan.scheduled.time_secs,
                        is_genuine: plan.scheduled.is_genuine,
                        cache_hit,
                        // Ghost results are discarded inside the trusted
                        // boundary; only genuine hits leave the scheduler.
                        hits: if plan.scheduled.is_genuine {
                            hits
                        } else {
                            Vec::new()
                        },
                    };
                    outcomes
                        .lock()
                        .expect("outcome collector poisoned")
                        .push((i, outcome));
                });
            }
        });
        self.metrics.set_queue_depth(0);
        let mut outcomes = outcomes.into_inner().expect("outcome collector poisoned");
        outcomes.sort_by_key(|&(i, _)| i);
        outcomes.into_iter().map(|(_, o)| o).collect()
    }

    /// Convenience: merge then drain.
    pub fn run(&self, plans: Vec<Vec<PlannedQuery>>) -> Vec<SubmitOutcome> {
        self.drain(Self::merge(plans))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toppriv_core::merge_schedules;

    fn plan(session: &str, times: &[f64]) -> Vec<PlannedQuery> {
        times
            .iter()
            .enumerate()
            .map(|(i, &t)| PlannedQuery {
                session: session.to_string(),
                scheduled: ScheduledQuery {
                    time_secs: t,
                    tokens: vec![i as u32],
                    is_genuine: i == 0,
                    cycle_id: 0,
                },
                k: 10,
            })
            .collect()
    }

    #[test]
    fn merge_is_globally_time_ordered() {
        let merged = CycleScheduler::merge(vec![
            plan("a", &[3.0, 1.0, 2.0]),
            plan("b", &[0.5, 2.5]),
            plan("c", &[]),
        ]);
        assert_eq!(merged.len(), 5);
        assert!(merged
            .windows(2)
            .all(|w| w[0].scheduled.time_secs <= w[1].scheduled.time_secs));
        assert_eq!(merged[0].session, "b");
    }

    #[test]
    fn merge_matches_core_merge_schedules() {
        // The service-level merge must order submissions exactly like the
        // core's merge_schedules on the projected schedule (stable sort by
        // time, ties keeping input order).
        let plans = vec![plan("a", &[2.0, 1.0, 1.0]), plan("b", &[1.0, 3.0])];
        let flat: Vec<ScheduledQuery> = plans
            .iter()
            .flatten()
            .map(|p| p.scheduled.clone())
            .collect();
        let expected = merge_schedules(flat);
        let merged = CycleScheduler::merge(plans);
        assert_eq!(merged.len(), expected.len());
        for (m, e) in merged.iter().zip(&expected) {
            assert_eq!(m.scheduled.time_secs, e.time_secs);
            assert_eq!(m.scheduled.tokens, e.tokens);
        }
    }
}
