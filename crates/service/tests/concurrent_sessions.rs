//! Integration tests: many tenants sharing one model/engine concurrently.
//!
//! The privacy invariant asserted per session is the one the paper's
//! design guarantees per cycle: the protected intention never ends up
//! more prominent than the decoy topics (`exposure ≤ mask_level`), and a
//! satisfied cycle keeps `exposure ≤ ε2`.

use std::sync::Arc;
use toppriv_service::{CycleScheduler, ResultCache, SessionManager};
use tsearch_corpus::{generate_workload, CorpusConfig, SyntheticCorpus, WorkloadConfig};
use tsearch_lda::{LdaConfig, LdaModel, LdaTrainer};
use tsearch_search::{ScoringModel, SearchEngine, ShardedEngine};
use tsearch_text::Analyzer;

struct Stack {
    corpus: SyntheticCorpus,
    engine: Arc<SearchEngine>,
    model: Arc<LdaModel>,
}

/// A small synthetic stack with clear topical structure.
fn stack() -> Stack {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: 300,
        num_topics: 8,
        terms_per_topic: 60,
        ..CorpusConfig::default()
    });
    let docs = corpus.token_docs();
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let engine = Arc::new(SearchEngine::build(
        &docs,
        &texts,
        Analyzer::new(),
        corpus.vocab.clone(),
        ScoringModel::TfIdfCosine,
    ));
    let model = Arc::new(LdaTrainer::train(
        &docs,
        corpus.vocab.len(),
        LdaConfig {
            iterations: 25,
            ..LdaConfig::with_topics(16)
        },
    ));
    Stack {
        corpus,
        engine,
        model,
    }
}

#[test]
fn concurrent_sessions_hold_the_privacy_invariant() {
    let stack = stack();
    let manager =
        Arc::new(SessionManager::new(stack.engine.clone(), stack.model.clone()).with_cache(2048));
    let queries = generate_workload(
        &stack.corpus,
        &WorkloadConfig {
            num_queries: 24,
            ..WorkloadConfig::default()
        },
    );
    const SESSIONS: usize = 10;
    for s in 0..SESSIONS {
        manager.open_session(&format!("user-{s}")).unwrap();
    }

    // Every session searches concurrently from its own thread.
    std::thread::scope(|scope| {
        for s in 0..SESSIONS {
            let manager = manager.clone();
            let queries = &queries;
            scope.spawn(move || {
                let id = format!("user-{s}");
                for q in 0..4 {
                    let query = &queries[(s + q * 3) % queries.len()];
                    let outcome = manager.search_tokens(&id, &query.tokens, 10).unwrap();
                    let m = &outcome.report.metrics;
                    // The core invariant: the intention is never the most
                    // prominent topic of the submitted cycle.
                    assert!(
                        m.exposure <= m.mask_level + 1e-9,
                        "session {id}: exposure {} above mask level {}",
                        m.exposure,
                        m.mask_level
                    );
                    if outcome.report.satisfied && !outcome.report.intention.is_empty() {
                        assert!(
                            m.exposure <= 0.01 + 1e-9,
                            "session {id}: satisfied cycle exposes {}",
                            m.exposure
                        );
                    }
                }
            });
        }
    });

    // Per-session accounting is isolated and complete.
    let snapshot = manager.metrics();
    assert_eq!(snapshot.sessions.len(), SESSIONS);
    for m in &snapshot.sessions {
        assert_eq!(m.cycles, 4, "{} ran 4 searches", m.session);
        assert!(m.queries_emitted >= 4);
        assert!(
            m.mean_exposure <= m.mean_mask_level + 1e-9,
            "{}: mean exposure above mean mask",
            m.session
        );
    }
    // Sessions shared queries, and ghost generation is content-
    // deterministic, so the cross-tenant cache must have fired.
    assert!(
        snapshot.global.cache_hit_rate > 0.0,
        "shared workload must produce cache hits"
    );
    assert_eq!(
        snapshot.global.genuine_served + snapshot.global.ghosts_processed,
        snapshot.global.submitted
    );
}

#[test]
fn cached_results_equal_engine_results() {
    let stack = stack();
    let manager = SessionManager::new(stack.engine.clone(), stack.model.clone()).with_cache(1024);
    manager.open_session("a").unwrap();
    manager.open_session("b").unwrap();
    let queries = generate_workload(
        &stack.corpus,
        &WorkloadConfig {
            num_queries: 4,
            ..WorkloadConfig::default()
        },
    );
    for q in &queries {
        let first = manager.search_tokens("a", &q.tokens, 10).unwrap();
        // Session b repeats the same query: its genuine member (and the
        // deterministic ghosts) now resolve from cache.
        let second = manager.search_tokens("b", &q.tokens, 10).unwrap();
        assert!(second.cache_hits > 0, "repeat cycle should hit cache");
        assert_eq!(first.hits.len(), second.hits.len());
        for (x, y) in first.hits.iter().zip(&second.hits) {
            assert_eq!(x.doc_id, y.doc_id);
            assert!((x.score - y.score).abs() < 1e-12);
        }
    }
}

#[test]
fn paced_schedules_merge_and_drain_in_time_order() {
    let stack = stack();
    let manager =
        Arc::new(SessionManager::new(stack.engine.clone(), stack.model.clone()).with_cache(1024));
    let queries = generate_workload(
        &stack.corpus,
        &WorkloadConfig {
            num_queries: 8,
            ..WorkloadConfig::default()
        },
    );
    for s in 0..4 {
        manager.open_session(&format!("t{s}")).unwrap();
    }
    let mut plans = Vec::new();
    for (s, id) in manager.session_ids().iter().enumerate() {
        for q in 0..2 {
            plans.push(
                manager
                    .plan_cycle(id, &queries[(s + q) % queries.len()].tokens, 10)
                    .unwrap(),
            );
        }
    }
    let expected: usize = plans.iter().map(|p| p.len()).sum();
    let scheduler = CycleScheduler::for_manager(&manager, 4);
    let outcomes = scheduler.run(plans);
    assert_eq!(outcomes.len(), expected, "every submission drained");
    // Global time order (the adversary-visible trace order).
    assert!(
        outcomes
            .windows(2)
            .all(|w| w[0].time_secs <= w[1].time_secs),
        "outcomes must be time-ordered"
    );
    // Exactly one genuine submission per planned cycle, and genuine hits
    // are populated while ghost results are discarded.
    let genuine = outcomes.iter().filter(|o| o.is_genuine).count();
    assert_eq!(genuine, 8);
    assert!(outcomes.iter().all(|o| o.is_genuine || o.hits.is_empty()));
    assert!(outcomes
        .iter()
        .filter(|o| o.is_genuine)
        .any(|o| !o.hits.is_empty()));
    // Queue fully drained.
    assert_eq!(manager.metrics_registry().queue_depth(), 0);
    assert!(manager.metrics().global.max_queue_depth >= expected);
}

/// A sharded engine over the same corpus as `stack()`'s single engine.
fn sharded_engine(stack: &Stack, shards: usize) -> Arc<ShardedEngine> {
    let docs = stack.corpus.token_docs();
    let texts: Vec<String> = stack.corpus.docs.iter().map(|d| d.text.clone()).collect();
    Arc::new(ShardedEngine::build(
        &docs,
        &texts,
        Analyzer::new(),
        stack.corpus.vocab.clone(),
        ScoringModel::TfIdfCosine,
        shards,
    ))
}

#[test]
fn sharded_tier_returns_identical_results_and_drains_per_shard() {
    let stack = stack();
    let queries = generate_workload(
        &stack.corpus,
        &WorkloadConfig {
            num_queries: 6,
            ..WorkloadConfig::default()
        },
    );
    // Same fleet seed on both managers so their ghost cycles (and thus
    // their submission streams) are identical.
    let single = Arc::new(
        SessionManager::new(stack.engine.clone(), stack.model.clone()).with_fleet_seed(42),
    );
    let sharded = Arc::new(
        SessionManager::new_sharded(sharded_engine(&stack, 4), stack.model.clone())
            .with_fleet_seed(42),
    );
    for manager in [&single, &sharded] {
        for s in 0..3 {
            manager.open_session(&format!("t{s}")).unwrap();
        }
    }
    // Synchronous path: identical genuine hits.
    for (s, q) in queries.iter().enumerate() {
        let id = format!("t{}", s % 3);
        let a = single.search_tokens(&id, &q.tokens, 10).unwrap();
        let b = sharded.search_tokens(&id, &q.tokens, 10).unwrap();
        assert_eq!(a.hits.len(), b.hits.len(), "query {s}");
        for (x, y) in a.hits.iter().zip(&b.hits) {
            assert_eq!(x.doc_id, y.doc_id);
            assert!((x.score - y.score).abs() < 1e-9);
        }
    }
    // Paced path: plans carry real shard sets and drain per shard.
    let mut plans = Vec::new();
    for (s, id) in sharded.session_ids().iter().enumerate() {
        plans.push(
            sharded
                .plan_cycle(id, &queries[s % queries.len()].tokens, 10)
                .unwrap(),
        );
    }
    let expected: usize = plans.iter().map(|p| p.len()).sum();
    assert!(plans
        .iter()
        .flatten()
        .all(|p| !p.shards.is_empty() && p.shards.iter().all(|&s| s < 4)));
    assert!(
        plans.iter().flatten().any(|p| p.primary_shard() > 0),
        "submissions should spread beyond shard 0"
    );
    let scheduler = CycleScheduler::for_manager(&sharded, 4);
    let outcomes = scheduler.run(plans);
    assert_eq!(outcomes.len(), expected, "every submission drained");
    assert!(outcomes
        .windows(2)
        .all(|w| w[0].time_secs <= w[1].time_secs));
    let snapshot = sharded.metrics();
    assert_eq!(snapshot.global.shard_queue_depths, vec![0; 4]);
    // Each touched shard logged only its slice of the trace.
    let tier = sharded.tier();
    let engine = tier.as_sharded().unwrap();
    let logs = engine.shard_logs();
    assert!(logs.iter().filter(|l| !l.is_empty()).count() > 1);
    for (s, entries) in logs.iter().enumerate() {
        for e in entries {
            for &t in &e.tokens {
                assert_eq!(engine.router().shard_of(t), s);
            }
        }
    }
}

#[test]
fn fleet_seed_is_secret_but_shared() {
    let stack = stack();
    let query = generate_workload(
        &stack.corpus,
        &WorkloadConfig {
            num_queries: 1,
            ..WorkloadConfig::default()
        },
    )
    .remove(0);
    // Same fleet secret → identical decoy streams (cache-compatible
    // replicas); the engine-side adversary, not knowing the secret,
    // cannot regenerate them from the public default config.
    let runs: Vec<Vec<Vec<u32>>> = [7u64, 7, 99]
        .iter()
        .map(|&seed| {
            let manager = SessionManager::new(stack.engine.clone(), stack.model.clone())
                .with_fleet_seed(seed);
            manager.open_session("u").unwrap();
            let outcome = manager.search_tokens("u", &query.tokens, 10).unwrap();
            outcome
                .report
                .cycle
                .iter()
                .map(|q| q.tokens.clone())
                .collect()
        })
        .collect();
    assert_eq!(runs[0], runs[1], "same secret, same ghost cycle");
    assert_ne!(runs[0], runs[2], "different secret, different decoys");
    // A random-seed manager does not reproduce the fixed-seed stream.
    let manager = SessionManager::new(stack.engine.clone(), stack.model.clone());
    manager.open_session("u").unwrap();
    let outcome = manager.search_tokens("u", &query.tokens, 10).unwrap();
    let random_run: Vec<Vec<u32>> = outcome
        .report
        .cycle
        .iter()
        .map(|q| q.tokens.clone())
        .collect();
    assert_ne!(runs[0], random_run, "random fleet secret differs");
}

#[test]
fn service_errors_are_typed() {
    let stack = stack();
    let manager = SessionManager::new(stack.engine.clone(), stack.model.clone());
    assert!(manager.search("ghost-town", "anything", 5).is_err());
    manager.open_session("x").unwrap();
    assert!(manager.open_session("x").is_err(), "duplicate id rejected");
    assert!(manager.close_session("x").is_ok());
    assert!(manager.close_session("x").is_err(), "already closed");
}

#[test]
fn shared_model_is_not_duplicated() {
    let stack = stack();
    let baseline = Arc::strong_count(&stack.model);
    let manager = SessionManager::new(stack.engine.clone(), stack.model.clone()).with_cache(256);
    for s in 0..16 {
        manager.open_session(&format!("s{s}")).unwrap();
    }
    // One Arc for the manager plus one per session's belief engine — the
    // model itself is never cloned.
    assert_eq!(Arc::strong_count(&stack.model), baseline + 1 + 16);
    let _ = ResultCache::new(16); // (exercise the re-export)
}
