//! Microbenchmark of the TopPriv ghost-generation loop — the client-side
//! cost plotted in Figures 2(d) and 3(d).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use toppriv_bench::{ExperimentContext, Scale};
use toppriv_core::{BeliefEngine, GhostConfig, GhostGenerator, PrivacyRequirement};

fn bench_generate(c: &mut Criterion) {
    let ctx = ExperimentContext::build(Scale::quick(), None);
    let mut group = c.benchmark_group("ghost_generation");
    group.sample_size(20);
    for &(eps1, eps2) in &[(0.05, 0.05), (0.05, 0.02), (0.05, 0.01)] {
        let label = format!("eps1=5%/eps2={}%", eps2 * 100.0);
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            let generator = GhostGenerator::new(
                BeliefEngine::new(ctx.default_model().clone()),
                PrivacyRequirement::new(eps1, eps2).unwrap(),
                GhostConfig::default(),
            );
            let mut i = 0usize;
            b.iter(|| {
                let q = &ctx.queries[i % ctx.queries.len()];
                i += 1;
                black_box(generator.generate(&q.tokens))
            })
        });
    }
    group.finish();
}

fn bench_generate_by_model(c: &mut Criterion) {
    let ctx = ExperimentContext::build(Scale::quick(), None);
    let mut group = c.benchmark_group("ghost_generation_by_k");
    group.sample_size(20);
    for (k, model) in &ctx.models {
        group.bench_with_input(BenchmarkId::from_parameter(k), &(), |b, _| {
            let generator = GhostGenerator::new(
                BeliefEngine::new(model.clone()),
                PrivacyRequirement::paper_default(),
                GhostConfig::default(),
            );
            let mut i = 0usize;
            b.iter(|| {
                let q = &ctx.queries[i % ctx.queries.len()];
                i += 1;
                black_box(generator.generate(&q.tokens))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generate, bench_generate_by_model);
criterion_main!(benches);
