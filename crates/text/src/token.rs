//! Tokenization and the analysis pipeline.
//!
//! The [`Analyzer`] combines tokenization, stopword removal, and optional
//! Porter stemming into the single pipeline that both the search engine and
//! the topic model use — it is important that the two sides agree exactly on
//! the token stream, otherwise query-time belief inference would diverge from
//! index-time statistics.

use crate::stem::PorterStemmer;
use crate::stopwords::StopwordList;
use crate::vocab::{TermId, Vocabulary};

/// Splits raw text into lowercase alphanumeric tokens.
///
/// Rules, chosen to match classic IR preprocessing of the WSJ corpus:
/// - Unicode alphabetic and numeric runs form tokens; everything else is a
///   separator, except `-`, `'` and `.` *inside* a token which are dropped
///   (so "ah-64" -> "ah64", "u.s." -> "us").
/// - Tokens are lowercased.
/// - Tokens of length < 2 are discarded.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tokenizer;

impl Tokenizer {
    /// Creates a tokenizer.
    pub fn new() -> Self {
        Tokenizer
    }

    /// Tokenizes `text` into owned lowercase tokens.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        let mut current = String::new();
        let mut chars = text.chars().peekable();
        while let Some(c) = chars.next() {
            if c.is_alphanumeric() {
                for lc in c.to_lowercase() {
                    current.push(lc);
                }
            } else if matches!(c, '-' | '\'' | '.')
                && !current.is_empty()
                && chars.peek().map(|n| n.is_alphanumeric()).unwrap_or(false)
            {
                // Intra-token punctuation: drop the character, keep the run.
                continue;
            } else if !current.is_empty() {
                if current.chars().count() >= 2 {
                    tokens.push(std::mem::take(&mut current));
                } else {
                    current.clear();
                }
            }
        }
        if current.chars().count() >= 2 {
            tokens.push(current);
        }
        tokens
    }
}

/// Configuration for an [`Analyzer`].
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// Whether to apply Porter stemming after stopword removal.
    pub stemming: bool,
    /// Minimum token length (after stemming) to keep.
    pub min_token_len: usize,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        Self {
            stemming: false,
            min_token_len: 2,
        }
    }
}

/// The full text analysis pipeline: tokenize, drop stopwords, stem, filter.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    tokenizer: Tokenizer,
    stopwords: StopwordList,
    stemmer: PorterStemmer,
    config: AnalyzerConfig,
}

impl Analyzer {
    /// Builds the default analyzer: English stopwords, no stemming.
    ///
    /// Stemming defaults to off because the synthetic corpus generator emits
    /// already-canonical terms; enable it for natural-language corpora.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an analyzer with explicit parts.
    pub fn with_parts(stopwords: StopwordList, config: AnalyzerConfig) -> Self {
        Self {
            tokenizer: Tokenizer::new(),
            stopwords,
            stemmer: PorterStemmer::new(),
            config,
        }
    }

    /// Builds an analyzer with stemming enabled.
    pub fn with_stemming() -> Self {
        Self::with_parts(
            StopwordList::english(),
            AnalyzerConfig {
                stemming: true,
                ..AnalyzerConfig::default()
            },
        )
    }

    /// Analyzes text into surface token strings (no vocabulary interning).
    pub fn analyze(&self, text: &str) -> Vec<String> {
        self.tokenizer
            .tokenize(text)
            .into_iter()
            .filter(|t| !self.stopwords.contains(t))
            .map(|t| {
                if self.config.stemming {
                    self.stemmer.stem(&t)
                } else {
                    t
                }
            })
            .filter(|t| t.chars().count() >= self.config.min_token_len)
            .collect()
    }

    /// Analyzes text and interns the resulting tokens into `vocab`,
    /// returning the token id sequence. Does *not* update collection
    /// statistics; callers indexing documents should follow up with
    /// [`Vocabulary::observe_document`].
    pub fn analyze_into(&self, text: &str, vocab: &mut Vocabulary) -> Vec<TermId> {
        self.analyze(text).iter().map(|t| vocab.intern(t)).collect()
    }

    /// Analyzes text against a *frozen* vocabulary: unseen terms are dropped.
    /// This is the query-time path.
    pub fn analyze_frozen(&self, text: &str, vocab: &Vocabulary) -> Vec<TermId> {
        self.analyze(text)
            .iter()
            .filter_map(|t| vocab.get(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_basics() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("AH-64 Apache helicopter!"),
            vec!["ah64", "apache", "helicopter"]
        );
        assert_eq!(t.tokenize("u.s. army"), vec!["us", "army"]);
        assert_eq!(t.tokenize("a I x"), Vec::<String>::new());
        assert_eq!(t.tokenize(""), Vec::<String>::new());
        assert_eq!(t.tokenize("  --  "), Vec::<String>::new());
    }

    #[test]
    fn tokenizer_keeps_digits() {
        let t = Tokenizer::new();
        assert_eq!(t.tokenize("SQ-333 Changi"), vec!["sq333", "changi"]);
    }

    #[test]
    fn analyzer_removes_stopwords() {
        let a = Analyzer::new();
        assert_eq!(
            a.analyze("the Apache helicopter and the tank"),
            vec!["apache", "helicopter", "tank"]
        );
    }

    #[test]
    fn analyzer_with_stemming() {
        let a = Analyzer::with_stemming();
        assert_eq!(
            a.analyze("searching queries effectively"),
            vec!["search", "queri", "effect"]
        );
    }

    #[test]
    fn analyze_into_and_frozen_agree() {
        let a = Analyzer::new();
        let mut v = Vocabulary::new();
        let ids = a.analyze_into("apache helicopter weapons", &mut v);
        assert_eq!(ids.len(), 3);
        let frozen = a.analyze_frozen("apache helicopter weapons", &v);
        assert_eq!(ids, frozen);
        // Unseen terms are dropped in frozen mode.
        let partial = a.analyze_frozen("apache submarine", &v);
        assert_eq!(partial, vec![ids[0]]);
    }

    #[test]
    fn min_token_len_filter() {
        let a = Analyzer::with_parts(
            StopwordList::empty(),
            AnalyzerConfig {
                stemming: false,
                min_token_len: 4,
            },
        );
        assert_eq!(a.analyze("cat category"), vec!["category"]);
    }
}
