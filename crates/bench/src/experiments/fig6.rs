//! Figure 6: growth of the client-side LDA model vs the inverted index as
//! the corpus scales.
//!
//! The naive private alternative ships the whole inverted index to the
//! client (linear in documents); TopPriv ships the LDA model, dominated by
//! the `Pr(w|t)` matrix whose size tracks the vocabulary — which, per
//! Heaps' law, grows sublinearly. The sweep regenerates the corpus at
//! several sizes with Heaps-scaled vocabularies and measures both.

use crate::context::ExperimentContext;
use crate::scale::Scale;
use crate::table::ResultTable;
use toppriv_baselines::SpaceComparison;
use tsearch_corpus::{CorpusConfig, SyntheticCorpus};
use tsearch_index::InvertedIndex;
use tsearch_lda::{LdaConfig, LdaTrainer};

/// Heaps-law exponent used to scale the vocabulary with corpus size.
pub const HEAPS_BETA: f64 = 0.45;

/// Derives the corpus config for one sweep point: `docs` documents with a
/// vocabulary scaled as `(docs / base_docs)^HEAPS_BETA`.
pub fn scaled_config(base: &CorpusConfig, docs: usize) -> CorpusConfig {
    let factor = (docs as f64 / base.num_docs as f64).powf(HEAPS_BETA);
    CorpusConfig {
        num_docs: docs,
        terms_per_topic: ((base.terms_per_topic as f64 * factor).round() as usize).max(10),
        shared_pool_terms: ((base.shared_pool_terms as f64 * factor).round() as usize).max(5),
        background_terms: ((base.background_terms as f64 * factor).round() as usize).max(10),
        ..base.clone()
    }
}

/// Runs the Figure 6 sweep (points in parallel).
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let k = ctx.scale.default_k;
    // Training here is per-point; half the iterations are plenty for a
    // size measurement (size is independent of fit quality).
    let iterations = (ctx.scale.lda_iterations / 2).max(5);
    let points: Vec<SpaceComparison> = std::thread::scope(|s| {
        let handles: Vec<_> = ctx
            .scale
            .fig6_doc_counts
            .iter()
            .map(|&docs| {
                let base = &ctx.scale.corpus;
                s.spawn(move || {
                    let config = scaled_config(base, docs);
                    let corpus = SyntheticCorpus::generate(config);
                    let token_docs = corpus.token_docs();
                    let index = InvertedIndex::build(&token_docs, corpus.vocab.len());
                    let model = LdaTrainer::train(
                        &token_docs,
                        corpus.vocab.len(),
                        LdaConfig {
                            iterations,
                            ..LdaConfig::with_topics(k)
                        },
                    );
                    SpaceComparison::measure(docs, &index, &model)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fig6 worker panicked"))
            .collect()
    });

    let mut table = ResultTable::new(
        "fig6_space_growth",
        format!(
            "Inverted index vs client-side {} model size as the corpus grows",
            Scale::model_label(k)
        ),
        vec![
            "num_docs".into(),
            "vocab_size".into(),
            "index_raw_KB".into(),
            "index_compressed_KB".into(),
            "lda_client_KB".into(),
            "lda_over_raw_index".into(),
        ],
    );
    for p in &points {
        table.push_row(vec![
            p.num_docs.to_string(),
            p.vocab_size.to_string(),
            format!("{:.1}", p.index_raw_bytes as f64 / 1024.0),
            format!("{:.1}", p.index_bytes as f64 / 1024.0),
            format!("{:.1}", p.lda_client_bytes as f64 / 1024.0),
            format!(
                "{:.3}",
                p.lda_client_bytes as f64 / p.index_raw_bytes.max(1) as f64
            ),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heaps_scaling_is_sublinear() {
        let base = CorpusConfig::default();
        let doubled = scaled_config(&base, base.num_docs * 2);
        assert_eq!(doubled.num_docs, base.num_docs * 2);
        let ratio = doubled.terms_per_topic as f64 / base.terms_per_topic as f64;
        assert!(
            ratio > 1.0 && ratio < 2.0,
            "vocab grows sublinearly: {ratio}"
        );
    }

    #[test]
    fn downscaling_respects_minimums() {
        let base = CorpusConfig::tiny();
        let tiny = scaled_config(&base, 1);
        assert!(tiny.terms_per_topic >= 10);
        assert!(tiny.background_terms >= 10);
    }
}
