//! Offline stand-in for the `bytes` crate.
//!
//! The workspace's binary codecs only need cursor-style little-endian
//! reads over `&[u8]` and appends onto `Vec<u8>`; this crate provides
//! exactly that subset of `bytes::{Buf, BufMut}` with the same names and
//! panic-on-underflow semantics, so the codec code is source-compatible
//! with the real crate.

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Append sink for encoded bytes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        buf.put_slice(b"xyz");
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
