//! Span parent/child ordering must survive concurrent recording.
//!
//! Eight-plus threads each build a three-deep span tree in a loop; the
//! journal must come out with unique ids, correct parent links (every
//! non-root event's parent id belongs to the same thread's enclosing
//! span), and child-before-parent completion order per tree.

use std::collections::HashMap;
use toppriv_obs::{Tracer, ROOT};

const THREADS: usize = 8;
const TREES_PER_THREAD: usize = 50;

#[test]
fn parent_child_ordering_survives_concurrent_recording() {
    // Capacity holds every event: THREADS * TREES * 3 spans per tree.
    let tracer = Tracer::new(THREADS * TREES_PER_THREAD * 3);

    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..TREES_PER_THREAD {
                    let root = tracer.span("root");
                    let mid = root.child("mid");
                    let leaf = mid.child("leaf");
                    drop(leaf);
                    drop(mid);
                    drop(root);
                }
            });
        }
    });

    let events = tracer.events();
    assert_eq!(events.len(), THREADS * TREES_PER_THREAD * 3);

    // Ids are unique across all threads.
    let mut by_id = HashMap::new();
    for e in &events {
        assert!(
            by_id.insert(e.id, e.clone()).is_none(),
            "duplicate id {}",
            e.id
        );
    }

    // Every non-root event links to a real parent with the right name,
    // and (since children drop first) the child's journal sequence
    // precedes its parent's.
    let expected_parent_name: HashMap<&str, &str> = [("leaf", "mid"), ("mid", "root")].into();
    for e in &events {
        match e.name {
            "root" => assert_eq!(e.parent, ROOT),
            name => {
                let parent = by_id
                    .get(&e.parent)
                    .unwrap_or_else(|| panic!("{name} span {} has no parent {}", e.id, e.parent));
                assert_eq!(parent.name, expected_parent_name[name]);
                assert!(
                    e.seq < parent.seq,
                    "{name} (seq {}) must journal before its parent (seq {})",
                    e.seq,
                    parent.seq
                );
                // Parent spans open before their children.
                assert!(parent.id < e.id);
                assert!(parent.start_us <= e.start_us);
            }
        }
    }
}

#[test]
fn ring_overwrite_under_concurrency_keeps_latest() {
    // Journal far smaller than the event volume: only the newest events
    // survive, in sequence order, with no torn slots.
    let tracer = Tracer::new(64);
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..500 {
                    let _sp = tracer.span("hot");
                }
            });
        }
    });
    assert_eq!(tracer.recorded(), 8 * 500);
    let events = tracer.events();
    assert!(!events.is_empty() && events.len() <= 64);
    assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
}
