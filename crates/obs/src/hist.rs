//! Log-linear HDR-style histograms.
//!
//! [`Histogram`] records `u64` values (latencies in microseconds, sizes,
//! counts — any non-negative magnitude) into a fixed set of buckets laid
//! out log-linearly, the scheme HdrHistogram made standard:
//!
//! - values below [`SUBBUCKETS`] land in their own exact bucket;
//! - every power-of-two range above that is split into [`SUBBUCKETS`]
//!   linear sub-buckets, so the relative bucket width is `1/SUBBUCKETS`
//!   everywhere.
//!
//! That gives three properties the old bounded-reservoir sample lacked:
//!
//! - **bounded memory, always**: [`NUM_BUCKETS`] `u64` counters
//!   (~30 KiB) cover the whole `u64` range, no sampling, no decay;
//! - **bounded error**: any reported percentile is the midpoint of the
//!   bucket holding the true rank value, so it deviates from the exact
//!   sorted-sample percentile by at most one bucket width — a relative
//!   error of at most `1/SUBBUCKETS` (≈1.6%, ≈0.8% typical), and *zero*
//!   below 2·[`SUBBUCKETS`] where buckets are exact. The property test
//!   in `tests/hist_props.rs` holds this bound over random streams;
//! - **mergeable**: two histograms over the same layout merge by adding
//!   counts, so per-shard or per-thread histograms roll up losslessly.
//!
//! Recording is lock-free: every counter is a relaxed [`AtomicU64`], so
//! a panicked worker can never poison the latency path (the failure mode
//! the old `Mutex<Reservoir>` had).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two range (also the exact-bucket
/// threshold: values `< SUBBUCKETS` are recorded exactly).
pub const SUBBUCKETS: u64 = 64;
const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros();
/// Total bucket count covering the whole `u64` value range.
pub const NUM_BUCKETS: usize = (SUBBUCKETS as usize) * (64 - SUB_BITS as usize + 1);

/// The documented relative-error bound of any reported percentile.
pub const RELATIVE_ERROR: f64 = 1.0 / SUBBUCKETS as f64;

/// A lock-free log-linear histogram.
///
/// ## Example
///
/// ```
/// use toppriv_obs::Histogram;
///
/// let h = Histogram::new();
/// for v in [10, 20, 30, 40, 50] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.percentile(0.5), 30); // small values are exact
/// assert_eq!(h.max(), 50);
/// ```
#[derive(Debug)]
pub struct Histogram {
    counts: Vec<AtomicU64>,
    // Trace exemplars: per bucket, the span id of the most recent value
    // recorded into it via `record_with_exemplar` (0 = none). Lets a
    // p99 outlier link straight to the span that produced it.
    exemplars: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of `v` (log-linear layout).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUBBUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) - SUBBUCKETS) as usize;
    (((msb - SUB_BITS + 1) as usize) << SUB_BITS) + sub
}

/// Representative (midpoint) value of bucket `index`.
#[inline]
fn bucket_value(index: usize) -> u64 {
    if index < SUBBUCKETS as usize {
        return index as u64;
    }
    let shift = (index >> SUB_BITS) as u32 - 1;
    let sub = (index & (SUBBUCKETS as usize - 1)) as u64;
    let lo = (SUBBUCKETS + sub) << shift;
    lo + ((1u64 << shift) >> 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            exemplars: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free; safe from any thread.
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one value tagged with the [`crate::Span`] id that
    /// produced it. The value's bucket keeps the most recent such id as
    /// its trace exemplar, so a percentile readout can link back to the
    /// span behind an outlier (`span_id` 0 is ignored — the bucket keeps
    /// its previous exemplar). Same cost class as [`Histogram::record`]:
    /// one extra relaxed store, still lock-free.
    pub fn record_with_exemplar(&self, value: u64, span_id: u64) {
        let index = bucket_index(value);
        if span_id != 0 {
            self.exemplars[index].store(span_id, Ordering::Relaxed);
        }
        self.counts[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The trace exemplar nearest the `q`-th percentile: the span id
    /// sampled into the bucket holding that rank, falling back to the
    /// nearest lower occupied bucket with an exemplar. `None` when the
    /// histogram is empty or no value near that rank was recorded via
    /// [`Histogram::record_with_exemplar`].
    pub fn exemplar(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        let mut rank_bucket = self.counts.len() - 1;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                rank_bucket = i;
                break;
            }
        }
        for i in (0..=rank_bucket).rev() {
            let id = self.exemplars[i].load(Ordering::Relaxed);
            if id != 0 {
                return Some(id);
            }
        }
        None
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Smallest recorded value (0 when empty). Exact.
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest recorded value. Exact.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-th percentile (`q` in `[0, 1]`, nearest-rank) — the
    /// representative value of the bucket holding that rank, so within
    /// [`RELATIVE_ERROR`] of the exact sorted-sample percentile and
    /// exact for values below `2 × SUBBUCKETS`. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                // Clamp the midpoint into the observed range so p100
                // never exceeds the true maximum.
                return bucket_value(i).min(self.max());
            }
        }
        self.max()
    }

    /// Adds every count of `other` into `self` (the merge is exact: both
    /// histograms share one global bucket layout).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter().zip(&other.counts) {
            let c = theirs.load(Ordering::Relaxed);
            if c > 0 {
                mine.fetch_add(c, Ordering::Relaxed);
            }
        }
        for (mine, theirs) in self.exemplars.iter().zip(&other.exemplars) {
            let id = theirs.load(Ordering::Relaxed);
            if id != 0 {
                mine.store(id, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Zeroes every counter (used between experiment cells; concurrent
    /// recorders may interleave, which only smears counts, never corrupts
    /// the structure).
    pub fn clear(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        for e in &self.exemplars {
            e.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A serializable summary (count, sum, min/max, standard quantiles).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
        }
    }
}

/// Serializable point-in-time summary of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Mean recorded value.
    pub mean: f64,
    /// Smallest recorded value (exact).
    pub min: u64,
    /// Largest recorded value (exact).
    pub max: u64,
    /// Median (within [`RELATIVE_ERROR`]).
    pub p50: u64,
    /// 90th percentile (within [`RELATIVE_ERROR`]).
    pub p90: u64,
    /// 99th percentile (within [`RELATIVE_ERROR`]).
    pub p99: u64,
    /// 99.9th percentile (within [`RELATIVE_ERROR`]).
    pub p999: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.percentile(0.5), 50);
        assert_eq!(h.percentile(0.99), 100);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 55.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        for v in [
            1u64,
            63,
            64,
            65,
            127,
            128,
            1000,
            4096,
            123_456,
            7_654_321,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let rep = bucket_value(bucket_index(v));
            let err = rep.abs_diff(v) as f64;
            assert!(
                err <= (v as f64) * RELATIVE_ERROR + 1.0,
                "value {v}: representative {rep} off by {err}"
            );
        }
    }

    #[test]
    fn bucket_index_is_monotone_at_boundaries() {
        let mut prev = 0usize;
        for exp in 0..63u32 {
            for v in [
                (1u64 << exp).saturating_sub(1),
                1u64 << exp,
                (1u64 << exp) + 1,
            ] {
                let i = bucket_index(v);
                assert!(i >= prev || v < SUBBUCKETS, "non-monotone at {v}");
                assert!(i < NUM_BUCKETS);
                prev = i.max(prev);
            }
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v + 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), 0);
        assert!(a.max() >= 1099);
        assert!(a.percentile(0.25) < 100);
        assert!(a.percentile(0.75) >= 1000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v * 17);
        }
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), 0);
        h.record(42);
        assert_eq!(h.percentile(0.5), 42);
    }

    #[test]
    fn exemplars_link_percentiles_to_spans() {
        let h = Histogram::new();
        assert_eq!(h.exemplar(0.99), None, "empty histogram has no exemplar");
        for v in 1..=100u64 {
            h.record_with_exemplar(v * 10, 1000 + v);
        }
        // p99 rank lands at value 990 → the span that recorded it.
        assert_eq!(h.exemplar(0.99), Some(1000 + 99));
        assert_eq!(h.exemplar(0.01), Some(1000 + 1));
        // Plain record never overwrites an exemplar; span id 0 is ignored.
        h.record(990);
        h.record_with_exemplar(990, 0);
        assert_eq!(h.exemplar(0.99), Some(1000 + 99));
        h.clear();
        assert_eq!(h.exemplar(0.99), None, "clear drops exemplars");
    }

    #[test]
    fn exemplar_falls_back_to_lower_occupied_bucket() {
        let h = Histogram::new();
        h.record_with_exemplar(10, 7);
        for _ in 0..50 {
            h.record(100_000); // tail recorded without exemplars
        }
        assert_eq!(h.exemplar(0.99), Some(7));
    }

    #[test]
    fn merge_carries_exemplars() {
        let a = Histogram::new();
        let b = Histogram::new();
        b.record_with_exemplar(5000, 42);
        a.merge(&b);
        assert_eq!(a.exemplar(1.0), Some(42));
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let h = Histogram::new();
        for v in [5u64, 500, 50_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + (i % 97));
                    }
                });
            }
        });
        assert_eq!(h.count(), 80_000);
    }
}
