//! Collection statistics (experiment `stat1`): the corpus and index
//! numbers the paper quotes in Sections II and V-A — mean/max inverted
//! list lengths and the PIR padding blowup.

use crate::context::ExperimentContext;
use crate::table::ResultTable;
use tsearch_corpus::{fit_heaps, vocabulary_growth, CorpusStats};
use tsearch_index::IndexStats;

/// Computes and renders the statistics tables.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let corpus_stats = CorpusStats::compute(&ctx.corpus);
    let index_stats = IndexStats::compute(ctx.engine.index());

    let mut corpus_table = ResultTable::new(
        "stat1_corpus",
        "Corpus statistics (WSJ substitute)",
        vec!["metric".into(), "value".into()],
    );
    let heaps = fit_heaps(&vocabulary_growth(&ctx.corpus));
    for (metric, value) in [
        (
            "heaps_beta (vocab ~ k*docs^beta)",
            heaps
                .map(|(_, b)| format!("{b:.3}"))
                .unwrap_or_else(|| "n/a".into()),
        ),
        ("documents", corpus_stats.num_docs.to_string()),
        ("vocabulary", corpus_stats.vocab_size.to_string()),
        ("observed_terms", corpus_stats.observed_terms.to_string()),
        ("total_tokens", corpus_stats.total_tokens.to_string()),
        ("avg_doc_len", format!("{:.1}", corpus_stats.avg_doc_len)),
        ("min_doc_len", corpus_stats.min_doc_len.to_string()),
        ("max_doc_len", corpus_stats.max_doc_len.to_string()),
    ] {
        corpus_table.push_row(vec![metric.to_string(), value]);
    }

    let mut index_table = ResultTable::new(
        "stat1_index",
        "Inverted index statistics and the PIR padding argument",
        vec!["metric".into(), "value".into()],
    );
    for (metric, value) in [
        ("non_empty_lists", index_stats.non_empty_lists.to_string()),
        (
            "avg_list_len (paper WSJ: 186.7)",
            format!("{:.1}", index_stats.avg_list_len),
        ),
        (
            "max_list_len (paper WSJ: 127848)",
            index_stats.max_list_len.to_string(),
        ),
        (
            "actual_index_KB",
            format!("{:.1}", index_stats.actual_bytes as f64 / 1024.0),
        ),
        (
            "pir_padded_KB (paper: 259MB -> 178GB)",
            format!("{:.1}", index_stats.pir_padded_bytes as f64 / 1024.0),
        ),
        (
            "pir_blowup_factor",
            format!("{:.1}", index_stats.pir_blowup()),
        ),
    ] {
        index_table.push_row(vec![metric.to_string(), value]);
    }

    vec![corpus_table, index_table]
}
