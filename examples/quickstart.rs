//! Quickstart: end-to-end private search with TopPriv.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use toppriv::corpus::{generate_workload, WorkloadConfig};
use toppriv::{
    BeliefEngine, CorpusConfig, GhostConfig, GhostGenerator, PrivacyRequirement, TrustedClient,
};

fn main() {
    // 1. A corpus the enterprise search engine hosts (WSJ stand-in) and a
    //    workload of topical queries (TREC stand-in).
    let (corpus, engine, model) = toppriv::build_demo_stack(
        CorpusConfig {
            num_docs: 800,
            num_topics: 12,
            terms_per_topic: 80,
            ..CorpusConfig::default()
        },
        24, // LDA topics
        40, // Gibbs iterations
    );
    let queries = generate_workload(
        &corpus,
        &WorkloadConfig {
            num_queries: 3,
            ..WorkloadConfig::default()
        },
    );
    let engine = Arc::new(engine);

    // 2. The trusted client enforces (ε1, ε2)-privacy = (5%, 1%).
    let client = TrustedClient::new(
        engine.clone(),
        GhostGenerator::new(
            BeliefEngine::new(model.clone()),
            PrivacyRequirement::paper_default(),
            GhostConfig::default(),
        ),
    );

    for q in &queries {
        println!("\n=== user query {}: \"{}\"", q.id, q.text);
        let result = client.search(&q.text, 5);
        let report = &result.report;
        println!(
            "    cycle: {} queries ({} ghosts), intention {:?}",
            report.cycle_len(),
            report.cycle_len() - 1,
            report.intention
        );
        println!(
            "    exposure {:.2}% (<= eps2? {}), mask level {:.2}%, generated in {:.0} ms",
            report.metrics.exposure * 100.0,
            report.satisfied,
            report.metrics.mask_level * 100.0,
            report.metrics.generation_secs * 1000.0
        );
        println!("    top hits (genuine results only):");
        for hit in result.hits.iter().take(3) {
            let text = engine.fetch_document(hit.doc_id).unwrap_or("<missing>");
            let preview: String = text.chars().take(60).collect();
            println!(
                "      doc {:>4}  score {:.3}  {}...",
                hit.doc_id, hit.score, preview
            );
        }
    }

    // 3. What the server-side adversary saw: only the mixed trace.
    println!(
        "\n=== server query log ({} entries)",
        engine.query_log().len()
    );
    for entry in engine.query_log().iter().take(8) {
        let preview: String = entry.text.chars().take(70).collect();
        println!("    #{:<3} {}", entry.ordinal, preview);
    }
}
