//! Protocol server: NDJSON over any line stream, plus a TCP front end.

use crate::protocol::{HitDto, Op, Request, Response, SearchReportDto};
use crate::session::{ServiceError, SessionConfig, SessionManager};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::Arc;
use toppriv_core::PrivacyRequirement;

/// Handles one request against the manager.
pub fn handle(manager: &SessionManager, request: Request) -> Response {
    match request.op {
        Op::Open {
            session,
            eps1,
            eps2,
        } => {
            let default = PrivacyRequirement::paper_default();
            let requirement = match PrivacyRequirement::new(
                eps1.unwrap_or(default.eps1),
                eps2.unwrap_or(default.eps2),
            ) {
                Ok(r) => r,
                Err(e) => {
                    return Response::Error {
                        message: e.to_string(),
                    }
                }
            };
            let config = SessionConfig {
                requirement,
                ..SessionConfig::default()
            };
            match manager.open_session_with(&session, config) {
                Ok(()) => Response::Opened { session },
                Err(e) => error(e),
            }
        }
        Op::Search { session, query, k } => {
            match manager.search(&session, &query, k.unwrap_or(0)) {
                Ok(outcome) => Response::Results {
                    hits: outcome
                        .hits
                        .iter()
                        .map(|h| HitDto {
                            doc_id: h.doc_id,
                            score: h.score,
                        })
                        .collect(),
                    report: SearchReportDto {
                        cycle_len: outcome.report.cycle_len(),
                        exposure: outcome.report.metrics.exposure,
                        mask_level: outcome.report.metrics.mask_level,
                        satisfied: outcome.report.satisfied,
                        intention: outcome.report.intention.clone(),
                        cache_hits: outcome.cache_hits,
                    },
                },
                Err(e) => error(e),
            }
        }
        Op::Metrics => Response::Metrics(manager.metrics()),
        Op::MetricsNdjson => Response::MetricsNdjson {
            lines: toppriv_obs::render_ndjson(manager.metrics_registry().registry()),
        },
        Op::MetricsProm => Response::MetricsProm {
            text: toppriv_obs::render_prometheus(manager.metrics_registry().registry()),
        },
        Op::Health => match manager.auditor() {
            Some(auditor) => Response::Health(auditor.health()),
            None => Response::Error {
                message: "audit plane not attached".into(),
            },
        },
        Op::AuditTail { limit } => match manager.auditor() {
            Some(auditor) => Response::AuditTail {
                events: auditor.tail(limit.unwrap_or(32)),
            },
            None => Response::Error {
                message: "audit plane not attached".into(),
            },
        },
        Op::Close { session } => match manager.close_session(&session) {
            Ok(metrics) => Response::Closed(metrics),
            Err(e) => error(e),
        },
    }
}

fn error(e: ServiceError) -> Response {
    Response::Error {
        message: e.to_string(),
    }
}

/// Serves NDJSON requests from `reader`, writing one JSON response per
/// line to `writer`. Returns when the reader is exhausted.
pub fn serve_lines<R: BufRead, W: Write>(
    manager: &SessionManager,
    reader: R,
    mut writer: W,
) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Request>(&line) {
            Ok(request) => handle(manager, request),
            Err(e) => Response::Error {
                message: format!("unparseable request: {e}"),
            },
        };
        let encoded = serde_json::to_string(&response)
            .unwrap_or_else(|e| format!("{{\"Error\":{{\"message\":\"encode: {e}\"}}}}"));
        writeln!(writer, "{encoded}")?;
        writer.flush()?;
    }
    Ok(())
}

/// Accepts TCP connections forever, one service thread per connection,
/// all sharing the same manager (and therefore the same model, engine,
/// cache, and metrics).
pub fn serve_tcp(manager: Arc<SessionManager>, addr: impl ToSocketAddrs) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("[toppriv-serve] listening on {}", listener.local_addr()?);
    loop {
        let (stream, peer) = listener.accept()?;
        let manager = manager.clone();
        std::thread::spawn(move || {
            let reader = BufReader::new(stream.try_clone().expect("clone stream"));
            if let Err(e) = serve_lines(&manager, reader, stream) {
                eprintln!("[toppriv-serve] connection {peer}: {e}");
            }
        });
    }
}
