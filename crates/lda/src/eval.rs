//! Intrinsic model-quality evaluation: corpus-grounded topic coherence
//! and held-out perplexity.
//!
//! The paper argues qualitatively (Appendix A, Tables II–IV) that LDA
//! topics are "quite specific and coherent" at adequate K and indistinct
//! at tiny K, and Definition 3 calls a query semantically coherent when
//! its words "describe common or related topics". This module provides
//! the standard quantitative counterparts:
//!
//! - **UMass coherence** ([`umass_coherence`]): the document
//!   co-occurrence statistic of Mimno et al. — pairs of a topic's top
//!   words should co-occur in training documents far more often than
//!   chance. Unlike `toppriv_core::metrics::semantic_coherence` this is
//!   grounded in the *corpus*, not in the model that produced the words,
//!   so it can score ghost queries independently of the generator.
//! - **Held-out perplexity** ([`held_out_perplexity`]): how well a model
//!   explains unseen token sequences via fold-in inference; used to
//!   compare topic counts K on an equal footing.

use crate::infer::{InferenceConfig, Inferencer};
use crate::model::LdaModel;
use std::collections::HashMap;
use tsearch_text::TermId;

/// Document-level co-occurrence bitsets for a chosen word set.
///
/// One bit per document per indexed word; document frequency is a
/// popcount and pair co-frequency a popcount of the AND. Construction is
/// a single corpus scan.
#[derive(Debug, Clone)]
pub struct CoOccurrenceIndex {
    /// word → row in `bits`.
    rows: HashMap<TermId, usize>,
    /// Bitset blocks, row-major (`blocks_per_row` u64s per word).
    bits: Vec<u64>,
    blocks_per_row: usize,
    num_docs: usize,
}

impl CoOccurrenceIndex {
    /// Indexes `words` (deduplicated) over `docs`.
    pub fn build(docs: &[&[TermId]], words: &[TermId]) -> Self {
        let mut rows = HashMap::new();
        for &w in words {
            let next = rows.len();
            rows.entry(w).or_insert(next);
        }
        let blocks_per_row = docs.len().div_ceil(64).max(1);
        let mut bits = vec![0u64; rows.len() * blocks_per_row];
        for (d, doc) in docs.iter().enumerate() {
            for &w in *doc {
                if let Some(&row) = rows.get(&w) {
                    bits[row * blocks_per_row + d / 64] |= 1 << (d % 64);
                }
            }
        }
        CoOccurrenceIndex {
            rows,
            bits,
            blocks_per_row,
            num_docs: docs.len(),
        }
    }

    /// Number of documents scanned.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Document frequency `D(w)`; zero for unindexed words.
    pub fn doc_freq(&self, w: TermId) -> u64 {
        match self.rows.get(&w) {
            Some(&row) => self.row(row).iter().map(|b| b.count_ones() as u64).sum(),
            None => 0,
        }
    }

    /// Pair document frequency `D(a, b)`; zero if either is unindexed.
    pub fn co_doc_freq(&self, a: TermId, b: TermId) -> u64 {
        match (self.rows.get(&a), self.rows.get(&b)) {
            (Some(&ra), Some(&rb)) => self
                .row(ra)
                .iter()
                .zip(self.row(rb))
                .map(|(x, y)| (x & y).count_ones() as u64)
                .sum(),
            _ => 0,
        }
    }

    fn row(&self, row: usize) -> &[u64] {
        &self.bits[row * self.blocks_per_row..(row + 1) * self.blocks_per_row]
    }
}

/// UMass coherence of an ordered word list (most probable first):
/// `Σ_{i<j} ln[(D(w_j, w_i) + 1) / D(w_i)]`, skipping conditioning words
/// that never occur. Higher (closer to zero) is more coherent. A list
/// with fewer than two scorable words yields `0`.
pub fn umass_coherence(index: &CoOccurrenceIndex, ordered_words: &[TermId]) -> f64 {
    let mut score = 0.0;
    let mut pairs = 0usize;
    for (i, &wi) in ordered_words.iter().enumerate() {
        let d_i = index.doc_freq(wi);
        if d_i == 0 {
            continue;
        }
        for &wj in &ordered_words[i + 1..] {
            let co = index.co_doc_freq(wj, wi);
            score += ((co + 1) as f64 / d_i as f64).ln();
            pairs += 1;
        }
    }
    if pairs == 0 {
        0.0
    } else {
        score / pairs as f64
    }
}

/// Mean UMass coherence of every topic's top-`top_n` words, plus the
/// per-topic scores. One co-occurrence index is shared across topics.
pub fn model_topic_coherences(
    model: &LdaModel,
    docs: &[&[TermId]],
    top_n: usize,
) -> (f64, Vec<f64>) {
    let tops: Vec<Vec<TermId>> = (0..model.num_topics())
        .map(|t| {
            model
                .top_words(t, top_n)
                .into_iter()
                .map(|(w, _)| w)
                .collect()
        })
        .collect();
    let all: Vec<TermId> = tops.iter().flatten().copied().collect();
    let index = CoOccurrenceIndex::build(docs, &all);
    let scores: Vec<f64> = tops.iter().map(|ws| umass_coherence(&index, ws)).collect();
    let mean = if scores.is_empty() {
        0.0
    } else {
        scores.iter().sum::<f64>() / scores.len() as f64
    };
    (mean, scores)
}

/// Corpus-grounded coherence of an *unordered* token set (e.g. a query):
/// tokens are ordered by descending document frequency, then scored with
/// [`umass_coherence`]. Duplicated tokens are collapsed.
pub fn query_coherence(index: &CoOccurrenceIndex, tokens: &[TermId]) -> f64 {
    let mut unique: Vec<TermId> = tokens.to_vec();
    unique.sort_unstable();
    unique.dedup();
    unique.sort_by_key(|&w| std::cmp::Reverse(index.doc_freq(w)));
    umass_coherence(index, &unique)
}

/// Held-out perplexity of `docs` under `model`: each document's topic
/// mixture is folded in with the given inference config, then
/// `exp(−Σ ln p(w|θ_d) / Σ |d|)`. Empty inputs yield `f64::NAN`.
pub fn held_out_perplexity(model: &LdaModel, docs: &[&[TermId]], config: InferenceConfig) -> f64 {
    let inferencer = Inferencer::with_config(model, config);
    let mut log_lik = 0.0f64;
    let mut tokens = 0usize;
    for doc in docs {
        if doc.is_empty() {
            continue;
        }
        let theta = inferencer.infer(doc);
        for &w in *doc {
            let p: f64 = theta
                .iter()
                .enumerate()
                .map(|(t, &th)| th * model.phi(t, w))
                .sum();
            log_lik += p.max(f64::MIN_POSITIVE).ln();
            tokens += 1;
        }
    }
    if tokens == 0 {
        f64::NAN
    } else {
        (-log_lik / tokens as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{LdaConfig, LdaTrainer};

    /// Docs where words 0,1 always co-occur; word 2 lives alone.
    fn docs() -> Vec<Vec<TermId>> {
        let mut v = Vec::new();
        for _ in 0..8 {
            v.push(vec![0, 1, 0, 1]);
        }
        for _ in 0..8 {
            v.push(vec![2, 2, 3]);
        }
        v
    }

    fn refs(d: &[Vec<TermId>]) -> Vec<&[TermId]> {
        d.iter().map(|x| x.as_slice()).collect()
    }

    #[test]
    fn cooccurrence_counts() {
        let d = docs();
        let idx = CoOccurrenceIndex::build(&refs(&d), &[0, 1, 2, 3, 9]);
        assert_eq!(idx.num_docs(), 16);
        assert_eq!(idx.doc_freq(0), 8);
        assert_eq!(idx.doc_freq(2), 8);
        assert_eq!(idx.doc_freq(9), 0, "absent word");
        assert_eq!(idx.co_doc_freq(0, 1), 8);
        assert_eq!(idx.co_doc_freq(0, 2), 0);
        assert_eq!(idx.co_doc_freq(2, 3), 8);
        assert_eq!(idx.co_doc_freq(0, 9), 0, "unindexed pair");
    }

    #[test]
    fn cooccurrence_handles_many_docs() {
        // Cross the 64-doc block boundary.
        let d: Vec<Vec<TermId>> = (0..200).map(|i| vec![(i % 2) as TermId]).collect();
        let idx = CoOccurrenceIndex::build(&refs(&d), &[0, 1]);
        assert_eq!(idx.doc_freq(0), 100);
        assert_eq!(idx.doc_freq(1), 100);
        assert_eq!(idx.co_doc_freq(0, 1), 0);
    }

    #[test]
    fn umass_prefers_cooccurring_words() {
        let d = docs();
        let idx = CoOccurrenceIndex::build(&refs(&d), &[0, 1, 2]);
        let coherent = umass_coherence(&idx, &[0, 1]);
        let incoherent = umass_coherence(&idx, &[0, 2]);
        assert!(
            coherent > incoherent,
            "coherent {coherent} vs incoherent {incoherent}"
        );
        // Perfect co-occurrence: ln((8+1)/8) > 0 — near zero.
        assert!(coherent > -0.2);
        // Never co-occur: ln(1/8) < −2.
        assert!(incoherent < -2.0);
    }

    #[test]
    fn umass_degenerate_cases() {
        let d = docs();
        let idx = CoOccurrenceIndex::build(&refs(&d), &[0, 9]);
        assert_eq!(umass_coherence(&idx, &[0]), 0.0, "single word");
        assert_eq!(umass_coherence(&idx, &[]), 0.0, "empty");
        // Conditioning on an absent word contributes nothing.
        assert_eq!(umass_coherence(&idx, &[9, 9]), 0.0);
    }

    #[test]
    fn query_coherence_orders_by_frequency() {
        let d = docs();
        let idx = CoOccurrenceIndex::build(&refs(&d), &[0, 1, 2, 3]);
        let good = query_coherence(&idx, &[1, 0, 1, 0]);
        let bad = query_coherence(&idx, &[0, 2]);
        assert!(good > bad);
    }

    #[test]
    fn topic_coherence_separates_trained_topics_from_random() {
        // Train on two clean word blocks; the fitted topics' top words
        // should cohere; a shuffled word list should not.
        let train: Vec<Vec<TermId>> = (0..40)
            .map(|i| {
                let base: TermId = if i % 2 == 0 { 0 } else { 5 };
                (0..20).map(|j| base + j % 5).collect()
            })
            .collect();
        let r = refs(&train);
        let model = LdaTrainer::train(
            &r,
            10,
            LdaConfig {
                iterations: 40,
                seed: 11,
                ..LdaConfig::with_topics(2)
            },
        );
        let (mean, per_topic) = model_topic_coherences(&model, &r, 4);
        assert_eq!(per_topic.len(), 2);
        let all: Vec<TermId> = (0..10).collect();
        let idx = CoOccurrenceIndex::build(&r, &all);
        let mixed = umass_coherence(&idx, &[0, 5, 1, 6]);
        assert!(
            mean > mixed,
            "trained topics ({mean}) should cohere more than cross-block words ({mixed})"
        );
    }

    #[test]
    fn perplexity_prefers_matching_model() {
        let train: Vec<Vec<TermId>> = (0..40)
            .map(|i| {
                let base: TermId = if i % 2 == 0 { 0 } else { 5 };
                (0..20).map(|j| base + j % 5).collect()
            })
            .collect();
        let r = refs(&train);
        let model = LdaTrainer::train(
            &r,
            10,
            LdaConfig {
                iterations: 40,
                seed: 5,
                ..LdaConfig::with_topics(2)
            },
        );
        // Held-out docs from the same generative blocks.
        let heldout: Vec<Vec<TermId>> = (0..10)
            .map(|i| {
                let base: TermId = if i % 2 == 0 { 0 } else { 5 };
                (0..15).map(|j| base + (j + 1) % 5).collect()
            })
            .collect();
        let hr = refs(&heldout);
        let ppl = held_out_perplexity(&model, &hr, InferenceConfig::default());
        // A block doc uses 5 of 10 words; a fitted model should beat the
        // uniform bound of 10 and approach 5.
        assert!(ppl < 9.0, "perplexity {ppl} should beat uniform");
        assert!(ppl > 1.0);
        // Mismatched held-out data (cross-block mixtures) scores worse.
        let shuffled: Vec<Vec<TermId>> = (0..10)
            .map(|i| (0..15).map(|j| ((i + j) % 10) as TermId).collect())
            .collect();
        let sr = refs(&shuffled);
        let ppl_bad = held_out_perplexity(&model, &sr, InferenceConfig::default());
        assert!(ppl_bad > ppl, "mismatch {ppl_bad} vs match {ppl}");
    }

    #[test]
    fn perplexity_empty_is_nan() {
        let model = LdaTrainer::train(
            &[&[0u32, 1][..]],
            2,
            LdaConfig {
                iterations: 2,
                ..LdaConfig::with_topics(2)
            },
        );
        assert!(held_out_perplexity(&model, &[], InferenceConfig::default()).is_nan());
    }
}
