//! Experiment `quality` (extension of Appendix A): quantitative model
//! quality, replacing the paper's qualitative word-list inspection.
//!
//! Two tables:
//!
//! - `apxB_model_quality` — per topic count K: mean UMass coherence of
//!   the top-10 topic words (the numeric counterpart of "topics are quite
//!   specific and coherent", Tables II–IV) and held-out perplexity of the
//!   query workload under fold-in inference (the standard criterion for
//!   choosing K, which the paper sets by corpus intuition).
//! - `apxB_ghost_coherence` — corpus-grounded UMass coherence of genuine
//!   queries vs TopPriv ghosts vs TrackMeNot random ghosts: Definition 3
//!   demands ghosts be semantically coherent; this scores them against
//!   the *corpus* rather than the model that generated them.

use crate::context::ExperimentContext;
use crate::table::{f3, ResultTable};
use toppriv_baselines::{TrackMeNot, TrackMeNotConfig};
use toppriv_core::{BeliefEngine, GhostConfig, GhostGenerator, PrivacyRequirement};
use tsearch_lda::{
    held_out_perplexity, model_topic_coherences, query_coherence, CoOccurrenceIndex,
    InferenceConfig,
};

/// Top words per topic scored for coherence.
pub const TOP_N: usize = 10;

/// Runs both quality tables.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let docs = ctx.corpus.token_docs();
    let held_out: Vec<&[u32]> = ctx.queries.iter().map(|q| q.tokens.as_slice()).collect();

    let mut model_table = ResultTable::new(
        "apxB_model_quality",
        "Intrinsic LDA quality per topic count: mean UMass coherence of \
         top-10 words and held-out query perplexity",
        vec![
            "K".into(),
            "mean_umass_top10".into(),
            "query_perplexity".into(),
            "client_mbytes".into(),
        ],
    );
    let rows: Vec<(usize, f64, f64, f64)> = std::thread::scope(|s| {
        let handles: Vec<_> = ctx
            .models
            .iter()
            .map(|(k, model)| {
                let docs = &docs;
                let held_out = &held_out;
                s.spawn(move || {
                    let (mean, _) = model_topic_coherences(model, docs, TOP_N);
                    let ppl = held_out_perplexity(model, held_out, InferenceConfig::default());
                    let mb = model.size_breakdown().client_bytes() as f64 / (1024.0 * 1024.0);
                    (*k, mean, ppl, mb)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("quality worker panicked"))
            .collect()
    });
    for (k, mean, ppl, mb) in rows {
        model_table.push_row(vec![k.to_string(), f3(mean), f3(ppl), f3(mb)]);
    }

    // Ghost coherence: genuine vs TopPriv vs TrackMeNot, one shared
    // co-occurrence index over every word any of them uses.
    let generator = GhostGenerator::new(
        BeliefEngine::new(ctx.default_model().clone()),
        PrivacyRequirement::paper_default(),
        GhostConfig::default(),
    );
    let tmn = TrackMeNot::new(ctx.corpus.vocab.len(), TrackMeNotConfig::default());
    let queries = ctx.sweep_queries();
    let mut genuine: Vec<Vec<u32>> = Vec::new();
    let mut toppriv_ghosts: Vec<Vec<u32>> = Vec::new();
    let mut tmn_ghosts: Vec<Vec<u32>> = Vec::new();
    for q in queries {
        genuine.push(q.tokens.clone());
        let r = generator.generate(&q.tokens);
        for (i, cq) in r.cycle.iter().enumerate() {
            if i != r.genuine_index {
                toppriv_ghosts.push(cq.tokens.clone());
            }
        }
        tmn_ghosts.extend(tmn.ghosts(&q.tokens));
    }
    let all_words: Vec<u32> = genuine
        .iter()
        .chain(&toppriv_ghosts)
        .chain(&tmn_ghosts)
        .flatten()
        .copied()
        .collect();
    let index = CoOccurrenceIndex::build(&docs, &all_words);
    let mean_coherence = |set: &[Vec<u32>]| -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        set.iter().map(|q| query_coherence(&index, q)).sum::<f64>() / set.len() as f64
    };

    let mut ghost_table = ResultTable::new(
        "apxB_ghost_coherence",
        "Corpus-grounded UMass coherence of query word sets (Definition 3): \
         higher (closer to 0) = words co-occur in real documents",
        vec!["source".into(), "mean_umass".into(), "queries".into()],
    );
    for (source, set) in [
        ("genuine", &genuine),
        ("toppriv_ghost", &toppriv_ghosts),
        ("trackmenot_ghost", &tmn_ghosts),
    ] {
        ghost_table.push_row(vec![
            source.into(),
            f3(mean_coherence(set)),
            set.len().to_string(),
        ]);
    }

    vec![model_table, ghost_table]
}
