//! Per-session privacy under cross-session decoy sharing: a ≥64-session
//! churn storm runs with the [`GhostPlanner`] enabled (ghost reuse +
//! coalesced shared submissions), all shards collude and merge their
//! query logs, and a supervised naive-Bayes classifier attacks the
//! merged trace. Sharing decoys across tenants must not weaken any
//! single tenant's `(ε1, ε2)` story:
//!
//! - every cycle (including planner-rewritten ones) passes the fleet
//!   masking invariant, and the online audit plane stays healthy;
//! - the merged log plus cache hits still covers every per-subscriber
//!   outcome — a shared submission reaches the engine once but debits
//!   (and is audited for) every subscribing tenant;
//! - the classifier's genuine-identification and topic-recovery rates
//!   stay within the same bounds as the unplanned baseline storm.

use std::sync::Arc;
use toppriv_adversary::{merge_shard_logs, run_classifier_attack, NaiveBayes};
use toppriv_bench::scenarios::churn::{run_fleet_planned, ChurnConfig};
use toppriv_core::PrivacyRequirement;
use toppriv_service::{AuditConfig, PlannerConfig, SearchTier, SessionManager};
use tsearch_corpus::{generate_workload, CorpusConfig, SyntheticCorpus, WorkloadConfig};
use tsearch_lda::{LdaConfig, LdaTrainer};
use tsearch_search::{ScoringModel, ShardedEngine};
use tsearch_text::Analyzer;

#[test]
fn planner_sharing_preserves_per_session_privacy_at_scale() {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: 300,
        num_topics: 8,
        terms_per_topic: 60,
        ..CorpusConfig::default()
    });
    let docs = corpus.token_docs();
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let engine = Arc::new(ShardedEngine::build(
        &docs,
        &texts,
        Analyzer::new(),
        corpus.vocab.clone(),
        ScoringModel::TfIdfCosine,
        4,
    ));
    let model = Arc::new(LdaTrainer::train(
        &docs,
        corpus.vocab.len(),
        LdaConfig {
            iterations: 25,
            ..LdaConfig::with_topics(16)
        },
    ));
    let manager = Arc::new(
        SessionManager::with_tier(SearchTier::Sharded(engine), model)
            .with_cache(4096)
            .with_fleet_seed(0x9105751)
            .with_auditor(AuditConfig::default()),
    );
    // A modest query pool shared by many tenants: realistic overlap for
    // the planner to exploit, and the hard case for privacy (maximum
    // cross-tenant correlation in the merged logs).
    let queries = generate_workload(
        &corpus,
        &WorkloadConfig {
            num_queries: 24,
            ..WorkloadConfig::default()
        },
    );

    let cfg = ChurnConfig {
        join_per_wave: 24,
        waves: 3,
        cycles_per_session: 1,
    };
    let art = run_fleet_planned(manager, &queries, &cfg, PlannerConfig::default());
    assert!(art.joined >= 64, "storm opened {} sessions", art.joined);
    assert!(
        art.invariants.pass,
        "planned churn invariants must hold at scale: {:?}",
        art.invariants
            .checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| format!("{}: {}", c.name, c.detail))
            .collect::<Vec<_>>()
    );

    // The planner actually shared work, and the engine saw fewer
    // submissions than tenants were debited for.
    let global = art.manager.metrics_registry().snapshot();
    assert!(
        global.planner_coalesced > 0,
        "shared workload must coalesce submissions"
    );
    assert!(
        global.engine_submits < global.submitted,
        "engine submissions {} must undercut per-tenant submissions {}",
        global.engine_submits,
        global.submitted
    );

    // The online audit plane audited every subscriber and stayed green.
    let health = art
        .manager
        .auditor()
        .expect("audit plane attached")
        .health();
    assert!(
        health.healthy,
        "audit plane must stay healthy under sharing: {} breach(es)",
        health.breaches
    );
    assert!(health.cycles_audited > 0, "auditor saw the storm");

    // Colluding shards reassemble the trace. A shared submission reaches
    // the engine once (or zero times, if cached) yet drains one outcome
    // per subscriber — the extra subscribers are counted as cache hits,
    // so the coverage identity must still close exactly.
    let tier = art.manager.tier();
    let shard_logs = tier.as_sharded().expect("sharded tier").shard_logs();
    let merged = merge_shard_logs(&shard_logs);
    let cache_hits = art
        .manager
        .metrics_registry()
        .registry()
        .counter_total(toppriv_service::metrics::M_CACHE_HITS) as usize;
    assert_eq!(
        merged.len() + cache_hits,
        art.drained,
        "merged log + cache hits must cover every per-subscriber outcome"
    );
    assert!(!merged.is_empty(), "colluding shards saw the trace");

    // Strongest classifier: trained on ground-truth document taxonomy.
    let labeled: Vec<(&[u32], usize)> = corpus
        .docs
        .iter()
        .map(|d| {
            let label = d
                .mixture
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weight"))
                .map(|&(t, _)| t)
                .expect("non-empty mixture");
            (d.tokens.as_slice(), label)
        })
        .collect();
    let nb = NaiveBayes::train(&labeled, corpus.num_topics(), corpus.vocab.len(), 1.0);
    let report = run_classifier_attack(&nb, &art.cycles, &art.truths);
    assert!(
        report.cycles >= 64,
        "attack evaluated {} cycles",
        report.cycles
    );
    assert!(
        report.unprotected_recovery > 2.0 * report.topic_chance,
        "unprotected recovery {:.3} should beat chance {:.3} clearly",
        report.unprotected_recovery,
        report.topic_chance
    );
    // ε1 bound: the genuine query hides among the (shared) decoys.
    let eps1 = PrivacyRequirement::paper_default().eps1;
    assert!(
        report.genuine_identification <= report.genuine_chance + eps1,
        "genuine identification {:.3} exceeds chance {:.3} + ε1 {eps1}",
        report.genuine_identification,
        report.genuine_chance
    );
    // ε2 story: the pooled cycle must not leak like the raw query does.
    assert!(
        report.cycle_recovery < report.unprotected_recovery,
        "cycle recovery {:.3} should be damped below the oracle {:.3}",
        report.cycle_recovery,
        report.unprotected_recovery
    );
}
