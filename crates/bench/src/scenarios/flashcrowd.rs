//! Scenario `flashcrowd`: a hot-topic query storm with Zipf-like skew.
//!
//! A breaking topic sends most of the fleet to the same handful of
//! queries at once. Term-hash sharding concentrates those queries'
//! postings on a few shards, so the scenario watches three things the
//! per-shard instrumentation from the observability layer exists for:
//!
//! - the skew is *visible*: per-shard submit counters diverge and every
//!   loaded shard has a populated `scheduler_service_us` histogram, so
//!   the snapshot carries a real per-shard p50/p99 breakdown
//!   (`shard_service_<s>` stage rows);
//! - the shared result cache absorbs the crowd: identical hot cycles
//!   across tenants are cache-served instead of re-resolved;
//! - the privacy invariant survives the stampede: every cycle
//!   formulated during the crowd leaves the intention out-boosted by a
//!   decoy topic or negligibly boosted (≤ ε2), satisfied cycles keep
//!   occurring, and no submission is lost on the loaded shards.

use super::{finish_with, fleet_manager, sharded_tier, ScenarioReport, SHARDS, TOP_K, WORKERS};
use crate::context::ExperimentContext;
use crate::obsbench;
use std::time::Instant;
use toppriv_obs::{InvariantBlock, StageStats};
use toppriv_service::scheduler::{M_SERVICE_US, M_SHARD_SUBMITS};
use toppriv_service::{CycleScheduler, PlannedQuery};

/// Sessions in the crowd.
const SESSIONS: usize = 16;

/// Hot queries the crowd converges on.
const HOT_QUERIES: usize = 2;

/// Fraction of the crowd chasing the hot queries (the rest stay on
/// their uniform background mix).
const HOT_SHARE_PCT: usize = 80;

/// Drain rounds; each open session plans this many cycles per round.
const ROUNDS: usize = 3;
const CYCLES_PER_ROUND: usize = 2;

/// Runs the flash-crowd scenario.
pub fn run(ctx: &ExperimentContext) -> ScenarioReport {
    let manager = fleet_manager(ctx, sharded_tier(ctx, SHARDS));
    obsbench::reset_engine_stages();
    super::open_tenants(&manager, SESSIONS);
    let scheduler = CycleScheduler::for_manager(&manager, WORKERS);
    let queries = ctx.sweep_queries();
    let mut inv = InvariantBlock::default();
    let mut drained = 0usize;
    let mut lost = 0usize;
    let mut drain_secs = 0.0f64;
    let mut worst_violation = f64::NEG_INFINITY;
    let mut cycles = 0usize;
    let mut satisfied = 0usize;
    let eps2 = toppriv_core::PrivacyRequirement::paper_default().eps2;

    for round in 0..ROUNDS {
        let mut plans: Vec<Vec<PlannedQuery>> = Vec::new();
        for (s, id) in manager.session_ids().iter().enumerate() {
            for c in 0..CYCLES_PER_ROUND {
                // The hot share hammers the same HOT_QUERIES; the rest
                // walk the background workload uniformly.
                let q = if s * 100 / SESSIONS < HOT_SHARE_PCT {
                    &queries[(s + c) % HOT_QUERIES]
                } else {
                    &queries[(round * 11 + s * 3 + c) % queries.len()]
                };
                let (report, plan) = manager
                    .plan_cycle_with_report(id, &q.tokens, TOP_K)
                    .expect("session is open");
                worst_violation =
                    worst_violation.max(super::masking_violation(&report.metrics, eps2));
                if report.satisfied && !report.intention.is_empty() {
                    satisfied += 1;
                }
                cycles += 1;
                plans.push(plan);
            }
        }
        let queue = CycleScheduler::merge(plans);
        let expected = queue.len();
        let t0 = Instant::now();
        match scheduler.try_drain(queue) {
            Ok(outcomes) => drained += outcomes.len(),
            Err(e) => {
                drained += e.completed.len();
                lost += expected - e.completed.len();
            }
        }
        drain_secs += t0.elapsed().as_secs_f64();
    }

    let registry = manager.metrics_registry().registry();
    // Per-shard load picture: submit counts + service-time histograms.
    let mut submits = vec![0u64; SHARDS];
    for (labels, v) in registry.counter_values(M_SHARD_SUBMITS) {
        if let Some(s) = labels
            .iter()
            .find(|l| l.key == "shard")
            .and_then(|l| l.value.parse::<usize>().ok())
        {
            if s < SHARDS {
                submits[s] = v;
            }
        }
    }
    let mut extra_stages = Vec::new();
    let mut unmeasured = Vec::new();
    for (s, &n) in submits.iter().enumerate() {
        let h = registry.histogram(M_SERVICE_US, &[("shard", &s.to_string())]);
        if n > 0 && h.count() == 0 {
            unmeasured.push(s);
        }
        if h.count() > 0 {
            extra_stages.push(StageStats::from_histogram(format!("shard_service_{s}"), &h));
        }
    }
    let hot = *submits.iter().max().expect("shards > 0");
    let cold = *submits.iter().min().expect("shards > 0");
    inv.check(
        "shard_skew_observed",
        format!("per-shard submits {submits:?}: hottest {hot}, coldest {cold}"),
        hot > cold,
    );
    inv.check(
        "hot_shards_measured",
        if unmeasured.is_empty() {
            format!(
                "every loaded shard has a populated service histogram ({} per-shard stage rows)",
                extra_stages.len()
            )
        } else {
            format!("shards {unmeasured:?} submitted but recorded no service samples")
        },
        unmeasured.is_empty() && !extra_stages.is_empty(),
    );
    let hits = registry.counter_total(toppriv_service::metrics::M_CACHE_HITS);
    inv.check(
        "cache_absorbs_crowd",
        format!("{hits} cache hits across {drained} submissions"),
        hits > 0,
    );
    inv.check(
        "intention_masked_or_negligible",
        format!(
            "{cycles} cycles under the crowd ({satisfied} satisfied); worst \
             min(exposure − mask_level, exposure − ε2) = {worst_violation:.3e}"
        ),
        satisfied > 0 && worst_violation <= 1e-9,
    );
    inv.check(
        "all_submissions_drained",
        format!("{drained} drained over {ROUNDS} rounds, {lost} lost"),
        lost == 0,
    );

    let qps = drained as f64 / drain_secs.max(1e-9);
    let notes = format!(
        "{SESSIONS} sessions ({HOT_SHARE_PCT}% on {HOT_QUERIES} hot queries), {SHARDS} shards, \
         {WORKERS} workers, {ROUNDS}x{CYCLES_PER_ROUND} cycles/session; per-shard submits {submits:?}"
    );
    let report = finish_with("flashcrowd", &manager, qps, notes, inv, extra_stages);
    manager.tier().clear_query_logs();
    report
}
