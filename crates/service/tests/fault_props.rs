//! Property tests over random fault schedules for the self-healing
//! drain (see `CycleScheduler::drain_resilient`):
//!
//! - **Survivor integrity**: every cycle the resilient drain delivers
//!   has genuine rankings bit-identical to a fault-free run of the same
//!   workload — faults may delay or kill cycles, never corrupt them.
//! - **Cycle atomicity**: nothing is silently lost — every planned
//!   cycle is either fully delivered or rolled back — and the coverage
//!   identity `engine submissions + cache hits == resolved outcomes`
//!   holds under retries and replans.
//! - **Bit-exact rollback**: rolling a cycle back leaves the session's
//!   trace accounting `to_bits`-identical to the snapshot taken before
//!   the cycle was formulated (the never-formulated state).
//!
//! Corpus + LDA builds are the expensive part, so the sampled corpus
//! dimension selects from a small pool of lazily-built random stacks
//! while fault rates, fleet seeds, tenant counts, and workloads stay
//! fully sampled per case.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};
use toppriv_service::{
    CycleScheduler, DrainPolicy, FaultKind, FaultPlane, FaultSpec, SessionManager, SessionMetrics,
    SubmitOutcome,
};
use tsearch_corpus::{
    generate_workload, BenchmarkQuery, CorpusConfig, SyntheticCorpus, WorkloadConfig,
};
use tsearch_lda::{LdaConfig, LdaModel, LdaTrainer};
use tsearch_search::{ScoringModel, SearchEngine};
use tsearch_text::Analyzer;

struct Stack {
    engine: Arc<SearchEngine>,
    model: Arc<LdaModel>,
    queries: Vec<BenchmarkQuery>,
}

fn build_stack(seed: u64, num_topics: usize, num_docs: usize) -> Stack {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs,
        num_topics,
        terms_per_topic: 40,
        seed,
        ..CorpusConfig::default()
    });
    let docs = corpus.token_docs();
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let engine = Arc::new(SearchEngine::build(
        &docs,
        &texts,
        Analyzer::new(),
        corpus.vocab.clone(),
        ScoringModel::TfIdfCosine,
    ));
    let model = Arc::new(LdaTrainer::train(
        &docs,
        corpus.vocab.len(),
        LdaConfig {
            iterations: 12,
            ..LdaConfig::with_topics(num_topics)
        },
    ));
    let queries = generate_workload(
        &corpus,
        &WorkloadConfig {
            num_queries: 12,
            seed: seed ^ 0x9E37,
            ..WorkloadConfig::default()
        },
    );
    Stack {
        engine,
        model,
        queries,
    }
}

/// Pool of random stacks, built once each.
fn stacks() -> &'static [Stack; 2] {
    static STACKS: OnceLock<[Stack; 2]> = OnceLock::new();
    STACKS.get_or_init(|| [build_stack(17, 4, 160), build_stack(0xFA11, 6, 200)])
}

/// Genuine hits per (session, cycle), score compared bitwise.
fn genuine_hits(outcomes: &[SubmitOutcome]) -> HashMap<(String, usize), Vec<(u32, u64)>> {
    let mut map = HashMap::new();
    for o in outcomes {
        if o.is_genuine {
            let prev = map.insert(
                (o.session.clone(), o.cycle_id),
                o.hits
                    .iter()
                    .map(|h| (h.doc_id, h.score.to_bits()))
                    .collect::<Vec<_>>(),
            );
            assert!(prev.is_none(), "one genuine outcome per cycle");
        }
    }
    map
}

/// Bitwise equality of two metrics snapshots (u64s by value, f64s by
/// bit pattern — NaN-safe and drift-intolerant).
fn metrics_bit_identical(a: &SessionMetrics, b: &SessionMetrics) -> bool {
    a.session == b.session
        && a.cycles == b.cycles
        && a.queries_emitted == b.queries_emitted
        && a.mean_cycle_len.to_bits() == b.mean_cycle_len.to_bits()
        && a.mean_exposure.to_bits() == b.mean_exposure.to_bits()
        && a.worst_exposure.to_bits() == b.worst_exposure.to_bits()
        && a.mean_mask_level.to_bits() == b.mean_mask_level.to_bits()
        && a.satisfied_rate.to_bits() == b.satisfied_rate.to_bits()
        && a.trace_exposure.to_bits() == b.trace_exposure.to_bits()
}

proptest! {
    /// Survivor integrity + cycle atomicity + coverage identity under a
    /// random rate-fault schedule.
    #[test]
    fn resilient_drain_survivors_match_fault_free(
        stack_idx in 0usize..2,
        tenants in 2usize..=4,
        cycles_per in 1usize..=3,
        fleet_seed: u64,
        fault_seed: u64,
        query_salt in 0usize..64,
        panic_rate in 0.0f64..0.35,
        stall_rate in 0.0f64..0.15,
    ) {
        let stack = &stacks()[stack_idx];
        // Fault-free baseline.
        let clean = SessionManager::new(stack.engine.clone(), stack.model.clone())
            .with_cache(2048)
            .with_fleet_seed(fleet_seed);
        // Same fleet under a random fault schedule: worker panics at
        // `panic_rate` plus short shard stalls at `stall_rate`.
        let plane = Arc::new(
            FaultPlane::new(fault_seed)
                .with_spec(FaultSpec::rate(FaultKind::WorkerPanic, panic_rate))
                .with_spec(FaultSpec::rate(FaultKind::ShardStall, stall_rate).stalling_ms(2)),
        );
        let faulty = SessionManager::new(stack.engine.clone(), stack.model.clone())
            .with_cache(2048)
            .with_fleet_seed(fleet_seed)
            .with_fault_plane(plane);
        for m in [&clean, &faulty] {
            for s in 0..tenants {
                m.open_session(&format!("t{s}")).unwrap();
            }
        }
        // Identical workloads plan identical queues (same fleet seed,
        // same per-session generator streams).
        let mut clean_plans = Vec::new();
        let mut faulty_plans = Vec::new();
        let mut planned: Vec<(String, usize)> = Vec::new();
        for r in 0..cycles_per {
            for s in 0..tenants {
                let id = format!("t{s}");
                let q = &stack.queries[(query_salt + s + r * 5) % stack.queries.len()];
                clean_plans.push(clean.plan_cycle(&id, &q.tokens, 10).unwrap());
                let plan = faulty.plan_cycle(&id, &q.tokens, 10).unwrap();
                planned.push((id, plan[0].scheduled.cycle_id));
                faulty_plans.push(plan);
            }
        }
        let baseline = genuine_hits(
            &CycleScheduler::for_manager(&clean, 2).run(clean_plans),
        );

        let scheduler = CycleScheduler::for_manager(&faulty, 2).with_policy(DrainPolicy {
            max_attempts: 3,
            ..DrainPolicy::default()
        });
        let report = scheduler.drain_resilient(&faulty, CycleScheduler::merge(faulty_plans));

        // (a) Every delivered genuine ranking is bit-identical to the
        // fault-free run — replanned cycles translate back to the
        // original cycle they replaced.
        let new_to_old: HashMap<(String, usize), usize> = report
            .replanned
            .iter()
            .map(|(s, old, new)| ((s.clone(), *new), *old))
            .collect();
        let delivered = genuine_hits(&report.outcomes);
        prop_assert!(!baseline.is_empty());
        for ((session, cycle_id), hits) in &delivered {
            let orig = new_to_old
                .get(&(session.clone(), *cycle_id))
                .copied()
                .unwrap_or(*cycle_id);
            let expect = baseline
                .get(&(session.clone(), orig))
                .expect("delivered cycle must exist in the fault-free run");
            prop_assert_eq!(hits, expect, "session {} cycle {}", session, cycle_id);
        }

        // (b) Nothing silently lost: every planned cycle is either
        // fully delivered or explicitly rolled back.
        let delivered_keys: HashSet<(String, usize)> = report
            .outcomes
            .iter()
            .map(|o| (o.session.clone(), o.cycle_id))
            .collect();
        let rolled: HashSet<(String, usize)> = report
            .rolled_back
            .iter()
            .map(|r| (r.session.clone(), r.cycle_id))
            .collect();
        for key in &planned {
            prop_assert!(
                delivered_keys.contains(key) || rolled.contains(key),
                "cycle {:?} neither delivered nor rolled back",
                key
            );
        }
        // A cycle is never both.
        prop_assert!(delivered_keys.is_disjoint(&rolled));

        // (c) Coverage identity under retries: every resolved per-tenant
        // outcome (delivered or discarded) was served by exactly one
        // engine submission or cache hit — failed attempts never count.
        let g = faulty.metrics().global;
        prop_assert_eq!(
            g.submitted,
            (report.outcomes.len() + report.discarded.len()) as u64
        );
        prop_assert_eq!(g.cache_hits + g.cache_misses, g.submitted);
    }

    /// Bit-exact rollback: unwinding planned cycles newest-first steps
    /// the session's accounting back through the exact snapshots taken
    /// before each plan — including refolds over a non-empty in-flight
    /// journal — and a confirmed cycle refuses to unwind.
    #[test]
    fn rollback_restores_never_formulated_accounting(
        stack_idx in 0usize..2,
        fleet_seed: u64,
        n in 2usize..=5,
        query_salt in 0usize..64,
        confirm_salt in 0usize..2,
    ) {
        let stack = &stacks()[stack_idx];
        let manager = SessionManager::new(stack.engine.clone(), stack.model.clone())
            .with_fleet_seed(fleet_seed);
        manager.open_session("t0").unwrap();
        let mut pre: Vec<SessionMetrics> = Vec::new();
        let mut ids: Vec<usize> = Vec::new();
        for i in 0..n {
            pre.push(manager.session_metrics("t0").unwrap());
            let q = &stack.queries[(query_salt + i) % stack.queries.len()];
            let plan = manager.plan_cycle("t0", &q.tokens, 10).unwrap();
            ids.push(plan[0].scheduled.cycle_id);
        }
        let confirm_first = confirm_salt == 1;
        let confirmed = if confirm_first {
            // Confirming the oldest cycle seals it: it must survive the
            // unwind below, and rolling it back must fail.
            manager.confirm_cycle("t0", ids[0]).unwrap();
            1
        } else {
            0
        };
        for i in (confirmed..n).rev() {
            let rb = manager.rollback_cycle("t0", ids[i]).unwrap();
            prop_assert_eq!(rb.cycle_id, ids[i]);
            let now = manager.session_metrics("t0").unwrap();
            prop_assert!(
                metrics_bit_identical(&pre[i], &now),
                "rollback of cycle {} left accounting residue",
                ids[i]
            );
            // Double rollback of the same cycle is rejected.
            prop_assert!(manager.rollback_cycle("t0", ids[i]).is_err());
        }
        if confirm_first {
            prop_assert!(
                manager.rollback_cycle("t0", ids[0]).is_err(),
                "confirmed (delivered) work must never reverse"
            );
            let now = manager.session_metrics("t0").unwrap();
            prop_assert_eq!(now.cycles, pre[1].cycles);
        }
    }
}
