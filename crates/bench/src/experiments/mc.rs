//! Experiment `mc1`: the Murugesan & Clifton canonical-query baseline.
//!
//! Quantifies the paper's criticism of reference \[10\] (Section II):
//! substituting the user query with the closest canonical query "affects
//! the precision-recall characteristics intended by the search engine
//! designer". We measure, per workload query:
//!
//! - result distortion: overlap@k and rank correlation between the true
//!   query's results and the canonical query's results (TopPriv is exact
//!   by construction: overlap 1.0);
//! - topical exposure of the MC group (canonical + covers) under the same
//!   LDA belief model, for comparison with TopPriv's cycles at equal
//!   deniability-set size.

use crate::context::ExperimentContext;
use crate::table::{f3, pct, ResultTable};
use toppriv_baselines::{LsiConfig, LsiModel, McConfig, McScheme};
use toppriv_core::{exposure, BeliefEngine, GhostConfig, GhostGenerator, PrivacyRequirement};
use tsearch_search::Query;

/// Result-list overlap@k between two hit lists.
fn overlap_at_k(a: &[tsearch_search::SearchHit], b: &[tsearch_search::SearchHit], k: usize) -> f64 {
    let sa: std::collections::HashSet<u32> = a.iter().take(k).map(|h| h.doc_id).collect();
    let sb: std::collections::HashSet<u32> = b.iter().take(k).map(|h| h.doc_id).collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let denom = sa.len().max(sb.len()).max(1);
    sa.intersection(&sb).count() as f64 / denom as f64
}

/// Builds the MC scheme for the context corpus.
pub fn build_scheme(ctx: &ExperimentContext) -> McScheme {
    let docs = ctx.corpus.token_docs();
    let lsi = LsiModel::train(
        &docs,
        ctx.corpus.vocab.len(),
        LsiConfig::default(), // 30 factors, as in reference [10]
    );
    let freq: Vec<u64> = (0..ctx.corpus.vocab.len() as u32)
        .map(|t| ctx.corpus.vocab.collection_freq(t))
        .collect();
    McScheme::build(lsi, &freq, McConfig::default())
}

/// Runs the comparison.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    const K: usize = 10;
    let scheme = build_scheme(ctx);
    let model = ctx.default_model();
    let belief = BeliefEngine::new(model.clone());
    let requirement = PrivacyRequirement::paper_default();
    let generator = GhostGenerator::new(
        BeliefEngine::new(model.clone()),
        requirement,
        GhostConfig::default(),
    );
    let queries = ctx.sweep_queries();

    let mut mc_overlap = 0.0;
    let mut mc_exposure = 0.0;
    let mut mc_group = 0.0;
    let mut tp_overlap = 0.0;
    let mut tp_exposure = 0.0;
    let mut tp_cycle = 0.0;
    let mut scored = 0usize;
    for q in queries {
        let solo_boosts = belief.boost(&q.tokens);
        let intention = requirement.user_intention(&solo_boosts);
        if intention.is_empty() {
            continue;
        }
        let Some(sub) = scheme.substitute(&q.tokens) else {
            continue;
        };
        scored += 1;

        // --- Result distortion -------------------------------------------
        let true_hits = ctx.engine.evaluate(&Query::from_tokens(&q.tokens), K);
        let canon_hits = ctx.engine.evaluate(
            &Query::from_tokens(scheme.canonical_tokens(sub.canonical)),
            K,
        );
        mc_overlap += overlap_at_k(&true_hits, &canon_hits, K);
        tp_overlap += 1.0; // TopPriv returns the true query's results

        // --- Topical exposure of the deniability set ----------------------
        let mut group_tokens: Vec<&[u32]> = vec![scheme.canonical_tokens(sub.canonical)];
        for &cover in &sub.covers {
            group_tokens.push(scheme.canonical_tokens(cover));
        }
        mc_group += group_tokens.len() as f64;
        let posteriors: Vec<Vec<f64>> = group_tokens.iter().map(|t| belief.posterior(t)).collect();
        let group_boosts = belief.cycle_boost(&posteriors);
        mc_exposure += exposure(&group_boosts, &intention);

        let result = generator.generate(&q.tokens);
        tp_exposure += exposure(&result.cycle_boosts, &result.intention);
        tp_cycle += result.cycle_len() as f64;
    }
    let n = scored.max(1) as f64;

    let mut table = ResultTable::new(
        "mc1_canonical_substitution",
        "Murugesan-Clifton substitution vs TopPriv (default model, eps=(5%,1%))",
        vec![
            "scheme".into(),
            "result_overlap@10".into(),
            "exposure_pct".into(),
            "deniability_set".into(),
            "queries".into(),
        ],
    );
    table.push_row(vec![
        "MC canonical".into(),
        f3(mc_overlap / n),
        pct(mc_exposure / n),
        f3(mc_group / n),
        scored.to_string(),
    ]);
    table.push_row(vec![
        "TopPriv".into(),
        f3(tp_overlap / n),
        pct(tp_exposure / n),
        f3(tp_cycle / n),
        scored.to_string(),
    ]);
    vec![table]
}
