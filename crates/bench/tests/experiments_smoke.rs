//! Smoke test for the whole reproduction harness: every experiment runs
//! at quick scale and produces well-formed tables (non-empty, rectangular,
//! CSV-serializable). Guards the `reproduce` binary's full surface.

use toppriv_bench::experiments;
use toppriv_bench::{ExperimentContext, ResultTable, Scale};

fn check(tables: &[ResultTable], exp: &str) {
    assert!(!tables.is_empty(), "{exp}: no tables");
    for t in tables {
        assert!(!t.header.is_empty(), "{exp}/{}: empty header", t.name);
        assert!(!t.rows.is_empty(), "{exp}/{}: no rows", t.name);
        for (i, row) in t.rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                t.header.len(),
                "{exp}/{}: row {i} is ragged",
                t.name
            );
        }
        let csv = t.to_csv();
        assert_eq!(
            csv.lines().count(),
            t.rows.len() + 1,
            "{exp}/{}: csv line count",
            t.name
        );
    }
}

type ExperimentFn = fn(&ExperimentContext) -> Vec<ResultTable>;

#[test]
fn every_experiment_runs_at_quick_scale() {
    let ctx = ExperimentContext::build(Scale::quick(), None);
    let runs: Vec<(&str, ExperimentFn)> = vec![
        ("stats", experiments::stats::run),
        ("tables", experiments::tables::run),
        ("fig2", experiments::fig2::run),
        ("fig3", experiments::fig3::run),
        ("fig4", experiments::fig4::run),
        ("fig5", experiments::fig5::run),
        ("fig6", experiments::fig6::run),
        ("ablations", experiments::ablations::run),
        ("adversary", experiments::adversary::run),
        ("classifier", experiments::classifier::run),
        ("mc", experiments::mc::run),
        ("session", experiments::session::run),
        ("reduced", experiments::reduced::run),
        ("pacing", experiments::pacing::run),
        ("quality", experiments::quality::run),
        ("load", experiments::load::run),
        ("service", experiments::service::run),
        ("sharding", experiments::sharding::run),
        ("staleness", experiments::staleness::run),
        ("appendix", experiments::appendix::run),
    ];
    let expected: usize = runs.len();
    let mut ran = 0usize;
    for (exp, f) in runs {
        let tables = f(&ctx);
        check(&tables, exp);
        ran += 1;
    }
    assert_eq!(ran, expected);
}
