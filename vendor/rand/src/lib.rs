//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Provides [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64) and the
//! `Rng`/`SeedableRng` trait subset the workspace uses: `gen`,
//! `gen_range` over integer/float `Range`/`RangeInclusive`, and
//! `seed_from_u64`. The stream differs from upstream `rand`'s ChaCha12
//! `StdRng`, but every consumer in this workspace only relies on
//! *determinism under a fixed seed*, never on the exact stream.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw bits (the subset of
/// `rand`'s `Standard` distribution this workspace uses via `rng.gen()`).
pub trait Standard: Sized {
    /// One uniform sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// One uniform sample from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// One uniform sample of `T` (mirrors `rand`'s `Standard`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// One uniform sample from `range`. Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand`'s
    /// `StdRng`; same trait surface, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0u32..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn covers_small_range_fully() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
