//! Sharded LRU result cache.
//!
//! Multi-tenant decoy traffic is highly redundant: the ghost generator is
//! deterministic per query content (the RNG is seeded from the token
//! hash), so two tenants protecting the same query emit the *same* ghost
//! cycle, and popular masking topics repeat their top words across
//! tenants. The seed's `load` experiment prices each ghost at a full
//! engine evaluation (~7× a genuine query per cycle); this cache absorbs
//! the duplicates before they reach the engine.
//!
//! Keys are normalized term multisets (sorted token ids) plus the result
//! count `k` — the engine treats queries as bags of words, so token order
//! never matters. Entries live in N independently locked shards selected
//! by key hash; each shard is a classic intrusive-list LRU, so a get
//! refreshes recency in O(1) and eviction removes the least-recently-used
//! entry of that shard.
//!
//! Privacy note: the cache sits *inside* the trusted service boundary,
//! and per-session privacy accounting covers every cycle member whether
//! or not it hit cache, so the `(ε1, ε2)` certificates themselves are
//! unchanged. The cache's effectiveness *depends on* ghost determinism
//! per query content — which, under a publicly known seed, would let an
//! engine-side adversary replay ghost generation per logged query and
//! test which query's regenerated decoys all appear in the log (a
//! stronger probing attack than the paper's, which assumes the client
//! seed is secret). The [`crate::SessionManager`] therefore mixes a
//! per-fleet **secret** seed into every session's `GhostConfig`: all
//! sessions of the fleet share it, so cross-tenant decoys stay
//! cache-identical, but the engine cannot regenerate them, restoring the
//! paper's secret-seed assumption. See
//! [`SessionManager::with_fleet_seed`](crate::SessionManager::with_fleet_seed)
//! to pin the secret across service replicas (replicas with different
//! secrets still work — they just stop sharing decoy cache entries).

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use toppriv_obs::{recover_lock, Counter, HistogramHandle, MetricsRegistry};
use tsearch_search::SearchHit;
use tsearch_text::TermId;

/// Metric name: per-cache-shard lookup hits.
pub const M_CACHE_SHARD_HITS: &str = "cache_hits_total";
/// Metric name: per-cache-shard lookup misses.
pub const M_CACHE_SHARD_MISSES: &str = "cache_misses_total";
/// Metric name: per-cache-shard LRU evictions.
pub const M_CACHE_EVICTIONS: &str = "cache_evictions_total";
/// Metric name: cache lookup latency histogram (µs).
pub const M_CACHE_LOOKUP_US: &str = "cache_lookup_us";
/// Metric name: poisoned entries detected and healed (dropped) on lookup.
pub const M_CACHE_POISON_HEALS: &str = "cache_poison_heals_total";

/// Registry handles the cache publishes into when bound via
/// [`ResultCache::with_registry`]: per-shard hit/miss/eviction counters
/// plus one lookup-latency histogram.
struct CacheObs {
    hits: Vec<Counter>,
    misses: Vec<Counter>,
    evictions: Vec<Counter>,
    heals: Counter,
    lookup_us: HistogramHandle,
}

impl CacheObs {
    fn new(registry: &MetricsRegistry, shards: usize) -> Self {
        let per_shard = |name: &str| -> Vec<Counter> {
            (0..shards)
                .map(|s| registry.counter(name, &[("shard", &s.to_string())]))
                .collect()
        };
        CacheObs {
            hits: per_shard(M_CACHE_SHARD_HITS),
            misses: per_shard(M_CACHE_SHARD_MISSES),
            evictions: per_shard(M_CACHE_EVICTIONS),
            heals: registry.counter(M_CACHE_POISON_HEALS, &[]),
            lookup_us: registry.histogram(M_CACHE_LOOKUP_US, &[]),
        }
    }
}

/// Normalized cache key: sorted tokens + requested depth.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    tokens: Vec<TermId>,
    k: usize,
}

impl CacheKey {
    /// Normalizes a token query (sorts; duplicates are kept — the engine
    /// scores term frequency, so `a a b` and `a b` are different bags).
    pub fn new(tokens: &[TermId], k: usize) -> Self {
        let mut tokens = tokens.to_vec();
        tokens.sort_unstable();
        CacheKey { tokens, k }
    }

    fn shard_of(&self, shards: usize) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % shards
    }
}

const NO_SLOT: usize = usize::MAX;

struct Entry {
    key: CacheKey,
    hits: Vec<SearchHit>,
    prev: usize,
    next: usize,
}

/// One LRU shard: slot arena + hash index + intrusive recency list.
struct Shard {
    slots: Vec<Entry>,
    index: HashMap<CacheKey, usize>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            slots: Vec::with_capacity(capacity.min(64)),
            index: HashMap::new(),
            free: Vec::new(),
            head: NO_SLOT,
            tail: NO_SLOT,
            capacity,
        }
    }

    /// Unlinks `slot` from the recency list.
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        match prev {
            NO_SLOT => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NO_SLOT => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    /// Links `slot` at the head (most recently used).
    fn link_front(&mut self, slot: usize) {
        self.slots[slot].prev = NO_SLOT;
        self.slots[slot].next = self.head;
        match self.head {
            NO_SLOT => self.tail = slot,
            h => self.slots[h].prev = slot,
        }
        self.head = slot;
    }

    fn get(&mut self, key: &CacheKey) -> Option<Vec<SearchHit>> {
        let slot = *self.index.get(key)?;
        self.unlink(slot);
        self.link_front(slot);
        Some(self.slots[slot].hits.clone())
    }

    /// Inserts (or refreshes) an entry; returns whether an existing
    /// entry had to be evicted to make room.
    fn insert(&mut self, key: CacheKey, hits: Vec<SearchHit>) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&slot) = self.index.get(&key) {
            self.slots[slot].hits = hits;
            self.unlink(slot);
            self.link_front(slot);
            return false;
        }
        let mut evicted = false;
        if self.index.len() >= self.capacity {
            // Evict the least recently used entry of this shard.
            let victim = self.tail;
            self.unlink(victim);
            let old_key = self.slots[victim].key.clone();
            self.index.remove(&old_key);
            self.free.push(victim);
            evicted = true;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Entry {
                    key: key.clone(),
                    hits,
                    prev: NO_SLOT,
                    next: NO_SLOT,
                };
                s
            }
            None => {
                self.slots.push(Entry {
                    key: key.clone(),
                    hits,
                    prev: NO_SLOT,
                    next: NO_SLOT,
                });
                self.slots.len() - 1
            }
        };
        self.index.insert(key, slot);
        self.link_front(slot);
        evicted
    }

    /// Removes an entry outright; returns whether it was present. The
    /// slot is recycled through the free list like an eviction.
    fn remove(&mut self, key: &CacheKey) -> bool {
        let Some(slot) = self.index.remove(key) else {
            return false;
        };
        self.unlink(slot);
        self.slots[slot].hits = Vec::new();
        self.free.push(slot);
        true
    }

    fn len(&self) -> usize {
        self.index.len()
    }
}

/// Thread-safe sharded LRU cache of search results.
///
/// ## Example
///
/// ```
/// use toppriv_service::ResultCache;
/// use tsearch_search::SearchHit;
///
/// let cache = ResultCache::new(1024);
/// let hits = vec![SearchHit { doc_id: 7, score: 1.5 }];
/// // Keys normalize token order: `a b` and `b a` are the same bag.
/// cache.insert(&[3, 1], 10, hits.clone());
/// assert_eq!(cache.get(&[1, 3], 10).unwrap()[0].doc_id, 7);
/// // A different result depth is a different key.
/// assert!(cache.get(&[1, 3], 5).is_none());
/// let (cached, was_hit) = cache.get_or_compute(&[1, 3], 10, || unreachable!());
/// assert!(was_hit && cached[0].doc_id == 7);
/// ```
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
    obs: Option<CacheObs>,
    /// Keys flagged as corrupted by fault injection
    /// ([`crate::FaultKind::CachePoison`]): lookups self-heal by dropping
    /// the entry and reporting a miss, forcing a fresh engine evaluation.
    poisoned: Mutex<HashSet<CacheKey>>,
    /// Cheap hot-path gate: `get` only consults the poisoned set when
    /// this is non-zero, so fault-free lookups pay one relaxed load.
    poisoned_count: AtomicU64,
    heals: AtomicU64,
}

/// Default shard count (capacity permitting).
pub const DEFAULT_SHARDS: usize = 16;

impl ResultCache {
    /// A cache holding at most `capacity` entries across [`DEFAULT_SHARDS`]
    /// shards (fewer shards when the capacity is tiny).
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_SHARDS.min(capacity.max(1)))
    }

    /// Explicit shard count; total capacity is split evenly (rounded up).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards);
        ResultCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity,
            obs: None,
            poisoned: Mutex::new(HashSet::new()),
            poisoned_count: AtomicU64::new(0),
            heals: AtomicU64::new(0),
        }
    }

    /// Binds the cache to a metrics registry: per-shard
    /// [`M_CACHE_SHARD_HITS`] / [`M_CACHE_SHARD_MISSES`] /
    /// [`M_CACHE_EVICTIONS`] counters and the [`M_CACHE_LOOKUP_US`]
    /// latency histogram publish there on every lookup.
    pub fn with_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.obs = Some(CacheObs::new(&registry, self.shards.len()));
        self
    }

    /// The configured total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn shard(&self, key: &CacheKey) -> (usize, &Mutex<Shard>) {
        let s = key.shard_of(self.shards.len());
        (s, &self.shards[s])
    }

    /// Looks up a normalized query, refreshing its recency.
    ///
    /// A key flagged via [`ResultCache::poison`] self-heals here: the
    /// corrupted entry is dropped, the flag cleared, and the lookup
    /// reports a miss so the caller recomputes from the engine.
    pub fn get(&self, tokens: &[TermId], k: usize) -> Option<Vec<SearchHit>> {
        let t0 = Instant::now();
        let key = CacheKey::new(tokens, k);
        let (s, shard) = self.shard(&key);
        if self.poisoned_count.load(Ordering::Relaxed) > 0
            && recover_lock(&self.poisoned).remove(&key)
        {
            self.poisoned_count.fetch_sub(1, Ordering::Relaxed);
            recover_lock(shard).remove(&key);
            self.heals.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            if let Some(obs) = &self.obs {
                obs.heals.inc();
                obs.misses[s].inc();
                obs.lookup_us.record(t0.elapsed().as_micros() as u64);
            }
            return None;
        }
        let found = recover_lock(shard).get(&key);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        if let Some(obs) = &self.obs {
            obs.lookup_us.record(t0.elapsed().as_micros() as u64);
            match &found {
                Some(_) => obs.hits[s].inc(),
                None => obs.misses[s].inc(),
            }
        }
        found
    }

    /// Inserts (or refreshes) a result list.
    pub fn insert(&self, tokens: &[TermId], k: usize, hits: Vec<SearchHit>) {
        let key = CacheKey::new(tokens, k);
        let (s, shard) = self.shard(&key);
        let evicted = recover_lock(shard).insert(key, hits);
        if evicted {
            if let Some(obs) = &self.obs {
                obs.evictions[s].inc();
            }
        }
    }

    /// Cache-through read: returns `(hits, was_cache_hit)`, computing and
    /// inserting on miss. The shard lock is *not* held while `compute`
    /// runs, so concurrent misses on the same key may both evaluate (last
    /// write wins) — the engine is read-only, so that is merely duplicated
    /// work, never inconsistency.
    pub fn get_or_compute(
        &self,
        tokens: &[TermId],
        k: usize,
        compute: impl FnOnce() -> Vec<SearchHit>,
    ) -> (Vec<SearchHit>, bool) {
        if let Some(hits) = self.get(tokens, k) {
            return (hits, true);
        }
        let hits = compute();
        self.insert(tokens, k, hits.clone());
        (hits, false)
    }

    /// Fan-out-aware [`ResultCache::get_or_compute`] for submissions
    /// shared by `subscribers` tenants (the planner's coalesced entries).
    ///
    /// Hit-rate accounting is **per subscribing tenant**, not per
    /// physical lookup: from each tenant's point of view its submission
    /// was served without touching the engine, so beyond the first
    /// subscriber (who pays the real lookup, hit or miss) every further
    /// subscriber counts as one cache hit — globally and on the entry's
    /// cache shard. Per-submission counting here would silently
    /// understate the hit rate under coalescing. Returns the first
    /// subscriber's `(hits, was_cache_hit)`.
    pub fn get_or_compute_shared(
        &self,
        tokens: &[TermId],
        k: usize,
        subscribers: usize,
        compute: impl FnOnce() -> Vec<SearchHit>,
    ) -> (Vec<SearchHit>, bool) {
        let (hits, was_hit) = self.get_or_compute(tokens, k, compute);
        let extra = subscribers.saturating_sub(1) as u64;
        if extra > 0 {
            self.hits.fetch_add(extra, Ordering::Relaxed);
            if let Some(obs) = &self.obs {
                let key = CacheKey::new(tokens, k);
                obs.hits[key.shard_of(self.shards.len())].add(extra);
            }
        }
        (hits, was_hit)
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| recover_lock(s).len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, 0 when never used.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Flags a cached entry as corrupted ([`crate::FaultKind::CachePoison`]
    /// injection point). Returns whether the entry was present. The next
    /// [`ResultCache::get`] of the key drops it and reports a miss — the
    /// cache never serves a poisoned result, and the flag clears itself.
    pub fn poison(&self, tokens: &[TermId], k: usize) -> bool {
        let key = CacheKey::new(tokens, k);
        let (_, shard) = self.shard(&key);
        let present = recover_lock(shard).index.contains_key(&key);
        if present && recover_lock(&self.poisoned).insert(key) {
            self.poisoned_count.fetch_add(1, Ordering::Relaxed);
        }
        present
    }

    /// Removes an entry (and any poison flag on it) outright. Returns
    /// whether a cached entry was dropped.
    pub fn invalidate(&self, tokens: &[TermId], k: usize) -> bool {
        let key = CacheKey::new(tokens, k);
        if recover_lock(&self.poisoned).remove(&key) {
            self.poisoned_count.fetch_sub(1, Ordering::Relaxed);
        }
        let (_, shard) = self.shard(&key);
        recover_lock(shard).remove(&key)
    }

    /// Poisoned entries detected and dropped by [`ResultCache::get`].
    pub fn poison_heals(&self) -> u64 {
        self.heals.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(doc_id: u32) -> SearchHit {
        SearchHit {
            doc_id,
            score: doc_id as f64,
        }
    }

    #[test]
    fn get_after_insert_and_normalization() {
        let cache = ResultCache::new(8);
        cache.insert(&[3, 1, 2], 10, vec![hit(7)]);
        // Token order does not matter; k does.
        assert_eq!(cache.get(&[1, 2, 3], 10).unwrap()[0].doc_id, 7);
        assert!(cache.get(&[1, 2, 3], 5).is_none());
        // Duplicates are a different bag.
        assert!(cache.get(&[1, 1, 2, 3], 10).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest_first() {
        // Single shard so the recency order is total.
        let cache = ResultCache::with_shards(3, 1);
        cache.insert(&[1], 10, vec![hit(1)]);
        cache.insert(&[2], 10, vec![hit(2)]);
        cache.insert(&[3], 10, vec![hit(3)]);
        assert_eq!(cache.len(), 3);
        cache.insert(&[4], 10, vec![hit(4)]);
        assert_eq!(cache.len(), 3);
        assert!(cache.get(&[1], 10).is_none(), "oldest entry evicted");
        assert!(cache.get(&[2], 10).is_some());
        assert!(cache.get(&[3], 10).is_some());
        assert!(cache.get(&[4], 10).is_some());
    }

    #[test]
    fn get_refreshes_recency() {
        let cache = ResultCache::with_shards(3, 1);
        cache.insert(&[1], 10, vec![hit(1)]);
        cache.insert(&[2], 10, vec![hit(2)]);
        cache.insert(&[3], 10, vec![hit(3)]);
        // Touch [1]: now [2] is the LRU entry.
        assert!(cache.get(&[1], 10).is_some());
        cache.insert(&[4], 10, vec![hit(4)]);
        assert!(cache.get(&[2], 10).is_none(), "LRU after refresh is [2]");
        assert!(cache.get(&[1], 10).is_some(), "refreshed entry survives");
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let cache = ResultCache::with_shards(2, 1);
        cache.insert(&[1], 10, vec![hit(1)]);
        cache.insert(&[2], 10, vec![hit(2)]);
        cache.insert(&[1], 10, vec![hit(99)]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&[1], 10).unwrap()[0].doc_id, 99);
        assert!(cache.get(&[2], 10).is_some());
    }

    #[test]
    fn eviction_slots_are_reused() {
        let cache = ResultCache::with_shards(2, 1);
        for i in 0..100u32 {
            cache.insert(&[i], 10, vec![hit(i)]);
        }
        assert_eq!(cache.len(), 2);
        let shard = cache.shards[0].lock().unwrap();
        assert!(
            shard.slots.len() <= 3,
            "arena should recycle slots, used {}",
            shard.slots.len()
        );
    }

    #[test]
    fn get_or_compute_counts_hits() {
        let cache = ResultCache::new(8);
        let (r1, was_hit) = cache.get_or_compute(&[5, 6], 10, || vec![hit(42)]);
        assert!(!was_hit);
        assert_eq!(r1[0].doc_id, 42);
        let (r2, was_hit) = cache.get_or_compute(&[6, 5], 10, || unreachable!("cached"));
        assert!(was_hit);
        assert_eq!(r2[0].doc_id, 42);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_hits_count_once_per_subscriber() {
        let registry = Arc::new(MetricsRegistry::new());
        let cache = ResultCache::with_shards(8, 1).with_registry(registry.clone());
        // Miss shared by 3 tenants: 1 physical miss + 2 per-tenant hits.
        let (_, was_hit) = cache.get_or_compute_shared(&[1, 2], 10, 3, || vec![hit(1)]);
        assert!(!was_hit);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        // Hit shared by 4 tenants: all 4 count as hits.
        let (_, was_hit) = cache.get_or_compute_shared(&[2, 1], 10, 4, || unreachable!());
        assert!(was_hit);
        assert_eq!(cache.hits(), 6);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 6.0 / 7.0).abs() < 1e-12);
        // The per-shard obs counters agree with the global atomics.
        assert_eq!(registry.counter_total(M_CACHE_SHARD_HITS), 6);
        assert_eq!(registry.counter_total(M_CACHE_SHARD_MISSES), 1);
        // A single subscriber degenerates to plain get_or_compute.
        let (_, was_hit) = cache.get_or_compute_shared(&[1, 2], 10, 1, || unreachable!());
        assert!(was_hit);
        assert_eq!(cache.hits(), 7);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = std::sync::Arc::new(ResultCache::new(64));
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..200u32 {
                        // Keys normalize by sorting, so the expected value
                        // must be order-independent too.
                        let q = [i % 32, t % 4];
                        let (lo, hi) = (q[0].min(q[1]), q[0].max(q[1]));
                        let (hits, _) = cache.get_or_compute(&q, 10, || vec![hit(lo * 100 + hi)]);
                        assert_eq!(hits[0].doc_id, lo * 100 + hi);
                    }
                });
            }
        });
        assert!(cache.hits() > 0);
        assert!(cache.len() <= 64);
    }

    #[test]
    fn registry_binding_publishes_per_shard_counts() {
        let registry = Arc::new(MetricsRegistry::new());
        // Single shard so hit/miss/eviction attribution is deterministic.
        let cache = ResultCache::with_shards(2, 1).with_registry(registry.clone());
        cache.insert(&[1], 10, vec![hit(1)]);
        cache.insert(&[2], 10, vec![hit(2)]);
        cache.insert(&[3], 10, vec![hit(3)]); // evicts [1]
        assert!(cache.get(&[2], 10).is_some());
        assert!(cache.get(&[1], 10).is_none());
        assert_eq!(registry.counter_total(M_CACHE_SHARD_HITS), 1);
        assert_eq!(registry.counter_total(M_CACHE_SHARD_MISSES), 1);
        assert_eq!(registry.counter_total(M_CACHE_EVICTIONS), 1);
        let lookups = registry.merged_histogram(M_CACHE_LOOKUP_US).unwrap();
        assert_eq!(lookups.count(), 2);
    }

    #[test]
    fn poisoned_entry_self_heals_as_miss() {
        let registry = Arc::new(MetricsRegistry::new());
        let cache = ResultCache::with_shards(8, 1).with_registry(registry.clone());
        cache.insert(&[1, 2], 10, vec![hit(7)]);
        assert!(cache.poison(&[2, 1], 10), "entry present, flag set");
        assert!(!cache.poison(&[9], 10), "absent key cannot be poisoned");
        // The poisoned result is never served: first get heals (miss),
        // and the entry is gone afterwards.
        assert!(cache.get(&[1, 2], 10).is_none());
        assert_eq!(cache.poison_heals(), 1);
        assert_eq!(cache.misses(), 1, "a heal counts as a plain miss");
        assert!(cache.get(&[1, 2], 10).is_none(), "entry dropped for good");
        assert_eq!(cache.poison_heals(), 1, "flag cleared after one heal");
        // Re-inserting the key serves cleanly again.
        cache.insert(&[1, 2], 10, vec![hit(8)]);
        assert_eq!(cache.get(&[1, 2], 10).unwrap()[0].doc_id, 8);
        assert_eq!(registry.counter_total(M_CACHE_POISON_HEALS), 1);
    }

    #[test]
    fn invalidate_removes_entry_and_flag() {
        let cache = ResultCache::with_shards(4, 1);
        cache.insert(&[1], 10, vec![hit(1)]);
        cache.insert(&[2], 10, vec![hit(2)]);
        assert!(cache.poison(&[1], 10));
        assert!(cache.invalidate(&[1], 10));
        assert!(!cache.invalidate(&[1], 10), "already gone");
        assert!(cache.get(&[1], 10).is_none());
        assert_eq!(cache.poison_heals(), 0, "invalidate is not a heal");
        assert_eq!(cache.len(), 1);
        // Freed slot is recycled.
        cache.insert(&[3], 10, vec![hit(3)]);
        let shard = cache.shards[0].lock().unwrap();
        assert!(shard.slots.len() <= 2, "used {}", shard.slots.len());
    }

    #[test]
    fn zero_capacity_never_stores() {
        let cache = ResultCache::new(0);
        cache.insert(&[1], 10, vec![hit(1)]);
        assert!(cache.get(&[1], 10).is_none());
        assert!(cache.is_empty());
    }
}
