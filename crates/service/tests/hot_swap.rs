//! Integration tests for zero-downtime model swaps and drain fault
//! surfacing:
//!
//! - `GhostGenerator` determinism across an epoch swap: under one fleet
//!   seed, the same query terms must produce identical decoys before and
//!   after swapping in a bit-identical reloaded model, and the shared
//!   result cache must serve the post-swap cycle (cache identity).
//! - Same-K swaps keep per-session accounting continuous; K-changing
//!   swaps reset the trace accounting (the old posteriors are
//!   meaningless in the new topic space).
//! - `CycleScheduler` drains surface per-shard worker panics as
//!   [`DrainError`]s (and `drain` aborts loudly) instead of silently
//!   dropping outcomes.

use std::sync::Arc;
use toppriv_service::{CycleScheduler, SearchTier, SessionManager};
use tsearch_corpus::{generate_workload, CorpusConfig, SyntheticCorpus, WorkloadConfig};
use tsearch_lda::{LdaConfig, LdaTrainer};
use tsearch_search::{ScoringModel, ShardedEngine};
use tsearch_text::Analyzer;

const FLEET_SEED: u64 = 0xF1EE7;
const TOP_K: usize = 10;

struct Stack {
    corpus: SyntheticCorpus,
    manager: Arc<SessionManager>,
}

fn stack() -> Stack {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: 200,
        num_topics: 8,
        terms_per_topic: 50,
        ..CorpusConfig::default()
    });
    let docs = corpus.token_docs();
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let engine = Arc::new(ShardedEngine::build(
        &docs,
        &texts,
        Analyzer::new(),
        corpus.vocab.clone(),
        ScoringModel::TfIdfCosine,
        4,
    ));
    let model = Arc::new(LdaTrainer::train(
        &docs,
        corpus.vocab.len(),
        LdaConfig {
            iterations: 20,
            ..LdaConfig::with_topics(12)
        },
    ));
    let manager = Arc::new(
        SessionManager::with_tier(SearchTier::Sharded(engine), model)
            .with_cache(2048)
            .with_fleet_seed(FLEET_SEED),
    );
    Stack { corpus, manager }
}

fn probe_tokens(corpus: &SyntheticCorpus) -> Vec<u32> {
    let queries = generate_workload(
        corpus,
        &WorkloadConfig {
            num_queries: 4,
            ..WorkloadConfig::default()
        },
    );
    queries[0].tokens.clone()
}

#[test]
fn ghost_generation_is_deterministic_across_identical_swap() {
    let stack = stack();
    let manager = &stack.manager;
    let probe = probe_tokens(&stack.corpus);
    manager.open_session("before").unwrap();
    let pre = manager.search_tokens("before", &probe, TOP_K).unwrap();

    // A real reload: the model goes through its storage codec.
    let reloaded = Arc::new(tsearch_lda::decode(&tsearch_lda::encode(&manager.model())).unwrap());
    assert_eq!(manager.swap_model(reloaded), 1);
    assert_eq!(manager.model_epoch(), 1);

    // A session opened *after* the swap formulates against the new Arc,
    // but same fleet seed + same terms must yield the identical cycle.
    manager.open_session("after").unwrap();
    let post = manager.search_tokens("after", &probe, TOP_K).unwrap();
    assert_eq!(pre.report.cycle.len(), post.report.cycle.len());
    for (a, b) in pre.report.cycle.iter().zip(&post.report.cycle) {
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.is_genuine, b.is_genuine);
    }
    assert_eq!(pre.report.genuine_index, post.report.genuine_index);
    // Identical decoys → the whole post-swap cycle is served from the
    // shared cross-tenant cache, not the engine.
    assert_eq!(post.cache_hits, post.report.cycle.len());
    // And the genuine ranking is unchanged.
    assert_eq!(pre.hits.len(), post.hits.len());
    for (a, b) in pre.hits.iter().zip(&post.hits) {
        assert_eq!(a.doc_id, b.doc_id);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
}

#[test]
fn same_k_swap_keeps_accounting_k_change_resets_it() {
    let stack = stack();
    let manager = &stack.manager;
    let probe = probe_tokens(&stack.corpus);
    manager.open_session("t").unwrap();
    manager.search_tokens("t", &probe, TOP_K).unwrap();
    let before = manager.session_metrics("t").unwrap();
    assert_eq!(before.cycles, 1);
    assert!(before.trace_exposure > 0.0);

    // Same K: accounting carries across the swap.
    let same_k = Arc::new(tsearch_lda::decode(&tsearch_lda::encode(&manager.model())).unwrap());
    manager.swap_model(same_k);
    manager.search_tokens("t", &probe, TOP_K).unwrap();
    let carried = manager.session_metrics("t").unwrap();
    assert_eq!(carried.cycles, 2);

    // Different K: the topic space changed, the trace restarts.
    let docs = stack.corpus.token_docs();
    let other_k = Arc::new(LdaTrainer::train(
        &docs,
        stack.corpus.vocab.len(),
        LdaConfig {
            iterations: 5,
            ..LdaConfig::with_topics(6)
        },
    ));
    manager.swap_model(other_k);
    manager.search_tokens("t", &probe, TOP_K).unwrap();
    let reset = manager.session_metrics("t").unwrap();
    // The cycle counter keeps counting work done, but the Equation-2
    // trace accounting restarted in the new topic space: exactly the
    // one post-reset query is accumulated.
    assert_eq!(reset.cycles, 3);
    assert_eq!(manager.model_epoch(), 2);
}

#[test]
fn drain_surfaces_worker_panics_instead_of_dropping_outcomes() {
    let stack = stack();
    let manager = &stack.manager;
    let probe = probe_tokens(&stack.corpus);
    manager.open_session("healthy").unwrap();
    manager.open_session("poisoned").unwrap();
    let mut plans = Vec::new();
    for id in ["healthy", "poisoned"] {
        plans.push(manager.plan_cycle(id, &probe, TOP_K).unwrap());
    }
    let queue = CycleScheduler::merge(plans);
    let expected = queue.len();
    let poisoned: usize = queue.iter().filter(|p| p.session == "poisoned").count();
    assert!(poisoned > 0);

    let scheduler = CycleScheduler::for_manager(manager, 4)
        .with_worker_fault(Arc::new(|plan| plan.session == "poisoned"));
    let err = scheduler
        .try_drain(queue.clone())
        .expect_err("poisoned submissions must surface as a drain error");
    assert_eq!(err.failures.len(), poisoned);
    assert_eq!(err.completed.len(), expected - poisoned);
    assert_eq!(err.expected, expected);
    assert!(err.failures.iter().all(|f| f.session == "poisoned"));
    let msg = err.to_string();
    assert!(msg.contains("poisoned"), "error names the session: {msg}");

    // The panicking `drain` front-end aborts loudly with the same story.
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        scheduler.drain(queue);
    }))
    .expect_err("drain must panic when submissions are lost");
    let text = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        text.contains("drain lost"),
        "panic explains the loss: {text}"
    );

    // Without the fault the same queue drains completely.
    let clean = CycleScheduler::for_manager(manager, 4);
    let mut replans = Vec::new();
    for id in ["healthy", "poisoned"] {
        replans.push(manager.plan_cycle(id, &probe, TOP_K).unwrap());
    }
    let outcomes = clean
        .try_drain(CycleScheduler::merge(replans))
        .expect("clean drain");
    assert_eq!(outcomes.len(), expected);
}
