//! Reproduction driver: regenerates every table and figure of the paper.
//!
//! Usage:
//! ```text
//! reproduce [EXPERIMENT ...]
//!           [--exp all|fig2|fig3|fig4|fig5|fig6|tables|stats|ablations|adversary|
//!                  classifier|mc|session|reduced|pacing|quality|load|service|sharding|
//!                  staleness|scenarios|audit|planner|appendix]
//!           [diff [--baseline-dir D] [--bench-dir D] [--threshold PCT]]
//!           [--scale quick|standard] [--out results] [--no-cache] [--quiet]
//! ```
//!
//! Bare positional names select experiments (`reproduce -- service
//! sharding`); the `service`, `sharding`, `staleness`, `scenarios`,
//! `audit`, and `planner` experiments additionally write machine-readable
//! `BENCH_<name>.json` snapshots (per-stage p50/p99 from the
//! toppriv-obs histograms) to the current directory or
//! `$TOPPRIV_BENCH_DIR`.
//!
//! `reproduce -- diff [--baseline-dir D] [--bench-dir D] [--threshold PCT]`
//! compares fresh `BENCH_*.json` snapshots against the recorded
//! baselines (default `results/baselines/`) and exits non-zero when any
//! stage p99 or run qps regressed beyond the threshold.

use std::path::PathBuf;
use std::time::Instant;
use toppriv_bench::diff::{diff_dirs, DiffConfig};
use toppriv_bench::experiments;
use toppriv_bench::{ExperimentContext, ResultTable, Scale};

struct Args {
    exps: Vec<String>,
    scale: Scale,
    out: PathBuf,
    cache: bool,
    quiet: bool,
}

const ALL_EXPS: &[&str] = &[
    "stats",
    "tables",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "ablations",
    "adversary",
    "classifier",
    "mc",
    "session",
    "reduced",
    "pacing",
    "quality",
    "load",
    "service",
    "sharding",
    "staleness",
    "scenarios",
    "audit",
    "planner",
    "appendix",
];

/// Handles `reproduce -- diff ...` without building a context: parses
/// the diff flags, runs the comparison, prints the report, and exits —
/// non-zero iff regressions were flagged (missing snapshots and parse
/// errors are reported but do not fail the diff).
fn run_diff(argv: &[String]) -> ! {
    let mut baseline_dir = PathBuf::from("results/baselines");
    let mut bench_dir = toppriv_obs::bench_dir();
    let mut cfg = DiffConfig::default();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--baseline-dir" => {
                i += 1;
                baseline_dir = PathBuf::from(argv.get(i).unwrap_or_else(|| {
                    eprintln!("error: --baseline-dir needs a value");
                    std::process::exit(2);
                }));
            }
            "--bench-dir" => {
                i += 1;
                bench_dir = PathBuf::from(argv.get(i).unwrap_or_else(|| {
                    eprintln!("error: --bench-dir needs a value");
                    std::process::exit(2);
                }));
            }
            "--threshold" => {
                i += 1;
                cfg.threshold_pct = argv
                    .get(i)
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("error: --threshold needs a percentage");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("error: unknown diff argument '{other}'");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    println!(
        "[diff] baselines {} vs fresh {} (threshold {:.0}%, min p99 {} us)",
        baseline_dir.display(),
        bench_dir.display(),
        cfg.threshold_pct,
        cfg.min_p99_us
    );
    let report = diff_dirs(&baseline_dir, &bench_dir, &cfg);
    print!("{}", report.render());
    std::process::exit(if report.regressions() > 0 { 1 } else { 0 });
}

fn parse_args() -> Result<Args, String> {
    let mut exps = vec!["all".to_string()];
    let mut positional: Vec<String> = Vec::new();
    let mut scale = Scale::standard();
    let mut out = PathBuf::from("results");
    let mut cache = true;
    let mut quiet = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--exp" => {
                i += 1;
                let value = argv.get(i).ok_or("--exp needs a value")?;
                exps = value.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--scale" => {
                i += 1;
                let value = argv.get(i).ok_or("--scale needs a value")?;
                scale = Scale::by_name(value)
                    .ok_or_else(|| format!("unknown scale '{value}' (quick|standard)"))?;
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(argv.get(i).ok_or("--out needs a value")?);
            }
            "--no-cache" => cache = false,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "reproduce [EXPERIMENT ...] — regenerate the paper's tables and figures\n\
                     Bare names select experiments, e.g. `reproduce service sharding`\n\
                     (these also write BENCH_<name>.json machine-readable snapshots).\n\
                     --exp   comma list of {ALL_EXPS:?} or 'all' (default all)\n\
                     --scale quick|standard (default standard)\n\
                     --out   output directory (default results/)\n\
                     --no-cache  retrain LDA models instead of loading cached ones\n\
                     --quiet     suppress table rendering"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    // Bare experiment names (`reproduce -- service sharding`) select just
    // those experiments, same as `--exp service,sharding`.
    if !positional.is_empty() {
        exps = positional;
    }
    if exps.iter().any(|e| e == "all") {
        exps = ALL_EXPS.iter().map(|s| s.to_string()).collect();
    }
    for e in &exps {
        if !ALL_EXPS.contains(&e.as_str()) {
            return Err(format!(
                "unknown experiment '{e}' (choose from {ALL_EXPS:?})"
            ));
        }
    }
    Ok(Args {
        exps,
        scale,
        out,
        cache,
        quiet,
    })
}

fn main() {
    // `diff` is a subcommand, not an experiment: it needs no context.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("diff") {
        run_diff(&argv[1..]);
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let cache_dir = args.cache.then(|| args.out.join("cache"));
    println!(
        "[reproduce] scale={} experiments={:?}",
        args.scale.name, args.exps
    );
    let t0 = Instant::now();
    let ctx = ExperimentContext::build(args.scale.clone(), cache_dir.as_deref());
    println!(
        "[reproduce] context ready in {:.1}s: {} docs, {} vocab, {} queries, models {:?}",
        t0.elapsed().as_secs_f64(),
        ctx.corpus.num_docs(),
        ctx.corpus.vocab.len(),
        ctx.queries.len(),
        ctx.models.iter().map(|(k, _)| *k).collect::<Vec<_>>()
    );

    for exp in &args.exps {
        let t = Instant::now();
        let tables: Vec<ResultTable> = match exp.as_str() {
            "fig2" => experiments::fig2::run(&ctx),
            "fig3" => experiments::fig3::run(&ctx),
            "fig4" => experiments::fig4::run(&ctx),
            "fig5" => experiments::fig5::run(&ctx),
            "fig6" => experiments::fig6::run(&ctx),
            "tables" => experiments::tables::run(&ctx),
            "stats" => experiments::stats::run(&ctx),
            "ablations" => experiments::ablations::run(&ctx),
            "adversary" => experiments::adversary::run(&ctx),
            "classifier" => experiments::classifier::run(&ctx),
            "mc" => experiments::mc::run(&ctx),
            "session" => experiments::session::run(&ctx),
            "reduced" => experiments::reduced::run(&ctx),
            "pacing" => experiments::pacing::run(&ctx),
            "quality" => experiments::quality::run(&ctx),
            "load" => experiments::load::run(&ctx),
            "service" => experiments::service::run(&ctx),
            "sharding" => experiments::sharding::run(&ctx),
            "staleness" => experiments::staleness::run(&ctx),
            "scenarios" => experiments::scenarios::run(&ctx),
            "audit" => experiments::audit::run(&ctx),
            "planner" => experiments::planner::run(&ctx),
            "appendix" => experiments::appendix::run(&ctx),
            _ => unreachable!("validated in parse_args"),
        };
        experiments::emit(&tables, &args.out, args.quiet);
        println!(
            "[reproduce] {exp}: {} table(s) in {:.1}s",
            tables.len(),
            t.elapsed().as_secs_f64()
        );
    }
    println!("[reproduce] done in {:.1}s", t0.elapsed().as_secs_f64());
}
