//! Boolean retrieval over the inverted index.
//!
//! The paper's related-work section repeatedly contrasts *Boolean
//! keyword-matching* (what encrypted-search schemes and PPI support) with
//! the *similarity retrieval* TopPriv targets. This module implements the
//! Boolean side so the contrast is demonstrable: conjunctive (AND),
//! disjunctive (OR), and negated conjunction queries, evaluated
//! document-at-a-time with galloping (exponential-probe) intersection.

use tsearch_index::InvertedIndex;
use tsearch_text::TermId;

/// A Boolean query in conjunctive normal form over terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BooleanQuery {
    /// All terms must occur.
    And(Vec<TermId>),
    /// At least one term must occur.
    Or(Vec<TermId>),
    /// All `positive` terms occur and no `negative` term occurs.
    AndNot {
        /// Required terms.
        positive: Vec<TermId>,
        /// Forbidden terms.
        negative: Vec<TermId>,
    },
}

/// Evaluates `query`, returning matching doc ids in ascending order.
pub fn evaluate_boolean(index: &InvertedIndex, query: &BooleanQuery) -> Vec<u32> {
    match query {
        BooleanQuery::And(terms) => conjunction(index, terms),
        BooleanQuery::Or(terms) => disjunction(index, terms),
        BooleanQuery::AndNot { positive, negative } => {
            let base = conjunction(index, positive);
            let exclude = disjunction(index, negative);
            difference(&base, &exclude)
        }
    }
}

/// Doc-id list of one term.
fn doc_ids(index: &InvertedIndex, term: TermId) -> Vec<u32> {
    index.postings(term).iter().map(|p| p.doc_id).collect()
}

/// Conjunction: intersect postings smallest-first with galloping search.
fn conjunction(index: &InvertedIndex, terms: &[TermId]) -> Vec<u32> {
    if terms.is_empty() {
        return Vec::new();
    }
    let mut lists: Vec<Vec<u32>> = terms.iter().map(|&t| doc_ids(index, t)).collect();
    lists.sort_by_key(Vec::len);
    let mut result = lists[0].clone();
    for list in &lists[1..] {
        if result.is_empty() {
            break;
        }
        result = gallop_intersect(&result, list);
    }
    result
}

/// Intersects two ascending lists; `a` should be the smaller one.
/// Exposed for property testing.
pub fn gallop_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let mut lo = 0usize;
    for &x in a {
        // Galloping probe: double the step until we overshoot x.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < b.len() && b[hi] < x {
            lo = hi;
            hi = (hi + step).min(b.len());
            step *= 2;
        }
        // Binary search in (lo, hi].
        let idx = lo + b[lo..hi.min(b.len())].partition_point(|&y| y < x);
        if idx < b.len() && b[idx] == x {
            out.push(x);
            lo = idx + 1;
        } else {
            lo = idx;
        }
        if lo >= b.len() {
            break;
        }
    }
    out
}

/// Disjunction: k-way ascending merge with deduplication.
fn disjunction(index: &InvertedIndex, terms: &[TermId]) -> Vec<u32> {
    let mut all: Vec<u32> = terms.iter().flat_map(|&t| doc_ids(index, t)).collect();
    all.sort_unstable();
    all.dedup();
    all
}

/// Ascending-list difference `a \ b`.
fn difference(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len());
    let mut j = 0usize;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> InvertedIndex {
        // doc 0: {0,1}; doc 1: {1,2}; doc 2: {0,1,2}; doc 3: {3}
        let docs: Vec<Vec<TermId>> = vec![vec![0, 1], vec![1, 2], vec![0, 1, 2], vec![3]];
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        InvertedIndex::build(&refs, 4)
    }

    #[test]
    fn and_queries() {
        let idx = index();
        assert_eq!(
            evaluate_boolean(&idx, &BooleanQuery::And(vec![0, 1])),
            vec![0, 2]
        );
        assert_eq!(
            evaluate_boolean(&idx, &BooleanQuery::And(vec![0, 1, 2])),
            vec![2]
        );
        assert_eq!(
            evaluate_boolean(&idx, &BooleanQuery::And(vec![0, 3])),
            Vec::<u32>::new()
        );
        assert_eq!(
            evaluate_boolean(&idx, &BooleanQuery::And(vec![])),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn or_queries() {
        let idx = index();
        assert_eq!(
            evaluate_boolean(&idx, &BooleanQuery::Or(vec![0, 3])),
            vec![0, 2, 3]
        );
        assert_eq!(
            evaluate_boolean(&idx, &BooleanQuery::Or(vec![])),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn and_not_queries() {
        let idx = index();
        let q = BooleanQuery::AndNot {
            positive: vec![1],
            negative: vec![2],
        };
        assert_eq!(evaluate_boolean(&idx, &q), vec![0]);
    }

    #[test]
    fn gallop_matches_naive() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let mut a: Vec<u32> = (0..rng.gen_range(0..60))
                .map(|_| rng.gen_range(0..200))
                .collect();
            let mut b: Vec<u32> = (0..rng.gen_range(0..400))
                .map(|_| rng.gen_range(0..200))
                .collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let fast = gallop_intersect(&a, &b);
            let naive: Vec<u32> = a.iter().copied().filter(|x| b.contains(x)).collect();
            assert_eq!(fast, naive);
        }
    }
}
