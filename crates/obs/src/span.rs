//! Lightweight trace spans and the ring-buffer event journal.
//!
//! A [`Tracer`] issues [`Span`] guards: each carries a process-unique id
//! and its parent's id, and on drop records a [`SpanEvent`] (name, id,
//! parent, start offset, duration) into a fixed-size ring journal. The
//! journal is lock-free-ish: a single atomic head reserves slots, and
//! each slot has its own tiny mutex, so concurrent recorders from many
//! threads never contend on a global lock and a panicked recorder
//! poisons at most one slot (which the reader recovers from).
//!
//! ```
//! let tracer = toppriv_obs::Tracer::new(64);
//! {
//!     let cycle = tracer.span("plan_cycle");
//!     let _child = cycle.child("formulate");
//! } // both record on drop, child first
//! let events = tracer.events();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[0].name, "formulate");
//! assert_eq!(events[1].name, "plan_cycle");
//! assert_eq!(events[0].parent, events[1].id);
//! ```

use crate::recover_lock;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A completed span, as stored in the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Journal sequence number (recording order).
    pub seq: u64,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Parent span id, or [`ROOT`] for a root span.
    pub parent: u64,
    /// Static span name (see the taxonomy in ARCHITECTURE.md).
    pub name: &'static str,
    /// Start offset from the tracer's epoch, in microseconds.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

/// The parent id of a root span.
pub const ROOT: u64 = 0;

/// Issues spans and journals their completion events.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    head: AtomicUsize,
    slots: Vec<Mutex<Option<SpanEvent>>>,
}

impl Tracer {
    /// A tracer whose journal keeps the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
            head: AtomicUsize::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Starts a root span. The event is journaled when the guard drops.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        self.start(name, ROOT)
    }

    fn start(&self, name: &'static str, parent: u64) -> Span<'_> {
        Span {
            tracer: self,
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            name,
            start: Instant::now(),
        }
    }

    fn record(&self, id: u64, parent: u64, name: &'static str, start: Instant) {
        let now = Instant::now();
        let start_us = start.duration_since(self.epoch).as_micros() as u64;
        let dur_us = now.duration_since(start).as_micros() as u64;
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let slot = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *recover_lock(&self.slots[slot]) = Some(SpanEvent {
            seq,
            id,
            parent,
            name,
            start_us,
            dur_us,
        });
    }

    /// Every journaled event, oldest first (by sequence number). At most
    /// `capacity` events are retained; older ones are overwritten.
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut out: Vec<SpanEvent> = self
            .slots
            .iter()
            .filter_map(|s| recover_lock(s).clone())
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Total spans recorded since creation (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Clears the journal (span ids keep increasing).
    pub fn clear(&self) {
        for slot in &self.slots {
            *recover_lock(slot) = None;
        }
    }
}

/// A live span. Records its [`SpanEvent`] into the tracer's journal when
/// dropped; children created via [`Span::child`] link back by id.
#[derive(Debug)]
pub struct Span<'a> {
    tracer: &'a Tracer,
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
}

impl Span<'_> {
    /// This span's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The parent span id ([`ROOT`] if none).
    pub fn parent(&self) -> u64 {
        self.parent
    }

    /// Starts a child span of this one.
    pub fn child(&self, name: &'static str) -> Span<'_> {
        self.tracer.start(name, self.id)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.tracer
            .record(self.id, self.parent, self.name, self.start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_parents_link() {
        let t = Tracer::new(16);
        let a = t.span("a");
        let b = a.child("b");
        let c = b.child("c");
        assert_ne!(a.id(), b.id());
        assert_eq!(b.parent(), a.id());
        assert_eq!(c.parent(), b.id());
        drop(c);
        drop(b);
        drop(a);
        let events = t.events();
        assert_eq!(events.len(), 3);
        // Children drop (and so record) before their parents.
        assert_eq!(events[0].name, "c");
        assert_eq!(events[2].name, "a");
        assert_eq!(events[2].parent, ROOT);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let t = Tracer::new(4);
        for _ in 0..10 {
            let _s = t.span("x");
        }
        let events = t.events();
        assert_eq!(events.len(), 4);
        assert_eq!(t.recorded(), 10);
        assert_eq!(events.last().unwrap().seq, 9);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn clear_empties_journal() {
        let t = Tracer::new(8);
        {
            let _s = t.span("x");
        }
        assert_eq!(t.events().len(), 1);
        t.clear();
        assert!(t.events().is_empty());
    }
}
