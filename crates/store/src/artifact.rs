//! A directory of named, checksummed artifacts with a manifest.
//!
//! The client side of TopPriv persists real state between sessions — the
//! trained LDA model (the paper's ~140 MB client footprint), reduced
//! models and their vocabulary maps, cached benchmark results — and must
//! survive interrupted writes. [`ArtifactStore`] provides:
//!
//! - named artifacts, each a [`container`](crate::container)-sealed file
//!   written with [`crate::atomic::atomic_write`];
//! - a JSON manifest listing every artifact with its kind, size, and
//!   checksum, itself replaced atomically after each mutation;
//! - recovery on open: stale temp files are swept, and manifest entries
//!   whose file is missing are dropped;
//! - [`verify_all`](ArtifactStore::verify_all): full integrity audit.

use crate::atomic::{atomic_write, sweep_temp_files};
use crate::container::{seal, unseal_kind, StoreError};
use crate::crc32::crc32;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Manifest file name.
const MANIFEST: &str = "manifest.json";
/// Artifact file extension.
const EXT: &str = "tps";

/// One manifest entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactMeta {
    /// Artifact kind tag.
    pub kind: u32,
    /// Payload bytes (excluding container header).
    pub payload_len: u64,
    /// CRC-32 of the payload.
    pub checksum: u32,
}

/// Store failure.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Container-level failure (corruption, kind mismatch, ...).
    Store(StoreError),
    /// No artifact with that name.
    NotFound(String),
    /// Artifact names are restricted to `[A-Za-z0-9._-]` and must not be
    /// empty or dot-only, to keep them safe as file names.
    InvalidName(String),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::Store(e) => write!(f, "artifact container error: {e}"),
            ArtifactError::NotFound(n) => write!(f, "no artifact named '{n}'"),
            ArtifactError::InvalidName(n) => write!(f, "invalid artifact name '{n}'"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            ArtifactError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<StoreError> for ArtifactError {
    fn from(e: StoreError) -> Self {
        ArtifactError::Store(e)
    }
}

/// A directory of named artifacts.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    manifest: BTreeMap<String, ArtifactMeta>,
}

impl ArtifactStore {
    /// Opens (creating if necessary) the store at `dir`, sweeping stale
    /// temp files and reconciling the manifest with the files present.
    pub fn open(dir: &Path) -> Result<Self, ArtifactError> {
        fs::create_dir_all(dir)?;
        sweep_temp_files(dir)?;
        let manifest_path = dir.join(MANIFEST);
        let mut manifest: BTreeMap<String, ArtifactMeta> = match fs::read(&manifest_path) {
            Ok(bytes) => serde_json::from_slice(&bytes).unwrap_or_default(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => BTreeMap::new(),
            Err(e) => return Err(e.into()),
        };
        // Drop entries whose artifact file vanished (crash between the
        // two atomic writes, or manual deletion).
        manifest.retain(|name, _| dir.join(format!("{name}.{EXT}")).exists());
        Ok(ArtifactStore {
            dir: dir.to_path_buf(),
            manifest,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Names and metadata of every artifact, sorted by name.
    pub fn list(&self) -> impl Iterator<Item = (&str, &ArtifactMeta)> {
        self.manifest.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Whether an artifact exists.
    pub fn contains(&self, name: &str) -> bool {
        self.manifest.contains_key(name)
    }

    /// Stores `payload` under `name` with the given kind, replacing any
    /// previous version atomically.
    pub fn put(&mut self, name: &str, kind: u32, payload: &[u8]) -> Result<(), ArtifactError> {
        validate_name(name)?;
        let blob = seal(kind, payload);
        atomic_write(&self.artifact_path(name), &blob)?;
        self.manifest.insert(
            name.to_string(),
            ArtifactMeta {
                kind,
                payload_len: payload.len() as u64,
                checksum: crc32(payload),
            },
        );
        self.write_manifest()
    }

    /// Loads the artifact `name`, verifying the container checksum and
    /// the expected kind.
    pub fn get(&self, name: &str, kind: u32) -> Result<Vec<u8>, ArtifactError> {
        validate_name(name)?;
        if !self.manifest.contains_key(name) {
            return Err(ArtifactError::NotFound(name.to_string()));
        }
        let bytes = fs::read(self.artifact_path(name))?;
        let payload = unseal_kind(&bytes, kind)?;
        Ok(payload.to_vec())
    }

    /// Removes an artifact. Removing a missing name is an error.
    pub fn remove(&mut self, name: &str) -> Result<(), ArtifactError> {
        validate_name(name)?;
        if self.manifest.remove(name).is_none() {
            return Err(ArtifactError::NotFound(name.to_string()));
        }
        fs::remove_file(self.artifact_path(name))?;
        self.write_manifest()
    }

    /// Verifies every artifact against its manifest entry. Returns the
    /// names that failed and why.
    pub fn verify_all(&self) -> Vec<(String, ArtifactError)> {
        let mut failures = Vec::new();
        for (name, meta) in &self.manifest {
            match self.get(name, meta.kind) {
                Ok(payload) => {
                    let checksum = crc32(&payload);
                    if checksum != meta.checksum || payload.len() as u64 != meta.payload_len {
                        failures.push((
                            name.clone(),
                            ArtifactError::Store(StoreError::ChecksumMismatch {
                                stored: meta.checksum,
                                computed: checksum,
                            }),
                        ));
                    }
                }
                Err(e) => failures.push((name.clone(), e)),
            }
        }
        failures
    }

    fn artifact_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.{EXT}"))
    }

    fn write_manifest(&self) -> Result<(), ArtifactError> {
        let json = serde_json::to_vec_pretty(&self.manifest).expect("manifest serializes");
        atomic_write(&self.dir.join(MANIFEST), &json)?;
        Ok(())
    }
}

/// Restricts names to file-name-safe characters.
fn validate_name(name: &str) -> Result<(), ArtifactError> {
    let ok = !name.is_empty()
        && name.chars().any(|c| c.is_ascii_alphanumeric())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(ArtifactError::InvalidName(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::kind;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsearch-artifact-test-{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip() {
        let dir = scratch("roundtrip");
        let mut store = ArtifactStore::open(&dir).unwrap();
        store
            .put("model-k200", kind::LDA_MODEL, b"model bytes")
            .unwrap();
        assert_eq!(
            store.get("model-k200", kind::LDA_MODEL).unwrap(),
            b"model bytes"
        );
        assert!(store.contains("model-k200"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn survives_reopen() {
        let dir = scratch("reopen");
        {
            let mut store = ArtifactStore::open(&dir).unwrap();
            store.put("a", 1, b"one").unwrap();
            store.put("b", 2, b"two").unwrap();
        }
        let store = ArtifactStore::open(&dir).unwrap();
        assert_eq!(store.list().count(), 2);
        assert_eq!(store.get("b", 2).unwrap(), b"two");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kind_is_enforced() {
        let dir = scratch("kind");
        let mut store = ArtifactStore::open(&dir).unwrap();
        store.put("v", kind::VOCABULARY, b"terms").unwrap();
        assert!(matches!(
            store.get("v", kind::LDA_MODEL).unwrap_err(),
            ArtifactError::Store(StoreError::KindMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_artifact_is_not_found() {
        let dir = scratch("missing");
        let store = ArtifactStore::open(&dir).unwrap();
        assert!(matches!(
            store.get("ghost", 1).unwrap_err(),
            ArtifactError::NotFound(_)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_path_traversal_names() {
        let dir = scratch("names");
        let mut store = ArtifactStore::open(&dir).unwrap();
        for bad in ["../evil", "a/b", "", "..", "with space", "semi;colon"] {
            assert!(
                matches!(
                    store.put(bad, 1, b"x").unwrap_err(),
                    ArtifactError::InvalidName(_)
                ),
                "name '{bad}' should be rejected"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_detected_on_get_and_verify() {
        let dir = scratch("corrupt");
        let mut store = ArtifactStore::open(&dir).unwrap();
        store.put("m", 1, b"precious model data").unwrap();
        // Flip a payload byte on disk.
        let path = dir.join("m.tps");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.get("m", 1).unwrap_err(),
            ArtifactError::Store(StoreError::ChecksumMismatch { .. })
        ));
        let failures = store.verify_all();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "m");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_detected() {
        let dir = scratch("trunc");
        let mut store = ArtifactStore::open(&dir).unwrap();
        store.put("m", 1, b"0123456789abcdef").unwrap();
        let path = dir.join("m.tps");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(matches!(
            store.get("m", 1).unwrap_err(),
            ArtifactError::Store(StoreError::Truncated { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_deletes_file_and_entry() {
        let dir = scratch("remove");
        let mut store = ArtifactStore::open(&dir).unwrap();
        store.put("m", 1, b"x").unwrap();
        store.remove("m").unwrap();
        assert!(!store.contains("m"));
        assert!(!dir.join("m.tps").exists());
        assert!(matches!(
            store.remove("m").unwrap_err(),
            ArtifactError::NotFound(_)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reconciles_manifest_with_missing_files() {
        let dir = scratch("reconcile");
        {
            let mut store = ArtifactStore::open(&dir).unwrap();
            store.put("keep", 1, b"k").unwrap();
            store.put("vanish", 1, b"v").unwrap();
        }
        fs::remove_file(dir.join("vanish.tps")).unwrap();
        let store = ArtifactStore::open(&dir).unwrap();
        assert!(store.contains("keep"));
        assert!(!store.contains("vanish"), "dangling entry dropped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_temp_files() {
        let dir = scratch("sweeptmp");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("orphan.999.tps-tmp"), b"partial").unwrap();
        let _store = ArtifactStore::open(&dir).unwrap();
        assert!(!dir.join("orphan.999.tps-tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
