//! Experiment `sharding` (extension beyond the paper): scaling the
//! search tier by term-sharding the inverted index.
//!
//! Two tables:
//!
//! - `ext6_shard_equivalence` — for shard counts 1/2/4/8, every sweep
//!   query is evaluated on the single engine and on a `ShardedEngine`
//!   over the same corpus; the table records whether every ranked list
//!   was identical (doc ids equal, scores within 1e-9) plus the worst
//!   score deviation. Sharding must be invisible in the results.
//! - `ext6_shard_scaling` — server-side drain throughput and p99 submit
//!   latency at 1/2/4/8 shards × 1/8/64 sessions, cache off so every
//!   submission reaches the engine (the cache would otherwise absorb the
//!   cross-tenant duplicates that sharding is meant to spread). Each
//!   cell plans paced cycles through a fresh `SessionManager`, merges
//!   them, and drains the merged queue on the scheduler's per-shard
//!   worker queues. qps is submissions per wall-clock second.

use crate::context::ExperimentContext;
use crate::obsbench;
use crate::table::{f3, ResultTable};
use std::sync::Arc;
use std::time::Instant;
use toppriv_service::{CycleScheduler, PlannedQuery, SearchTier, SessionManager};
use tsearch_search::{Query, ShardedEngine};
use tsearch_text::Analyzer;

/// Shard counts swept (1 = the unsharded baseline).
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Session counts swept.
pub const SESSION_COUNTS: [usize; 3] = [1, 8, 64];
/// Total scheduler workers (spread across shards at drain time).
pub const WORKERS: usize = 8;
/// Results per query.
pub const TOP_K: usize = 10;
/// Minimum drained submissions per throughput cell (queue replayed in
/// rounds until reached).
pub const MIN_SUBMISSIONS: usize = 1500;
/// Fixed fleet secret so every cell plans the identical ghost workload.
const FLEET_SEED: u64 = 0x5EED;

/// Cores available to the worker pool (1 means qps cannot scale with
/// shards on this host, only contention can drop).
fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builds a sharded engine over the context's corpus (the context's own
/// engine stays untouched — its query log belongs to other experiments).
fn sharded_engine(ctx: &ExperimentContext, shards: usize) -> Arc<ShardedEngine> {
    let docs = ctx.corpus.token_docs();
    let texts: Vec<String> = ctx.corpus.docs.iter().map(|d| d.text.clone()).collect();
    Arc::new(ShardedEngine::build(
        &docs,
        &texts,
        Analyzer::new(),
        ctx.corpus.vocab.clone(),
        ctx.engine.model(),
        shards,
    ))
}

fn equivalence_table(ctx: &ExperimentContext) -> ResultTable {
    let mut table = ResultTable::new(
        "ext6_shard_equivalence",
        "Result equivalence of the term-sharded engine vs the single \
         engine over the benchmark workload (every query, top-10)",
        vec![
            "shards".into(),
            "queries".into(),
            "identical_rankings".into(),
            "max_score_diff".into(),
            "mean_shards_touched".into(),
        ],
    );
    for &shards in &SHARD_COUNTS {
        let engine = sharded_engine(ctx, shards);
        let mut identical = true;
        let mut max_diff = 0.0f64;
        let mut touched = 0usize;
        let queries = ctx.sweep_queries();
        for q in queries {
            let query = Query::from_tokens(&q.tokens);
            let expected = ctx.engine.evaluate(&query, TOP_K);
            let actual = engine.evaluate(&query, TOP_K);
            touched += engine.shard_set(&q.tokens).len();
            if expected.len() != actual.len()
                || expected
                    .iter()
                    .zip(&actual)
                    .any(|(e, a)| e.doc_id != a.doc_id)
            {
                identical = false;
                continue;
            }
            for (e, a) in expected.iter().zip(&actual) {
                let diff = (e.score - a.score).abs();
                max_diff = max_diff.max(diff);
                if diff > 1e-9 {
                    identical = false;
                }
            }
        }
        table.push_row(vec![
            shards.to_string(),
            queries.len().to_string(),
            identical.to_string(),
            format!("{max_diff:.2e}"),
            f3(touched as f64 / queries.len().max(1) as f64),
        ]);
    }
    table
}

/// One throughput cell: plan every session's paced cycles over the
/// shared workload, merge, then drain the queue repeatedly until at
/// least [`MIN_SUBMISSIONS`] submissions have been measured.
fn run_cell(
    ctx: &ExperimentContext,
    tier: SearchTier,
    shards: usize,
    sessions: usize,
) -> (f64, u64, f64, toppriv_obs::BenchSnapshot) {
    let manager = Arc::new(
        SessionManager::with_tier(tier.clone(), ctx.default_model().clone())
            .with_fleet_seed(FLEET_SEED),
    );
    let queries = ctx.sweep_queries();
    for s in 0..sessions {
        manager.open_session(&format!("tenant-{s}")).expect("fresh");
    }
    let mut plans: Vec<Vec<PlannedQuery>> = Vec::new();
    for (s, id) in manager.session_ids().iter().enumerate() {
        for q in 0..2 {
            let query = &queries[(s + q) % queries.len()];
            plans.push(manager.plan_cycle(id, &query.tokens, TOP_K).expect("open"));
        }
    }
    let queue = CycleScheduler::merge(plans);
    let rounds = MIN_SUBMISSIONS.div_ceil(queue.len().max(1)).max(1);
    let scheduler = CycleScheduler::for_manager(&manager, WORKERS);
    // Warm-up round (thread spawn, allocator) through a throwaway
    // metrics registry so its cold-start latencies cannot contaminate
    // the measured p99.
    let warmup = CycleScheduler::new(
        tier.clone(),
        None,
        Arc::new(toppriv_service::ServiceMetrics::new()),
        WORKERS,
    );
    std::hint::black_box(warmup.drain(queue.clone()));
    obsbench::reset_engine_stages();
    let t0 = Instant::now();
    for _ in 0..rounds {
        std::hint::black_box(scheduler.drain(queue.clone()));
    }
    let secs = t0.elapsed().as_secs_f64();
    tier.clear_query_logs();
    let snapshot = manager.metrics_registry().snapshot();
    let qps = (queue.len() * rounds) as f64 / secs.max(1e-9);
    let bench = obsbench::service_bench_snapshot(
        "sharding",
        manager.metrics_registry().registry(),
        qps,
        format!("{shards} shard(s), {sessions} session(s), {WORKERS} workers, cache off, {rounds} round(s)"),
    );
    (qps, snapshot.p99_submit_us, queue.len() as f64, bench)
}

fn scaling_table(ctx: &ExperimentContext) -> ResultTable {
    let mut table = ResultTable::new(
        "ext6_shard_scaling",
        format!(
            "Drain throughput (submissions/s) and p99 submit latency of \
             the per-shard scheduler queues at 1/2/4/8 shards x 1/8/64 \
             sessions (8 workers over {} core(s), cache off, uncached \
             engine evaluations). Sharding removes the engine-wide log \
             mutex and queue cursor from the hot path; the parallel qps \
             speedup it unlocks is bounded by the host's core count.",
            available_cores()
        ),
        vec![
            "shards".into(),
            "sessions".into(),
            "queue_len".into(),
            "qps".into(),
            "p99_submit_us".into(),
        ],
    );
    let mut last_bench: Option<toppriv_obs::BenchSnapshot> = None;
    for &shards in &SHARD_COUNTS {
        let tier: SearchTier = if shards == 1 {
            SearchTier::Single(ctx.engine.clone())
        } else {
            SearchTier::Sharded(sharded_engine(ctx, shards))
        };
        for &sessions in &SESSION_COUNTS {
            let (qps, p99, queue_len, bench) = run_cell(ctx, tier.clone(), shards, sessions);
            table.push_row(vec![
                shards.to_string(),
                sessions.to_string(),
                format!("{queue_len:.0}"),
                f3(qps),
                p99.to_string(),
            ]);
            last_bench = Some(bench);
        }
        tier.clear_query_logs();
    }
    // The bench trail keeps the most heavily sharded, most contended
    // cell — the configuration the per-shard breakdown exists for.
    if let Some(bench) = last_bench {
        obsbench::emit_bench(&bench);
    }
    table
}

/// Runs the sharding experiment on the default model.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    vec![equivalence_table(ctx), scaling_table(ctx)]
}
