//! Bounded top-k selection for scored documents.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scored document hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Document id.
    pub doc_id: u32,
    /// Relevance score (higher is better).
    pub score: f64,
}

impl Eq for SearchHit {}

impl Ord for SearchHit {
    fn cmp(&self, other: &Self) -> Ordering {
        // Order by score, ties broken by doc id (lower id first) so results
        // are fully deterministic.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then(self.doc_id.cmp(&other.doc_id))
            .reverse()
    }
}

impl PartialOrd for SearchHit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Collects the k best hits seen, in O(log k) per insertion.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    // Min-heap of the current best k: the root is the worst kept hit.
    heap: BinaryHeap<std::cmp::Reverse<SearchHit>>,
}

impl TopK {
    /// Creates a collector for the best `k` hits.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers a hit; it is kept only if it beats the current k-th best.
    pub fn push(&mut self, hit: SearchHit) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(std::cmp::Reverse(hit));
        } else if let Some(worst) = self.heap.peek() {
            if hit > worst.0 {
                self.heap.pop();
                self.heap.push(std::cmp::Reverse(hit));
            }
        }
    }

    /// Current number of kept hits.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no hits are kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Finalizes into a best-first sorted vector.
    pub fn into_sorted(self) -> Vec<SearchHit> {
        let mut hits: Vec<SearchHit> = self.heap.into_iter().map(|r| r.0).collect();
        hits.sort_by(|a, b| b.cmp(a));
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut topk = TopK::new(3);
        for (doc_id, score) in [(0, 0.5), (1, 0.9), (2, 0.1), (3, 0.7), (4, 0.8)] {
            topk.push(SearchHit { doc_id, score });
        }
        let hits = topk.into_sorted();
        let ids: Vec<u32> = hits.iter().map(|h| h.doc_id).collect();
        assert_eq!(ids, vec![1, 4, 3]);
    }

    #[test]
    fn ties_break_by_doc_id() {
        let mut topk = TopK::new(2);
        for doc_id in [5, 2, 9] {
            topk.push(SearchHit { doc_id, score: 1.0 });
        }
        let ids: Vec<u32> = topk.into_sorted().iter().map(|h| h.doc_id).collect();
        assert_eq!(ids, vec![2, 5]);
    }

    #[test]
    fn zero_k() {
        let mut topk = TopK::new(0);
        topk.push(SearchHit {
            doc_id: 0,
            score: 1.0,
        });
        assert!(topk.is_empty());
        assert!(topk.into_sorted().is_empty());
    }

    #[test]
    fn fewer_hits_than_k() {
        let mut topk = TopK::new(10);
        topk.push(SearchHit {
            doc_id: 3,
            score: 0.2,
        });
        assert_eq!(topk.len(), 1);
        assert_eq!(topk.into_sorted().len(), 1);
    }
}
