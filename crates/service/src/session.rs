//! Multi-tenant session management.
//!
//! One [`SessionManager`] serves many users against a single shared
//! [`LdaModel`] and one [`SearchTier`] (a monolithic engine or a
//! term-sharded one — both behind `Arc`s, so the paper's ~140 MB model
//! exists once in memory, not once per tenant). Each session owns the
//! per-user state of the paper's Figure 1 client:
//!
//! - a [`GhostGenerator`] (over the shared belief model) that formulates
//!   and certifies cycles;
//! - a [`SessionTracker`] recording the whole trace for Equation-2
//!   session-level accounting;
//! - a [`PacingScheduler`] with a per-session seed and clock, producing
//!   the submission schedule the [`crate::CycleScheduler`] merges.
//!
//! Two submission paths exist: [`SessionManager::search`] resolves a
//! cycle synchronously (through the shared [`ResultCache`]), while
//! [`SessionManager::plan_cycle`] emits a paced schedule — each planned
//! submission tagged with the shard set its terms route to — for the
//! global cycle scheduler to drain on its per-shard worker queues.
//!
//! ## The fleet secret ghost seed
//!
//! Ghost generation is seeded from the query content XOR a config seed.
//! With the *public* default seed, an engine-side adversary could replay
//! ghost generation per logged query and test which logged query's
//! regenerated decoys all appear in the trace. The manager therefore
//! draws one service-wide **secret** seed at construction (or accepts
//! one via [`SessionManager::with_fleet_seed`]) and mixes it into every
//! session's [`GhostConfig`]. All sessions of the fleet share it, so
//! cross-tenant decoys stay cache-identical; the engine does not know
//! it, so the paper's secret-seed assumption is restored.
//!
//! ## Zero-downtime swaps
//!
//! The shared model and the search tier both live behind `RwLock`s, so
//! a fleet operator can retrain and [`SessionManager::swap_model`] (or
//! rebuild the index and [`SessionManager::swap_tier`]) without closing
//! a single session. Model swaps are **epoch-style**: the manager bumps
//! a monotone epoch counter; each session lazily rebinds its
//! [`GhostGenerator`] to the current model on its next search, keeping
//! its exposure accounting intact when the topic space is unchanged
//! (same `K`) and restarting trace accounting when it is not (topic ids
//! change meaning across a `K` change, so the old running sums would be
//! meaningless). Ghost decoys stay deterministic across a swap to an
//! identical model because generation is content-seeded — the fleet
//! seed survives the rebind, so cross-tenant cache identity is
//! preserved.

use crate::cache::ResultCache;
use crate::fault::{FaultKind, FaultPlane};
use crate::metrics::{MetricsSnapshot, ServiceMetrics, SessionMetrics};
use crate::scheduler::{PlannedQuery, SubmissionTag};
use crate::tier::SearchTier;
use std::collections::{BTreeSet, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;
use toppriv_core::{
    BeliefEngine, CycleResult, GhostConfig, GhostGenerator, PacingConfig, PacingScheduler,
    PrivacyRequirement, SessionTracker,
};
use tsearch_lda::LdaModel;
use tsearch_search::{SearchEngine, SearchHit, ShardedEngine};
use tsearch_text::TermId;

/// Per-session configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The `(ε1, ε2)` requirement this tenant asked for.
    pub requirement: PrivacyRequirement,
    /// Ghost generation parameters.
    pub ghost: GhostConfig,
    /// Pacing parameters (seed is re-derived per session).
    pub pacing: PacingConfig,
    /// When true, cycles are certified against the whole recorded trace
    /// (`generate_with_history`), not just per cycle.
    pub history_aware: bool,
    /// Results fetched per query.
    pub top_k: usize,
    /// Simulated seconds between a session's consecutive cycles when
    /// pacing schedules are planned.
    pub think_time_secs: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            requirement: PrivacyRequirement::paper_default(),
            ghost: GhostConfig::default(),
            pacing: PacingConfig::default(),
            history_aware: false,
            top_k: 10,
            think_time_secs: 30.0,
        }
    }
}

/// Service-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No session with that id.
    UnknownSession(String),
    /// A session with that id already exists.
    DuplicateSession(String),
    /// Malformed request (empty query, bad thresholds, ...).
    BadRequest(String),
    /// A transient infrastructure failure (injected or real I/O error,
    /// failed swap); the operation is safe to retry.
    Unavailable(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSession(id) => write!(f, "unknown session '{id}'"),
            ServiceError::DuplicateSession(id) => write!(f, "session '{id}' already open"),
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::Unavailable(m) => write!(f, "temporarily unavailable: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Outcome of one synchronous private search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The genuine query's hits (ghost results are discarded).
    pub hits: Vec<SearchHit>,
    /// The full cycle report (privacy accounting, ground truth).
    pub report: CycleResult,
    /// How many cycle members were served from the result cache.
    pub cache_hits: usize,
}

/// A cycle that has been formulated (generated and certified) but not
/// yet committed to its session's trace accounting, pacing clock, or
/// audit plane — the unit of work the cross-session
/// [`crate::planner::GhostPlanner`] rewrites between
/// [`SessionManager::formulate_cycle`] and
/// [`SessionManager::commit_cycle`].
#[derive(Debug, Clone)]
pub struct FormulatedCycle {
    pub(crate) session: String,
    /// The original user tokens, kept so a model swap between formulate
    /// and commit can regenerate instead of committing stale posteriors.
    pub(crate) user_tokens: Vec<TermId>,
    pub(crate) report: CycleResult,
    /// Per-member posteriors aligned with `report.cycle`.
    pub(crate) posteriors: Vec<Vec<f64>>,
    pub(crate) requirement: PrivacyRequirement,
    /// How many posteriors the reported `cycle_boosts` average over: the
    /// cycle length in per-cycle mode, but history length + cycle length
    /// in history-aware mode (the generator certifies trace boosts).
    /// Planner substitutions must divide by this support, not the cycle
    /// length, for the O(K) boost update to stay exact.
    pub(crate) boost_support: usize,
    pub(crate) k: usize,
    pub(crate) model_epoch: u64,
}

impl FormulatedCycle {
    /// The owning session id.
    pub fn session(&self) -> &str {
        &self.session
    }

    /// The formulated cycle (after any planner rewrites).
    pub fn report(&self) -> &CycleResult {
        &self.report
    }

    /// The `(ε1, ε2)` requirement the cycle was certified against.
    pub fn requirement(&self) -> PrivacyRequirement {
        self.requirement
    }

    /// Result depth the cycle will fetch.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// What [`SessionManager::rollback_cycle`] hands back: enough to replan
/// the reversed search as a brand-new cycle.
#[derive(Debug, Clone)]
pub struct RolledBackCycle {
    /// The owning session id.
    pub session: String,
    /// The pacer cycle id that was reversed (a replan draws a fresh one).
    pub cycle_id: usize,
    /// The genuine user tokens of the reversed cycle.
    pub user_tokens: Vec<TermId>,
    /// The result depth the reversed cycle would have fetched.
    pub k: usize,
}

/// The complete trace accounting of one session, extracted into one
/// foldable value so cycle **rollback** can be bit-exact.
///
/// `f64` accumulation is not associative, so a rolled-back cycle cannot
/// be subtracted back out of running sums without leaving rounding
/// residue. Instead the session keeps *two* copies plus a journal: a
/// `base` accounting holding only confirmed-delivered cycles, and the
/// live accounting, which equals `base` folded with every in-flight
/// cycle **in commitment order**. Rolling a cycle back removes its
/// journal record and replays `base ⊕ remaining in-flight` — the exact
/// same sequence of float operations a session that never formulated
/// the cycle would have performed, so the post-rollback accounting is
/// `to_bits`-identical to never-formulated (what the chaos proptests
/// assert).
#[derive(Debug, Clone, Default)]
struct TraceAccounting {
    /// Full per-query posterior history. Only populated when
    /// `history_aware` — it is what `generate_with_history` certifies
    /// against; in the default per-cycle mode the running sum below is
    /// enough and the session stays O(1) in memory per search.
    tracker: SessionTracker,
    /// Union of every certified intention (for trace exposure).
    intention_union: BTreeSet<usize>,
    /// Running sum of every submitted query's posterior (genuine and
    /// ghosts alike): Equation 2's trace posterior is the mean of these,
    /// so trace exposure is computable without retaining the history.
    posterior_sum: Vec<f64>,
    /// Queries accumulated into `posterior_sum`.
    posterior_count: u64,
    // Aggregates for SessionMetrics.
    cycles: u64,
    queries_emitted: u64,
    sum_cycle_len: f64,
    sum_exposure: f64,
    worst_exposure: f64,
    sum_mask: f64,
    satisfied: u64,
}

impl TraceAccounting {
    /// Folds one cycle's debits in — the single accounting primitive
    /// both the live fold and rollback replay go through, so the float
    /// operation sequence is identical on every path.
    fn fold(&mut self, record: &CycleRecord, history_aware: bool, num_topics: usize) {
        let result = &record.report;
        let posteriors = &record.posteriors;
        debug_assert_eq!(result.cycle_len(), posteriors.len());
        if self.posterior_sum.is_empty() {
            self.posterior_sum = vec![0.0; num_topics];
        }
        if history_aware {
            self.tracker.record_cycle_posteriors(result, posteriors);
        }
        for posterior in posteriors {
            for (acc, p) in self.posterior_sum.iter_mut().zip(posterior) {
                *acc += p;
            }
            self.posterior_count += 1;
        }
        self.intention_union
            .extend(result.intention.iter().copied());
        self.cycles += 1;
        self.queries_emitted += result.cycle_len() as u64;
        self.sum_cycle_len += result.cycle_len() as f64;
        self.sum_exposure += result.metrics.exposure;
        self.worst_exposure = self.worst_exposure.max(result.metrics.exposure);
        self.sum_mask += result.metrics.mask_level;
        if result.satisfied {
            self.satisfied += 1;
        }
    }

    /// Drops the Equation-2 trace state (topic ids changed meaning after
    /// a K-changing model swap) while the work aggregates keep counting.
    fn reset_trace(&mut self) {
        self.tracker = SessionTracker::new();
        self.intention_union.clear();
        self.posterior_sum.clear();
        self.posterior_count = 0;
    }
}

/// One journaled in-flight (or sync-confirmed) cycle: everything needed
/// to replay its accounting fold, plus what a rollback caller needs to
/// replan it.
#[derive(Debug, Clone)]
struct CycleRecord {
    /// The pacer cycle id its planned submissions carry (`None` for the
    /// synchronous search path, which resolves inline and can never be
    /// half-delivered).
    cycle_id: Option<usize>,
    /// The genuine user tokens, for replanning after a rollback.
    user_tokens: Vec<TermId>,
    report: CycleResult,
    posteriors: Vec<Vec<f64>>,
    k: usize,
    confirmed: bool,
}

/// In-flight journal cap: past this many unconfirmed cycles the oldest
/// is force-confirmed (callers that never confirm — every pre-fault-
/// plane call site — must not leak memory; those cycles simply stop
/// being rollbackable, which is the pre-rollback status quo).
const MAX_INFLIGHT_CYCLES: usize = 256;

/// One tenant's state. All fields live behind the manager's per-session
/// mutex; the heavyweight model/engine state is shared through `Arc`s
/// inside `client`.
struct Session {
    generator: GhostGenerator,
    /// The manager model epoch this session's generator was built
    /// against; lazily rebound when the manager's epoch moves on.
    model_epoch: u64,
    pacer: PacingScheduler,
    config: SessionConfig,
    /// Session-local simulated clock for schedule planning.
    clock_secs: f64,
    /// Live accounting: `base ⊕ inflight` in journal order.
    acc: TraceAccounting,
    /// Accounting of confirmed-delivered cycles only.
    base: TraceAccounting,
    /// Commitment-ordered journal of cycles not yet compacted into
    /// `base` (see [`TraceAccounting`]).
    inflight: Vec<CycleRecord>,
}

impl Session {
    fn new(
        model: Arc<LdaModel>,
        config: SessionConfig,
        seed: u64,
        fleet_seed: u64,
        model_epoch: u64,
    ) -> Self {
        // Ghost content stays content-seeded (deterministic per query,
        // which is what makes cross-tenant decoys cacheable) but mixes in
        // the fleet-wide *secret* seed — shared by every session of this
        // service, unknown to the engine — so an engine-side adversary
        // cannot replay ghost generation from the public defaults. Pacing
        // must differ per tenant, so its seed mixes in the session hash.
        let ghost = GhostConfig {
            seed: config.ghost.seed ^ fleet_seed,
            ..config.ghost.clone()
        };
        let pacing = PacingConfig {
            seed: config.pacing.seed ^ seed,
            ..config.pacing
        };
        let generator = GhostGenerator::new(BeliefEngine::new(model), config.requirement, ghost);
        Session {
            generator,
            model_epoch,
            pacer: PacingScheduler::new(pacing),
            config,
            clock_secs: 0.0,
            acc: TraceAccounting::default(),
            base: TraceAccounting::default(),
            inflight: Vec::new(),
        }
    }

    /// Rebinds this session's generator to the manager's current model
    /// (epoch-style swap). The fleet-mixed ghost seed is recomputed from
    /// the session's own base config, so decoy determinism and cache
    /// identity survive a swap to an identical model. When the topic
    /// count changes, trace accounting restarts — topic ids no longer
    /// mean the same thing, so the old posterior sums are dropped rather
    /// than silently mixed across incompatible topic spaces.
    fn rebind_model(&mut self, model: Arc<LdaModel>, epoch: u64, fleet_seed: u64) {
        let old_topics = self.generator.belief().num_topics();
        let ghost = GhostConfig {
            seed: self.config.ghost.seed ^ fleet_seed,
            ..self.config.ghost.clone()
        };
        self.generator =
            GhostGenerator::new(BeliefEngine::new(model), self.config.requirement, ghost);
        if self.generator.belief().num_topics() != old_topics {
            // The old topic space is gone, so every in-flight cycle's
            // posteriors are meaningless for rollback replay: fold them
            // into the base as-is (their work aggregates still count),
            // drop the trace state, and restart the journal.
            self.compact_all();
            self.base.reset_trace();
            self.acc = self.base.clone();
        }
        self.model_epoch = epoch;
    }

    /// Folds the confirmed prefix of the in-flight journal into `base`.
    /// Only a *prefix* may compact: `acc` must stay reproducible as
    /// `base ⊕ inflight` in order, so an unconfirmed record blocks every
    /// record behind it.
    fn compact(&mut self) {
        let confirmed_prefix = self.inflight.iter().take_while(|r| r.confirmed).count();
        let num_topics = self.generator.belief().num_topics();
        for record in self.inflight.drain(..confirmed_prefix) {
            self.base
                .fold(&record, self.config.history_aware, num_topics);
        }
    }

    /// Force-confirms and compacts the whole journal (model rebind with
    /// a K change, or journal overflow past [`MAX_INFLIGHT_CYCLES`]).
    fn compact_all(&mut self) {
        for record in &mut self.inflight {
            record.confirmed = true;
        }
        self.compact();
    }

    /// Formulates one cycle for `tokens` **without** recording it, and
    /// infers each member's posterior (aligned with `result.cycle`).
    /// Accounting happens separately in [`Session::account`] so a
    /// cross-session planner can substitute cycle members between
    /// generation and accounting — the session then debits exactly what
    /// was actually planned for submission.
    fn generate(&self, tokens: &[TermId]) -> (CycleResult, Vec<Vec<f64>>) {
        let result = if self.config.history_aware && !self.acc.tracker.is_empty() {
            self.generator
                .generate_with_history(tokens, self.acc.tracker.posteriors())
        } else {
            self.generator.generate(tokens)
        };
        // Inference is deterministic, so these posteriors are exactly
        // what any later re-inference of the same members would produce.
        let belief = self.generator.belief();
        let posteriors = result
            .cycle
            .iter()
            .map(|q| belief.posterior(&q.tokens))
            .collect();
        (result, posteriors)
    }

    /// Records one formulated cycle into the session's trace accounting.
    /// `posteriors` must align with `result.cycle` — for a shared
    /// (planner-substituted) cycle these are the posteriors of the
    /// members **as submitted**, so a shared submission debits this
    /// session's trace exactly as an owned decoy would.
    ///
    /// `cycle_id` ties the record to its paced submissions so a drain
    /// failure can [`Session::rollback`] it; `confirmed` cycles (the
    /// synchronous path, which can never be half-delivered) skip the
    /// rollback window entirely.
    fn account(
        &mut self,
        result: &CycleResult,
        posteriors: &[Vec<f64>],
        cycle_id: Option<usize>,
        user_tokens: &[TermId],
        k: usize,
        confirmed: bool,
    ) {
        let record = CycleRecord {
            cycle_id,
            user_tokens: user_tokens.to_vec(),
            report: result.clone(),
            posteriors: posteriors.to_vec(),
            k,
            confirmed,
        };
        let num_topics = self.generator.belief().num_topics();
        self.acc
            .fold(&record, self.config.history_aware, num_topics);
        self.inflight.push(record);
        if self.inflight.len() > MAX_INFLIGHT_CYCLES {
            self.inflight[0].confirmed = true;
        }
        self.compact();
    }

    /// Marks an in-flight cycle fully delivered; it leaves the rollback
    /// window (and is compacted into `base` once every cycle committed
    /// before it is confirmed too).
    fn confirm(&mut self, cycle_id: usize) {
        for record in &mut self.inflight {
            if record.cycle_id == Some(cycle_id) {
                record.confirmed = true;
                break;
            }
        }
        self.compact();
    }

    /// Reverses one in-flight cycle's trace debits **bit-exactly** by
    /// replaying `base ⊕ remaining in-flight` — the same float operation
    /// sequence a session that never formulated the cycle would have
    /// run. Returns the removed record (its `user_tokens` are what the
    /// caller replans from), or `None` when the cycle is unknown or
    /// already confirmed (delivered work is never rolled back).
    fn rollback(&mut self, cycle_id: usize) -> Option<CycleRecord> {
        let pos = self
            .inflight
            .iter()
            .position(|r| r.cycle_id == Some(cycle_id) && !r.confirmed)?;
        let record = self.inflight.remove(pos);
        let num_topics = self.generator.belief().num_topics();
        let mut acc = self.base.clone();
        for r in &self.inflight {
            acc.fold(r, self.config.history_aware, num_topics);
        }
        self.acc = acc;
        Some(record)
    }

    /// Formulates (and records) one cycle for `tokens` (synchronous
    /// path: resolved inline, so it is born confirmed).
    fn formulate(&mut self, tokens: &[TermId]) -> CycleResult {
        let (result, posteriors) = self.generate(tokens);
        self.account(&result, &posteriors, None, tokens, 0, true);
        result
    }

    fn metrics(&self, id: &str) -> SessionMetrics {
        let acc = &self.acc;
        let n = acc.cycles.max(1) as f64;
        let intention: Vec<usize> = acc.intention_union.iter().copied().collect();
        // Equation 2 over the whole trace from the running sum: trace
        // boost = mean posterior − prior; exposure is its max over the
        // union of certified intentions.
        let trace_exposure = if acc.posterior_count == 0 {
            0.0
        } else {
            let belief = self.generator.belief();
            let prior = belief.prior();
            let trace_boosts: Vec<f64> = acc
                .posterior_sum
                .iter()
                .zip(prior)
                .map(|(&sum, &pri)| sum / acc.posterior_count as f64 - pri)
                .collect();
            toppriv_core::exposure(&trace_boosts, &intention)
        };
        SessionMetrics {
            session: id.to_string(),
            cycles: acc.cycles,
            queries_emitted: acc.queries_emitted,
            mean_cycle_len: acc.sum_cycle_len / n,
            mean_exposure: acc.sum_exposure / n,
            worst_exposure: acc.worst_exposure,
            mean_mask_level: acc.sum_mask / n,
            satisfied_rate: acc.satisfied as f64 / n,
            trace_exposure,
        }
    }
}

/// The multi-tenant service core.
///
/// ## Example
///
/// ```no_run
/// use std::sync::Arc;
/// use toppriv_service::SessionManager;
/// # let engine: Arc<tsearch_search::SearchEngine> = unimplemented!();
/// # let model: Arc<tsearch_lda::LdaModel> = unimplemented!();
///
/// // One shared engine + model, a 4096-entry decoy cache, and a fixed
/// // fleet secret (omit `with_fleet_seed` to draw a random one).
/// let manager = SessionManager::new(engine, model)
///     .with_cache(4096)
///     .with_fleet_seed(0xC0FFEE);
/// manager.open_session("alice").unwrap();
/// let outcome = manager.search("alice", "apache helicopter", 10).unwrap();
/// assert!(outcome.report.metrics.exposure <= outcome.report.metrics.mask_level);
/// ```
pub struct SessionManager {
    tier: RwLock<SearchTier>,
    model: RwLock<Arc<LdaModel>>,
    /// Monotone model-swap counter; sessions compare against it to
    /// lazily rebind their generators after [`SessionManager::swap_model`].
    model_epoch: AtomicU64,
    cache: Option<Arc<ResultCache>>,
    metrics: Arc<ServiceMetrics>,
    /// The online privacy auditor, when the audit plane is attached
    /// (see [`SessionManager::with_auditor`]).
    auditor: Option<Arc<crate::auditor::PrivacyAuditor>>,
    /// The deterministic fault-injection plane, when attached (see
    /// [`SessionManager::with_fault_plane`]). `None` in production —
    /// every injection check compiles to a branch on `None`.
    fault: Option<Arc<FaultPlane>>,
    defaults: SessionConfig,
    /// Service-wide secret mixed into every session's ghost seed.
    fleet_seed: u64,
    sessions: RwLock<HashMap<String, Arc<Mutex<Session>>>>,
}

impl SessionManager {
    /// A manager over a shared single engine and model, no result cache,
    /// and a randomly drawn fleet secret ghost seed.
    pub fn new(engine: Arc<SearchEngine>, model: Arc<LdaModel>) -> Self {
        Self::with_tier(SearchTier::Single(engine), model)
    }

    /// A manager over a term-sharded engine (queries fan out to their
    /// shard sets; the scheduler drains shards independently).
    pub fn new_sharded(engine: Arc<ShardedEngine>, model: Arc<LdaModel>) -> Self {
        Self::with_tier(SearchTier::Sharded(engine), model)
    }

    /// A manager over an explicit search tier.
    pub fn with_tier(tier: SearchTier, model: Arc<LdaModel>) -> Self {
        SessionManager {
            tier: RwLock::new(tier),
            model: RwLock::new(model),
            model_epoch: AtomicU64::new(0),
            cache: None,
            metrics: Arc::new(ServiceMetrics::new()),
            auditor: None,
            fault: None,
            defaults: SessionConfig::default(),
            fleet_seed: random_fleet_seed(),
            sessions: RwLock::new(HashMap::new()),
        }
    }

    /// Attaches a sharded LRU result cache of `capacity` entries. The
    /// cache publishes per-shard hit/miss/eviction counters and lookup
    /// latency into this manager's metrics registry.
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(Arc::new(
            ResultCache::new(capacity).with_registry(self.metrics.registry().clone()),
        ));
        self
    }

    /// Rebinds this manager's metrics onto `registry` — pass a clone of
    /// [`toppriv_obs::global()`] to expose service counters alongside
    /// the engine-layer instrumentation through one endpoint. An
    /// already-attached cache is re-bound to the same registry.
    pub fn with_metrics_registry(mut self, registry: Arc<toppriv_obs::MetricsRegistry>) -> Self {
        self.metrics = Arc::new(ServiceMetrics::with_registry(registry.clone()));
        if let Some(cache) = &self.cache {
            self.cache = Some(Arc::new(
                ResultCache::new(cache.capacity()).with_registry(registry),
            ));
        }
        self
    }

    /// Attaches the online privacy-audit plane: every formulated cycle
    /// registers its privacy facts with a [`crate::PrivacyAuditor`]
    /// publishing into this manager's metrics registry, every drain (via
    /// a [`crate::CycleScheduler::for_manager`] scheduler) audits them,
    /// and `Health` / `AuditTail` read out the verdict. Attach **after**
    /// [`SessionManager::with_metrics_registry`] so the auditor's gauges
    /// land on the final registry.
    pub fn with_auditor(mut self, config: crate::auditor::AuditConfig) -> Self {
        self.auditor = Some(Arc::new(crate::auditor::PrivacyAuditor::new(
            self.metrics.registry().clone(),
            config,
        )));
        self
    }

    /// The attached privacy auditor, if the audit plane is on.
    pub fn auditor(&self) -> Option<&Arc<crate::auditor::PrivacyAuditor>> {
        self.auditor.as_ref()
    }

    /// Attaches a deterministic [`FaultPlane`]: the scheduler, the
    /// session/audit spill paths, and [`SessionManager::try_swap_model`]
    /// consult it before touching real state. Attach **after**
    /// [`SessionManager::with_auditor`] so the auditor's own spill path
    /// sees the plane too.
    pub fn with_fault_plane(mut self, plane: Arc<FaultPlane>) -> Self {
        if let Some(auditor) = &self.auditor {
            auditor.attach_fault_plane(plane.clone());
        }
        self.fault = Some(plane);
        self
    }

    /// The attached fault plane, if any.
    pub fn fault_plane(&self) -> Option<&Arc<FaultPlane>> {
        self.fault.as_ref()
    }

    /// Overrides the default per-session configuration.
    pub fn with_defaults(mut self, defaults: SessionConfig) -> Self {
        self.defaults = defaults;
        self
    }

    /// Overrides the fleet secret ghost seed (e.g. to share one secret
    /// across service replicas, or to make tests deterministic). Must be
    /// called before sessions are opened — already-open sessions keep
    /// the seed they were created with.
    pub fn with_fleet_seed(mut self, seed: u64) -> Self {
        self.fleet_seed = seed;
        self
    }

    /// The search tier (single engine or shards) at this instant. The
    /// returned handle is a cheap clone (`Arc`s inside); it keeps
    /// serving even if the manager swaps tiers afterwards.
    pub fn tier(&self) -> SearchTier {
        self.tier.read().expect("tier lock poisoned").clone()
    }

    /// The shared model at this instant (a cheap `Arc` clone).
    pub fn model(&self) -> Arc<LdaModel> {
        self.model.read().expect("model lock poisoned").clone()
    }

    /// The current model epoch: 0 at construction, bumped by every
    /// [`SessionManager::swap_model`].
    pub fn model_epoch(&self) -> u64 {
        self.model_epoch.load(Ordering::SeqCst)
    }

    /// Swaps the shared model without closing sessions (zero-downtime
    /// retrain deploy). Returns the new epoch. Each open session rebinds
    /// its generator to the new model lazily on its next search or plan;
    /// in-flight resolutions against the old model finish unharmed
    /// (their `Arc` keeps it alive). Exposure accounting carries across
    /// the swap when the topic count is unchanged and restarts when it
    /// is not (see [`Self::swap_tier`] for the index-side counterpart).
    pub fn swap_model(&self, model: Arc<LdaModel>) -> u64 {
        let mut slot = self.model.write().expect("model lock poisoned");
        *slot = model;
        // Bump while still holding the slot so (model, epoch) move
        // together: a session can never observe the new epoch paired
        // with the old model.
        self.model_epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Fallible variant of [`SessionManager::swap_model`] for fleet
    /// rollout loops: when the attached [`FaultPlane`] schedules a
    /// transient [`FaultKind::ModelSwapFail`], the swap is rejected
    /// *before* any state moves — the old `(model, epoch)` pair stays
    /// fully intact and the caller retries. Without a fault plane this
    /// is exactly `swap_model`.
    pub fn try_swap_model(&self, model: Arc<LdaModel>) -> Result<u64, ServiceError> {
        if let Some(plane) = &self.fault {
            let key = FaultPlane::key_of(&self.model_epoch().to_le_bytes());
            if plane.fires_key(FaultKind::ModelSwapFail, key, 0) {
                return Err(ServiceError::Unavailable(
                    "injected model_swap_fail fault: swap rejected".into(),
                ));
            }
        }
        Ok(self.swap_model(model))
    }

    /// Swaps the search tier without closing sessions (zero-downtime
    /// index rebuild, e.g. after corpus evolution). Sessions keep their
    /// privacy accounting; schedulers constructed before the swap keep
    /// draining against the tier they were built with, so build a fresh
    /// [`crate::CycleScheduler::for_manager`] after swapping.
    pub fn swap_tier(&self, tier: SearchTier) {
        *self.tier.write().expect("tier lock poisoned") = tier;
    }

    /// The result cache, if one is attached.
    pub fn cache(&self) -> Option<&Arc<ResultCache>> {
        self.cache.as_ref()
    }

    /// The shared metrics registry.
    pub fn metrics_registry(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    /// Opens a session with the manager's default configuration.
    pub fn open_session(&self, id: &str) -> Result<(), ServiceError> {
        self.open_session_with(id, self.defaults.clone())
    }

    /// Opens a session with an explicit configuration.
    pub fn open_session_with(&self, id: &str, config: SessionConfig) -> Result<(), ServiceError> {
        if id.is_empty() {
            return Err(ServiceError::BadRequest("empty session id".into()));
        }
        let mut sessions = self.sessions.write().expect("session table poisoned");
        if sessions.contains_key(id) {
            return Err(ServiceError::DuplicateSession(id.to_string()));
        }
        let session = Session::new(
            self.model(),
            config,
            session_seed(id),
            self.fleet_seed,
            self.model_epoch(),
        );
        sessions.insert(id.to_string(), Arc::new(Mutex::new(session)));
        Ok(())
    }

    /// Closes a session, returning its final metrics.
    pub fn close_session(&self, id: &str) -> Result<SessionMetrics, ServiceError> {
        let session = self
            .sessions
            .write()
            .expect("session table poisoned")
            .remove(id)
            .ok_or_else(|| ServiceError::UnknownSession(id.to_string()))?;
        let session = session.lock().expect("session poisoned");
        if let Some(auditor) = &self.auditor {
            auditor.forget_session(id);
        }
        Ok(session.metrics(id))
    }

    /// Open session count.
    pub fn session_count(&self) -> usize {
        self.sessions.read().expect("session table poisoned").len()
    }

    /// Sorted ids of the open sessions.
    pub fn session_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .sessions
            .read()
            .expect("session table poisoned")
            .keys()
            .cloned()
            .collect();
        ids.sort();
        ids
    }

    fn session(&self, id: &str) -> Result<Arc<Mutex<Session>>, ServiceError> {
        self.sessions
            .read()
            .expect("session table poisoned")
            .get(id)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownSession(id.to_string()))
    }

    /// Epoch check on the search hot path: if the manager's model moved
    /// on since this session last generated, rebind its generator now.
    fn refresh_session(&self, session: &mut Session) {
        let epoch = self.model_epoch();
        if session.model_epoch != epoch {
            session.rebind_model(self.model(), epoch, self.fleet_seed);
        }
    }

    /// Resolves one cycle member through the cache (when attached) or the
    /// search tier, recording submit metrics. Returns `(hits, cache_hit)`.
    pub(crate) fn resolve(
        tier: &SearchTier,
        cache: Option<&ResultCache>,
        metrics: &ServiceMetrics,
        tokens: &[TermId],
        k: usize,
        is_genuine: bool,
    ) -> (Vec<SearchHit>, bool) {
        let t0 = Instant::now();
        let (hits, cache_hit) = match cache {
            Some(cache) => cache.get_or_compute(tokens, k, || tier.search_tokens(tokens, k)),
            None => (tier.search_tokens(tokens, k), false),
        };
        metrics.record_engine_submission();
        metrics.record_submit(t0.elapsed().as_micros() as u64, cache_hit, is_genuine);
        (hits, cache_hit)
    }

    /// Fan-out variant of [`SessionManager::resolve`] for a submission
    /// shared by several subscribing tenants (a planner-coalesced queue
    /// entry): the cache/tier is consulted **once** — one engine
    /// submission — and per-tenant submit metrics are recorded for every
    /// tag. Subscribers beyond the first are served from the shared
    /// resolution, which is a cache hit from their point of view (see
    /// [`ResultCache::get_or_compute_shared`]).
    pub(crate) fn resolve_shared(
        tier: &SearchTier,
        cache: Option<&ResultCache>,
        metrics: &ServiceMetrics,
        tokens: &[TermId],
        k: usize,
        tags: &[SubmissionTag],
    ) -> (Vec<SearchHit>, bool) {
        if tags.len() <= 1 {
            let is_genuine = tags.first().is_some_and(|t| t.is_genuine);
            return Self::resolve(tier, cache, metrics, tokens, k, is_genuine);
        }
        let t0 = Instant::now();
        let (hits, cache_hit) = match cache {
            Some(cache) => {
                cache.get_or_compute_shared(tokens, k, tags.len(), || tier.search_tokens(tokens, k))
            }
            None => (tier.search_tokens(tokens, k), false),
        };
        metrics.record_engine_submission();
        let latency_us = t0.elapsed().as_micros() as u64;
        for (j, tag) in tags.iter().enumerate() {
            let (lat, hit) = if j == 0 {
                (latency_us, cache_hit)
            } else {
                (0, true)
            };
            metrics.record_submit(lat, hit, tag.is_genuine);
        }
        (hits, cache_hit)
    }

    /// Synchronous private search: formulates the cycle, resolves every
    /// member in (shuffled) cycle order, discards ghost results, and
    /// returns the genuine hits plus the privacy report.
    ///
    /// `k == 0` is a sentinel meaning "the session's configured `top_k`".
    pub fn search(&self, id: &str, text: &str, k: usize) -> Result<SearchOutcome, ServiceError> {
        let tier = self.tier();
        let tokens = tier.analyzer().analyze_frozen(text, tier.vocab());
        self.search_tokens(id, &tokens, k)
    }

    /// Token-level variant of [`SessionManager::search`] (`k == 0` means
    /// the session's configured `top_k`).
    pub fn search_tokens(
        &self,
        id: &str,
        tokens: &[TermId],
        k: usize,
    ) -> Result<SearchOutcome, ServiceError> {
        // Session existence first: an unknown tenant should hear that, not
        // a complaint about its query text.
        let session = self.session(id)?;
        if tokens.is_empty() {
            return Err(ServiceError::BadRequest(
                "query analyzed to zero tokens".into(),
            ));
        }
        let span = toppriv_obs::tracer().span("search");
        let tier = self.tier();
        let mut session = session.lock().expect("session poisoned");
        self.refresh_session(&mut session);
        let k = if k == 0 { session.config.top_k } else { k };
        let report = {
            let _formulate = span.child("formulate");
            session.formulate(tokens)
        };
        if let Some(auditor) = &self.auditor {
            // The synchronous path has no drain to audit it later:
            // register and audit the cycle right here, under the
            // session lock, keyed by the session's own cycle counter.
            let m = session.metrics(id);
            auditor.observe_cycle(
                id,
                (session.acc.cycles - 1) as usize,
                &report.metrics,
                session.config.requirement.eps2,
                m.trace_exposure,
                m.worst_exposure,
            );
        }
        let mut genuine_hits = Vec::new();
        let mut cache_hits = 0usize;
        let resolve_span = span.child("resolve");
        for query in &report.cycle {
            let (hits, was_hit) = Self::resolve(
                &tier,
                self.cache.as_deref(),
                &self.metrics,
                &query.tokens,
                k,
                query.is_genuine,
            );
            if was_hit {
                cache_hits += 1;
            }
            if query.is_genuine {
                genuine_hits = hits;
            }
            // Ghost results are dropped on the floor (Figure 1, step 4).
        }
        drop(resolve_span);
        Ok(SearchOutcome {
            hits: genuine_hits,
            report,
            cache_hits,
        })
    }

    /// Plans one paced cycle: formulates it, schedules it on the session's
    /// simulated clock, and returns the per-submission plan for the
    /// [`crate::CycleScheduler`] — each submission tagged with the shard
    /// set its terms route to, so the scheduler can queue it per shard.
    /// The session clock advances by its configured think time.
    pub fn plan_cycle(
        &self,
        id: &str,
        tokens: &[TermId],
        k: usize,
    ) -> Result<Vec<PlannedQuery>, ServiceError> {
        self.plan_cycle_with_report(id, tokens, k)
            .map(|(_, plan)| plan)
    }

    /// [`SessionManager::plan_cycle`] that also returns the cycle's
    /// ground-truth [`CycleResult`] — what scenario harnesses and
    /// adversary evaluations need to audit the trace the engine later
    /// observes (which planned submission was genuine, what the
    /// certified intention was) without re-deriving it.
    pub fn plan_cycle_with_report(
        &self,
        id: &str,
        tokens: &[TermId],
        k: usize,
    ) -> Result<(CycleResult, Vec<PlannedQuery>), ServiceError> {
        let session = self.session(id)?;
        if tokens.is_empty() {
            return Err(ServiceError::BadRequest(
                "query analyzed to zero tokens".into(),
            ));
        }
        let span = toppriv_obs::tracer().span("plan_cycle");
        let tier = self.tier();
        let mut session = session.lock().expect("session poisoned");
        self.refresh_session(&mut session);
        let k = if k == 0 { session.config.top_k } else { k };
        let (report, posteriors) = {
            let _formulate = span.child("formulate");
            session.generate(tokens)
        };
        Ok(self.plan_locked(id, &mut session, &tier, report, &posteriors, tokens, k))
    }

    /// Accounts a formulated cycle and turns it into a paced plan — the
    /// shared tail of [`SessionManager::plan_cycle_with_report`] and
    /// [`SessionManager::commit_cycle`]. Runs under the session lock.
    #[allow(clippy::too_many_arguments)]
    fn plan_locked(
        &self,
        id: &str,
        session: &mut Session,
        tier: &SearchTier,
        report: CycleResult,
        posteriors: &[Vec<f64>],
        user_tokens: &[TermId],
        k: usize,
    ) -> (CycleResult, Vec<PlannedQuery>) {
        let start = session.clock_secs;
        session.clock_secs += session.config.think_time_secs;
        // Schedule first so the pacer's cycle id is known when the
        // cycle's accounting record is journaled — that id is the handle
        // [`SessionManager::rollback_cycle`] reverses the debits by.
        let schedule = session.pacer.schedule(&report, start);
        let cycle_id = schedule.first().map(|s| s.cycle_id);
        session.account(
            &report,
            posteriors,
            cycle_id,
            user_tokens,
            k,
            cycle_id.is_none(),
        );
        if let Some(auditor) = &self.auditor {
            if let Some(cycle_id) = cycle_id {
                // Register the cycle's privacy facts while the ground
                // truth is in hand; the scheduler's drain workers audit
                // them via `PrivacyAuditor::on_outcome`.
                let m = session.metrics(id);
                auditor.register_cycle(
                    id,
                    cycle_id,
                    &report.metrics,
                    session.config.requirement.eps2,
                    m.trace_exposure,
                    m.worst_exposure,
                );
            }
        }
        let plan = schedule
            .into_iter()
            .map(|scheduled| {
                let shards = tier.shard_set(&scheduled.tokens);
                PlannedQuery {
                    session: id.to_string(),
                    scheduled,
                    k,
                    shards,
                    subscribers: Vec::new(),
                }
            })
            .collect();
        (report, plan)
    }

    /// Formulates one cycle **without** committing it: the cycle is
    /// generated and certified, but nothing is recorded in the session's
    /// trace accounting, pacing clock, or audit plane yet. The returned
    /// [`FormulatedCycle`] is what the cross-session
    /// [`crate::planner::GhostPlanner`] rewrites (substituting ghost
    /// members with other tenants' already-planned submissions) before
    /// handing it back to [`SessionManager::commit_cycle`]. Callers that
    /// don't rewrite anything should just use
    /// [`SessionManager::plan_cycle`].
    pub fn formulate_cycle(
        &self,
        id: &str,
        tokens: &[TermId],
        k: usize,
    ) -> Result<FormulatedCycle, ServiceError> {
        let session = self.session(id)?;
        if tokens.is_empty() {
            return Err(ServiceError::BadRequest(
                "query analyzed to zero tokens".into(),
            ));
        }
        let span = toppriv_obs::tracer().span("plan_cycle");
        let mut session = session.lock().expect("session poisoned");
        self.refresh_session(&mut session);
        let k = if k == 0 { session.config.top_k } else { k };
        let (report, posteriors) = {
            let _formulate = span.child("formulate");
            session.generate(tokens)
        };
        // Mirror `Session::generate`'s branch: history-aware cycles carry
        // trace boosts averaged over history ∪ cycle, so that is the
        // support planner substitutions must divide by.
        let boost_support = if session.config.history_aware && !session.acc.tracker.is_empty() {
            session.acc.tracker.posteriors().len() + report.cycle_len()
        } else {
            report.cycle_len()
        };
        Ok(FormulatedCycle {
            session: id.to_string(),
            user_tokens: tokens.to_vec(),
            report,
            posteriors,
            requirement: session.config.requirement,
            boost_support,
            k,
            model_epoch: session.model_epoch,
        })
    }

    /// Commits a formulated (and possibly planner-rewritten) cycle: the
    /// **final** members are accounted into the session's trace — a
    /// shared submission debits this subscriber's running posterior sums
    /// exactly as an owned decoy would — the cycle is paced onto the
    /// session clock, its privacy facts are registered with the audit
    /// plane, and the per-submission plan is returned.
    ///
    /// If the shared model was swapped between formulation and commit,
    /// the held posteriors (and any cross-tenant substitutions) are
    /// stale; the cycle is silently regenerated from the original user
    /// tokens under the current model instead.
    pub fn commit_cycle(
        &self,
        fc: FormulatedCycle,
    ) -> Result<(CycleResult, Vec<PlannedQuery>), ServiceError> {
        let session = self.session(&fc.session)?;
        let tier = self.tier();
        let mut session = session.lock().expect("session poisoned");
        self.refresh_session(&mut session);
        let (report, posteriors) = if session.model_epoch != fc.model_epoch {
            session.generate(&fc.user_tokens)
        } else {
            (fc.report, fc.posteriors)
        };
        Ok(self.plan_locked(
            &fc.session,
            &mut session,
            &tier,
            report,
            &posteriors,
            &fc.user_tokens,
            fc.k,
        ))
    }

    /// Marks a planned cycle fully delivered: it leaves the rollback
    /// window, and its accounting record is compacted away once every
    /// cycle planned before it is confirmed too. Schedulers call this
    /// for every cycle whose submissions all resolved.
    pub fn confirm_cycle(&self, id: &str, cycle_id: usize) -> Result<(), ServiceError> {
        let session = self.session(id)?;
        let mut session = session.lock().expect("session poisoned");
        session.confirm(cycle_id);
        Ok(())
    }

    /// **Cycle atomicity**: reverses a planned cycle whose submissions
    /// could not all be delivered within the scheduler's retry budget.
    /// The session's trace accounting is recomputed *without* the cycle
    /// — bit-exactly equal to a session that never formulated it (base
    /// accumulator plus a re-fold of the surviving in-flight journal,
    /// never float subtraction) — the audit plane's pending fact for the
    /// cycle is released (its exactly-once breach flag is preserved),
    /// and the original user tokens come back so the caller can replan
    /// the search as a fresh cycle. Rolling back an unknown or already
    /// confirmed cycle fails with `BadRequest`: delivered work is never
    /// reversed.
    pub fn rollback_cycle(
        &self,
        id: &str,
        cycle_id: usize,
    ) -> Result<RolledBackCycle, ServiceError> {
        let session = self.session(id)?;
        let mut session = session.lock().expect("session poisoned");
        let record = session.rollback(cycle_id).ok_or_else(|| {
            ServiceError::BadRequest(format!(
                "cycle {cycle_id} of '{id}' is not in the rollback window"
            ))
        })?;
        if let Some(auditor) = &self.auditor {
            let m = session.metrics(id);
            auditor.release_cycle(id, cycle_id, m.trace_exposure, m.worst_exposure);
        }
        Ok(RolledBackCycle {
            session: id.to_string(),
            cycle_id,
            user_tokens: record.user_tokens,
            k: record.k,
        })
    }

    /// Spills one session's complete state (see
    /// [`crate::persist::SessionState`]) for crash recovery. The session
    /// stays open; the caller typically seals the state into a
    /// CRC-checked container via [`crate::persist::seal_session_state`].
    pub fn export_session(&self, id: &str) -> Result<crate::persist::SessionState, ServiceError> {
        let session = self.session(id)?;
        let s = session.lock().expect("session poisoned");
        // The *live* accounting spills: a restore treats everything
        // spilled as confirmed (the rollback window does not survive a
        // crash — in-flight cycles at spill time are either audited by a
        // later drain or lost with the process, never half-restored).
        Ok(crate::persist::SessionState {
            id: id.to_string(),
            config: s.config.clone(),
            model_epoch: s.model_epoch,
            posteriors: s.acc.tracker.posteriors().to_vec(),
            genuine: s.acc.tracker.genuine().to_vec(),
            clock_secs: s.clock_secs,
            intention_union: s.acc.intention_union.iter().copied().collect(),
            posterior_sum: s.acc.posterior_sum.clone(),
            posterior_count: s.acc.posterior_count,
            next_cycle_id: s.pacer.next_cycle_id() as u64,
            cycles: s.acc.cycles,
            queries_emitted: s.acc.queries_emitted,
            sum_cycle_len: s.acc.sum_cycle_len,
            sum_exposure: s.acc.sum_exposure,
            worst_exposure: s.acc.worst_exposure,
            sum_mask: s.acc.sum_mask,
            satisfied: s.acc.satisfied,
        })
    }

    /// Restores a spilled session into this manager. The generator is
    /// rebuilt from the spilled config against the manager's **current**
    /// model and fleet seed; restored accounting is bit-identical to the
    /// spill (all sums and counters carry over raw), and stays
    /// bit-identical *going forward* only when the restoring manager
    /// holds the same fleet seed and an identical model — the crash
    /// recovery contract. Fails on a duplicate id or a state whose
    /// tracker parts are inconsistent.
    pub fn restore_session(
        &self,
        state: &crate::persist::SessionState,
    ) -> Result<(), ServiceError> {
        if state.id.is_empty() {
            return Err(ServiceError::BadRequest("empty session id".into()));
        }
        let tracker = SessionTracker::from_parts(state.posteriors.clone(), state.genuine.clone())
            .ok_or_else(|| {
            ServiceError::BadRequest("corrupt session state: genuine index beyond history".into())
        })?;
        let mut sessions = self.sessions.write().expect("session table poisoned");
        if sessions.contains_key(&state.id) {
            return Err(ServiceError::DuplicateSession(state.id.clone()));
        }
        let mut session = Session::new(
            self.model(),
            state.config.clone(),
            session_seed(&state.id),
            self.fleet_seed,
            self.model_epoch(),
        );
        session.pacer.resume_from(state.next_cycle_id as usize);
        session.clock_secs = state.clock_secs;
        // Everything restored is confirmed state: base == acc, journal
        // empty (see the export-side note).
        session.base = TraceAccounting {
            tracker,
            intention_union: state.intention_union.iter().copied().collect(),
            posterior_sum: state.posterior_sum.clone(),
            posterior_count: state.posterior_count,
            cycles: state.cycles,
            queries_emitted: state.queries_emitted,
            sum_cycle_len: state.sum_cycle_len,
            sum_exposure: state.sum_exposure,
            worst_exposure: state.worst_exposure,
            sum_mask: state.sum_mask,
            satisfied: state.satisfied,
        };
        session.acc = session.base.clone();
        session.inflight.clear();
        sessions.insert(state.id.clone(), Arc::new(Mutex::new(session)));
        Ok(())
    }

    /// Spills one session's sealed state container to `path` via the
    /// store's atomic write (temp file + rename, so a crash mid-spill
    /// can never leave a torn container). An attached [`FaultPlane`]
    /// scheduling a [`FaultKind::StoreWrite`] for this path fails the
    /// spill *before* anything touches disk — the previous container
    /// stays valid, mirroring a real `ENOSPC`.
    pub fn spill_session(&self, id: &str, path: &Path) -> Result<(), ServiceError> {
        let state = self.export_session(id)?;
        if let Some(plane) = &self.fault {
            let key = FaultPlane::key_of(path.as_os_str().as_encoded_bytes());
            if let Some(err) = plane.io_error(FaultKind::StoreWrite, key) {
                return Err(ServiceError::Unavailable(format!(
                    "session spill to {} failed: {err}",
                    path.display()
                )));
            }
        }
        let sealed = crate::persist::seal_session_state(&state);
        tsearch_store::atomic_write(path, &sealed).map_err(|err| {
            ServiceError::Unavailable(format!("session spill to {} failed: {err}", path.display()))
        })
    }

    /// Reads a sealed container from `path` and restores the session it
    /// holds (see [`SessionManager::restore_session`] for the recovery
    /// contract). A scheduled [`FaultKind::StoreRead`] fails the read;
    /// a corrupt or truncated container is rejected by the CRC seal
    /// *before* any session state is touched — recovery never restores
    /// half a spill.
    pub fn load_session(&self, path: &Path) -> Result<String, ServiceError> {
        if let Some(plane) = &self.fault {
            let key = FaultPlane::key_of(path.as_os_str().as_encoded_bytes());
            if let Some(err) = plane.io_error(FaultKind::StoreRead, key) {
                return Err(ServiceError::Unavailable(format!(
                    "session load from {} failed: {err}",
                    path.display()
                )));
            }
        }
        let bytes = std::fs::read(path).map_err(|err| {
            ServiceError::Unavailable(format!(
                "session load from {} failed: {err}",
                path.display()
            ))
        })?;
        let state = crate::persist::unseal_session_state(&bytes).map_err(|err| {
            ServiceError::BadRequest(format!(
                "corrupt session container {}: {err}",
                path.display()
            ))
        })?;
        let id = state.id.clone();
        self.restore_session(&state)?;
        Ok(id)
    }

    /// Metrics for one session.
    pub fn session_metrics(&self, id: &str) -> Result<SessionMetrics, ServiceError> {
        let session = self.session(id)?;
        let session = session.lock().expect("session poisoned");
        Ok(session.metrics(id))
    }

    /// Full service snapshot: global counters plus every session.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut sessions: Vec<SessionMetrics> = self
            .session_ids()
            .iter()
            .filter_map(|id| self.session_metrics(id).ok())
            .collect();
        sessions.sort_by(|a, b| a.session.cmp(&b.session));
        MetricsSnapshot {
            global: self.metrics.snapshot(),
            sessions,
        }
    }
}

/// Stable per-session seed from the id.
fn session_seed(id: &str) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    id.hash(&mut h);
    h.finish()
}

/// Draws a random fleet secret from the OS entropy `RandomState` seeds
/// its hashers with (the build is std-only; this avoids a crypto dep
/// while still being unpredictable to the engine).
fn random_fleet_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish()
}
