//! Experiment `load` (extension beyond the paper): the server-side cost
//! of privacy.
//!
//! Section V names υ−1 ghost queries per cycle as "the overhead of
//! privacy protection on the search engine" but never measures it. Here
//! a pool of worker threads replays the protected workload against the
//! unmodified engine and we record aggregate throughput:
//!
//! - `upsilon = 1` is the unprotected baseline;
//! - forced cycle lengths 2–8 multiply the query volume;
//! - the `slowdown` column is the user-visible throughput ratio — it
//!   should track υ (each ghost costs one real evaluation), which is the
//!   quantified version of the paper's overhead claim.

use crate::context::ExperimentContext;
use crate::table::{f3, ResultTable};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use toppriv_core::{BeliefEngine, GhostConfig, GhostGenerator, PrivacyRequirement};
use tsearch_text::TermId;

/// Worker threads simulating concurrent clients.
pub const WORKERS: usize = 4;
/// Results requested per query.
pub const TOP_K: usize = 10;
/// Forced cycle lengths (1 = unprotected baseline).
pub const CYCLE_LENGTHS: &[usize] = &[1, 2, 4, 8];

/// Minimum submissions per measurement; short streams are replayed in
/// rounds until this floor is met so wall-clock noise stays small.
pub const MIN_SUBMISSIONS: usize = 4000;

/// Replays `queries` (in `rounds` rounds) across the worker pool;
/// returns elapsed seconds.
fn replay(ctx: &ExperimentContext, queries: &[Vec<TermId>], rounds: usize) -> f64 {
    let total = queries.len() * rounds;
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..WORKERS {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                // The engine's real evaluation path, including its
                // adversary-visible query log.
                let hits = ctx.engine.search_tokens(&queries[i % queries.len()], TOP_K);
                std::hint::black_box(hits);
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

/// Runs the load experiment on the default model.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let generator = GhostGenerator::new(
        BeliefEngine::new(ctx.default_model().clone()),
        PrivacyRequirement::paper_default(),
        GhostConfig::default(),
    );
    let user_queries = ctx.sweep_queries();

    let mut table = ResultTable::new(
        "ext4_engine_load",
        "Server-side cost of privacy: throughput of the unmodified engine \
         under forced cycle lengths (4 worker threads, top-10 retrieval)",
        vec![
            "upsilon".into(),
            "server_queries".into(),
            "user_qps".into(),
            "server_qps".into(),
            "slowdown_vs_unprotected".into(),
        ],
    );

    let mut baseline_user_qps = None;
    for &upsilon in CYCLE_LENGTHS {
        // Materialize the full submission stream for this cycle length.
        let stream: Vec<Vec<TermId>> = if upsilon == 1 {
            user_queries.iter().map(|q| q.tokens.clone()).collect()
        } else {
            user_queries
                .iter()
                .flat_map(|q| {
                    let r = generator.generate_with_target(&q.tokens, upsilon);
                    r.cycle.into_iter().map(|cq| cq.tokens)
                })
                .collect()
        };
        let rounds = MIN_SUBMISSIONS.div_ceil(stream.len().max(1));
        ctx.engine.clear_query_log();
        // Warm-up round (page in postings, size the log), then measure.
        replay(ctx, &stream, 1);
        ctx.engine.clear_query_log();
        let secs = replay(ctx, &stream, rounds);
        let submissions = stream.len() * rounds;
        let server_qps = submissions as f64 / secs.max(1e-9);
        let user_qps = (user_queries.len() * rounds) as f64 / secs.max(1e-9);
        let baseline = *baseline_user_qps.get_or_insert(user_qps);
        table.push_row(vec![
            upsilon.to_string(),
            submissions.to_string(),
            f3(user_qps),
            f3(server_qps),
            f3(baseline / user_qps.max(1e-9)),
        ]);
    }
    ctx.engine.clear_query_log();
    vec![table]
}
