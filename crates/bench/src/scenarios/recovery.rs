//! Scenario `recovery`: spill → crash → restore → replay.
//!
//! The fleet serves load, spills every session's state (posteriors,
//! exposure accounting, pacing position) and every shard's query log
//! into CRC-sealed `tsearch-store` containers on disk, then the whole
//! in-memory fleet is dropped — manager, scheduler, tier. A new fleet is
//! built from scratch and restored **only** from the spilled bytes.
//!
//! Invariants:
//! - every container unseals with its CRC intact, and a corrupted copy
//!   is rejected (the store layer actually guards the spill);
//! - restored per-session accounting is **bit-identical** to the
//!   pre-crash accounting — every `f64` compared by `to_bits`, not
//!   tolerance (Equation-2 trace accounting must not drift across a
//!   crash);
//! - replaying each spilled shard log through the rebuilt tier
//!   reproduces the per-shard logs exactly (ordinal, tokens, text,
//!   compared in ordinal order — a multithreaded drain may append a
//!   shard's entries slightly out of ordinal order) — term routing and
//!   sub-query logging are deterministic, so the adversary-visible
//!   trace is reconstructible;
//! - the restored fleet resumes serving: a post-restore search on a
//!   restored session succeeds, advances its accounting, and keeps the
//!   intention masked (out-boosted by a decoy topic or ≤ ε2).

use super::{finish, fleet_manager, sharded_tier, ScenarioReport, SHARDS, TOP_K, WORKERS};
use crate::context::ExperimentContext;
use crate::obsbench;
use std::path::PathBuf;
use std::time::Instant;
use toppriv_adversary::merge_shard_logs;
use toppriv_obs::InvariantBlock;
use toppriv_service::{
    seal_query_log, seal_session_state, unseal_query_log, unseal_session_state, CycleScheduler,
    PlannedQuery, SessionMetrics,
};
use tsearch_search::LoggedQuery;

/// Sessions that crash and come back.
const SESSIONS: usize = 6;

/// Cycles each session plans before the crash.
const CYCLES_PER_SESSION: usize = 4;

/// Bitwise equality of two metrics snapshots (u64s by value, f64s by
/// bit pattern — NaN-safe and drift-intolerant).
fn metrics_bit_identical(a: &SessionMetrics, b: &SessionMetrics) -> bool {
    a.session == b.session
        && a.cycles == b.cycles
        && a.queries_emitted == b.queries_emitted
        && a.mean_cycle_len.to_bits() == b.mean_cycle_len.to_bits()
        && a.mean_exposure.to_bits() == b.mean_exposure.to_bits()
        && a.worst_exposure.to_bits() == b.worst_exposure.to_bits()
        && a.mean_mask_level.to_bits() == b.mean_mask_level.to_bits()
        && a.satisfied_rate.to_bits() == b.satisfied_rate.to_bits()
        && a.trace_exposure.to_bits() == b.trace_exposure.to_bits()
}

/// Per-shard log equality, compared in ordinal order. The ordinal draw
/// and the log push are not one atomic step, so a concurrent drain may
/// append a shard's entries out of ordinal order; the single-threaded
/// replay always appends in order. The logged *set* per shard is what
/// must match.
fn logs_equal(a: &[Vec<LoggedQuery>], b: &[Vec<LoggedQuery>]) -> bool {
    let by_ordinal = |log: &[LoggedQuery]| {
        let mut sorted: Vec<LoggedQuery> = log.to_vec();
        sorted.sort_by_key(|q| q.ordinal);
        sorted
    };
    a.len() == b.len()
        && a.iter().zip(b).all(|(la, lb)| {
            let (la, lb) = (by_ordinal(la), by_ordinal(lb));
            la.len() == lb.len()
                && la.iter().zip(&lb).all(|(qa, qb)| {
                    qa.ordinal == qb.ordinal && qa.tokens == qb.tokens && qa.text == qb.text
                })
        })
}

/// Runs the crash-recovery scenario.
pub fn run(ctx: &ExperimentContext) -> ScenarioReport {
    let spill_dir: PathBuf =
        std::env::temp_dir().join(format!("toppriv_recovery_{}", std::process::id()));
    std::fs::create_dir_all(&spill_dir).expect("create spill dir");
    let mut inv = InvariantBlock::default();
    let queries = ctx.sweep_queries();

    // --- Phase 1: serve, then spill everything. ------------------------
    obsbench::reset_engine_stages();
    let manager = fleet_manager(ctx, sharded_tier(ctx, SHARDS));
    super::open_tenants(&manager, SESSIONS);
    let scheduler = CycleScheduler::for_manager(&manager, WORKERS);
    let mut plans: Vec<Vec<PlannedQuery>> = Vec::new();
    for (s, id) in manager.session_ids().iter().enumerate() {
        for c in 0..CYCLES_PER_SESSION {
            let q = &queries[(s * 5 + c) % queries.len()];
            plans.push(manager.plan_cycle(id, &q.tokens, TOP_K).expect("open"));
        }
    }
    let queue = CycleScheduler::merge(plans);
    let expected = queue.len();
    let t0 = Instant::now();
    let drained = match scheduler.try_drain(queue) {
        Ok(outcomes) => outcomes.len(),
        Err(e) => e.completed.len(),
    };
    let drain_secs = t0.elapsed().as_secs_f64();

    let ids = manager.session_ids();
    let pre_crash: Vec<SessionMetrics> = ids
        .iter()
        .map(|id| manager.session_metrics(id).expect("open"))
        .collect();
    for id in &ids {
        let state = manager.export_session(id).expect("open session");
        let sealed = seal_session_state(&state);
        std::fs::write(spill_dir.join(format!("session_{id}.bin")), sealed)
            .expect("spill session state");
    }
    let tier = manager.tier();
    let engine = tier.as_sharded().expect("scenario tier is sharded");
    let shard_count = engine.num_shards();
    for (s, log) in engine.shard_logs().iter().enumerate() {
        std::fs::write(
            spill_dir.join(format!("shardlog_{s}.bin")),
            seal_query_log(log),
        )
        .expect("spill shard log");
    }

    // --- Crash: the whole in-memory fleet goes away. -------------------
    drop(scheduler);
    drop(tier);
    drop(manager);

    // --- Phase 2: rebuild from scratch, restore from the spill. --------
    let manager = fleet_manager(ctx, sharded_tier(ctx, SHARDS));
    let mut crc_ok = 0usize;
    let mut crc_total = 0usize;
    for id in &ids {
        crc_total += 1;
        let sealed =
            std::fs::read(spill_dir.join(format!("session_{id}.bin"))).expect("read spill");
        match unseal_session_state(&sealed) {
            Ok(state) => {
                crc_ok += 1;
                manager.restore_session(&state).expect("restore session");
            }
            Err(e) => eprintln!("  recovery: session {id} failed to unseal: {e}"),
        }
    }
    let mut logs_a: Vec<Vec<LoggedQuery>> = Vec::new();
    let mut corrupted_rejected = true;
    for s in 0..shard_count {
        crc_total += 1;
        let sealed =
            std::fs::read(spill_dir.join(format!("shardlog_{s}.bin"))).expect("read spill");
        // Negative control: a single flipped payload byte must be caught
        // by the container CRC, not silently decoded.
        if !sealed.is_empty() {
            let mut bad = sealed.clone();
            let mid = bad.len() / 2;
            bad[mid] ^= 0x40;
            corrupted_rejected &= unseal_query_log(&bad).is_err();
        }
        match unseal_query_log(&sealed) {
            Ok(log) => {
                crc_ok += 1;
                logs_a.push(log);
            }
            Err(e) => {
                eprintln!("  recovery: shard log {s} failed to unseal: {e}");
                logs_a.push(Vec::new());
            }
        }
    }
    inv.check(
        "state_crc_verified",
        format!(
            "{crc_ok}/{crc_total} spilled containers unsealed with CRC intact; \
             corrupted copies rejected: {corrupted_rejected}"
        ),
        crc_ok == crc_total && corrupted_rejected,
    );

    // Restored accounting must equal pre-crash accounting, bit for bit.
    let mut mismatches = Vec::new();
    for pre in &pre_crash {
        match manager.session_metrics(&pre.session) {
            Ok(post) if metrics_bit_identical(pre, &post) => {}
            Ok(post) => mismatches.push(format!(
                "{}: trace_exposure {:.17e} → {:.17e}",
                pre.session, pre.trace_exposure, post.trace_exposure
            )),
            Err(e) => mismatches.push(format!("{}: {e}", pre.session)),
        }
    }
    inv.check(
        "accounting_bit_identical",
        if mismatches.is_empty() {
            format!(
                "{} sessions restored; every metric equal by f64 bit pattern",
                pre_crash.len()
            )
        } else {
            mismatches.join("; ")
        },
        mismatches.is_empty() && manager.session_count() == SESSIONS,
    );

    // Replay the spilled trace through the rebuilt tier: merge the
    // per-shard logs back into the global submission order (ordinals are
    // engine-global) and resubmit each query at the engine level.
    let merged = merge_shard_logs(&logs_a);
    let replay_count = merged.len();
    let tier = manager.tier();
    for q in &merged {
        tier.search_tokens(&q.tokens, TOP_K);
    }
    let logs_b = tier.as_sharded().expect("sharded").shard_logs();
    let replay_ok = logs_equal(&logs_a, &logs_b);
    inv.check(
        "replay_reproduces_log",
        format!(
            "{replay_count} submissions replayed across {shard_count} shards; \
             per-shard logs {} the spilled logs",
            if replay_ok { "match" } else { "diverge from" }
        ),
        replay_ok && replay_count > 0,
    );

    // The restored fleet keeps serving.
    let probe_id = &ids[0];
    let before = manager.session_metrics(probe_id).expect("restored").cycles;
    let out = manager
        .search_tokens(probe_id, &queries[0].tokens, TOP_K)
        .expect("post-restore search");
    let after = manager.session_metrics(probe_id).expect("restored").cycles;
    // ... and sustains a full scheduled round on the restored sessions
    // (this also populates the restored fleet's scheduler stage
    // histograms, so the snapshot's p50/p99 describe post-recovery
    // serving, not the dead fleet's).
    let scheduler = CycleScheduler::for_manager(&manager, WORKERS);
    let mut plans: Vec<Vec<PlannedQuery>> = Vec::new();
    for (s, id) in manager.session_ids().iter().enumerate() {
        let q = &queries[(s * 7 + 1) % queries.len()];
        plans.push(manager.plan_cycle(id, &q.tokens, TOP_K).expect("restored"));
    }
    let queue = CycleScheduler::merge(plans);
    let round_expected = queue.len();
    let t1 = Instant::now();
    let round_drained = match scheduler.try_drain(queue) {
        Ok(outcomes) => outcomes.len(),
        Err(e) => e.completed.len(),
    };
    let round_secs = t1.elapsed().as_secs_f64();
    inv.check(
        "fleet_resumes_serving",
        format!(
            "post-restore search on {probe_id}: {} hits, exposure {:.4} ≤ mask {:.4}, \
             cycles {before} → {after}; follow-up round drained {round_drained}/{round_expected}",
            out.hits.len(),
            out.report.metrics.exposure,
            out.report.metrics.mask_level
        ),
        after == before + 1
            && super::masking_violation(
                &out.report.metrics,
                toppriv_core::PrivacyRequirement::paper_default().eps2,
            ) <= 1e-9
            && round_drained == round_expected,
    );

    let qps = (drained + round_drained) as f64 / (drain_secs + round_secs).max(1e-9);
    let notes = format!(
        "{SESSIONS} sessions x {CYCLES_PER_SESSION} cycles ({expected} submissions, {drained} \
         drained) spilled to {} containers, fleet dropped and restored from disk",
        SESSIONS + shard_count
    );
    let report = finish("recovery", &manager, qps, notes, inv);
    manager.tier().clear_query_logs();
    let _ = std::fs::remove_dir_all(&spill_dir);
    report
}
