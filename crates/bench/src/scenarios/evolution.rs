//! Scenario `evolution`: corpus growth → live reindex + retrain swap.
//!
//! The `hotswap` scenario swaps the model alone; this one completes the
//! zero-downtime story by also swapping the **search tier**: the corpus
//! evolves (new topics, new documents, larger vocabulary), a term-sharded
//! index is rebuilt over the evolved corpus, a fresh model (same K) is
//! trained on it, and both are swapped into the live manager while the
//! sessions stay open. Afterwards the fleet serves the *evolved*
//! workload — queries whose terms do not exist in the old vocabulary —
//! end to end: formulation, ghost generation, sharded resolution.
//!
//! Invariants:
//! - sessions survive the reindex (same population, accounting carries);
//! - the swapped sharded tier ranks the evolved workload identically to
//!   a single-engine build over the same corpus (reindex correctness);
//! - new-topic queries are actually protected after the swap (non-empty
//!   intention, cycle length > 1);
//! - every post-swap cycle leaves the intention out-boosted by a decoy
//!   topic or negligibly boosted (≤ ε2), and satisfied cycles do occur
//!   on the evolved workload;
//! - every post-swap submission drains on the rebuilt scheduler.

use super::{finish, fleet_manager, sharded_tier, ScenarioReport, SHARDS, TOP_K, WORKERS};
use crate::context::ExperimentContext;
use crate::obsbench;
use std::sync::Arc;
use std::time::Instant;
use toppriv_obs::InvariantBlock;
use toppriv_service::{CycleScheduler, PlannedQuery, SearchTier, SessionManager};
use tsearch_corpus::{generate_workload, EvolutionConfig, WorkloadConfig};
use tsearch_lda::{LdaConfig, LdaTrainer};
use tsearch_search::{SearchEngine, ShardedEngine};
use tsearch_text::Analyzer;

/// Sessions the scenario keeps open across the reindex.
const SESSIONS: usize = 6;

/// Plans one cycle per open session over `queries` and drains the
/// merged queue, returning (reports, drained, expected, drain seconds).
fn serve_round(
    manager: &Arc<SessionManager>,
    scheduler: &CycleScheduler,
    queries: &[&tsearch_corpus::BenchmarkQuery],
    rounds: usize,
) -> (Vec<toppriv_core::CycleResult>, usize, usize, f64) {
    let mut reports = Vec::new();
    let mut plans: Vec<Vec<PlannedQuery>> = Vec::new();
    for r in 0..rounds {
        for (s, id) in manager.session_ids().iter().enumerate() {
            let q = queries[(r * 5 + s) % queries.len()];
            let (report, plan) = manager
                .plan_cycle_with_report(id, &q.tokens, TOP_K)
                .expect("session is open");
            reports.push(report);
            plans.push(plan);
        }
    }
    let queue = CycleScheduler::merge(plans);
    let expected = queue.len();
    let t0 = Instant::now();
    let drained = match scheduler.try_drain(queue) {
        Ok(outcomes) => outcomes.len(),
        Err(e) => e.completed.len(),
    };
    (reports, drained, expected, t0.elapsed().as_secs_f64())
}

/// Runs the corpus-evolution scenario.
pub fn run(ctx: &ExperimentContext) -> ScenarioReport {
    let manager = fleet_manager(ctx, sharded_tier(ctx, SHARDS));
    obsbench::reset_engine_stages();
    super::open_tenants(&manager, SESSIONS);
    let mut inv = InvariantBlock::default();
    let mut drained = 0usize;
    let mut drain_secs = 0.0f64;

    // --- Round 1: steady state on the base corpus. ---------------------
    let base_queries: Vec<_> = ctx.sweep_queries().iter().collect();
    let scheduler = CycleScheduler::for_manager(&manager, WORKERS);
    let (_, got, expected, secs) = serve_round(&manager, &scheduler, &base_queries, 2);
    drained += got;
    drain_secs += secs;
    let mut lost = expected - got;
    let pre_cycles: Vec<u64> = manager
        .session_ids()
        .iter()
        .map(|id| manager.session_metrics(id).expect("open").cycles)
        .collect();

    // --- Evolve the corpus, rebuild the index, retrain the model. ------
    let base_topics = ctx.corpus.num_topics();
    let evolved = ctx.corpus.evolve(EvolutionConfig {
        new_topics: (base_topics / 5).max(2),
        new_docs: (ctx.corpus.num_docs() / 5).max(50),
        new_topic_share: 0.8,
        ..Default::default()
    });
    let docs = evolved.token_docs();
    let texts: Vec<String> = evolved.docs.iter().map(|d| d.text.clone()).collect();
    let scoring = ctx.engine.model();
    let evolved_sharded = Arc::new(ShardedEngine::build(
        &docs,
        &texts,
        Analyzer::new(),
        evolved.vocab.clone(),
        scoring,
        SHARDS,
    ));
    // Reference build: one unsharded engine over the identical corpus,
    // for the reindex-correctness parity check.
    let reference = SearchEngine::build(
        &docs,
        &texts,
        Analyzer::new(),
        evolved.vocab.clone(),
        scoring,
    );
    let fresh = Arc::new(LdaTrainer::train(
        &docs,
        evolved.vocab.len(),
        LdaConfig {
            iterations: ctx.scale.lda_iterations,
            ..LdaConfig::with_topics(ctx.scale.default_k)
        },
    ));
    manager.swap_tier(SearchTier::Sharded(evolved_sharded));
    manager.swap_model(fresh);
    // The old scheduler captured the old tier's shard queues; a tier
    // swap means rebuilding it (documented on `swap_tier`).
    let scheduler = CycleScheduler::for_manager(&manager, WORKERS);

    // --- Round 2: the evolved workload, heavy on new-topic queries. ----
    let pool = generate_workload(
        &evolved,
        &WorkloadConfig {
            num_queries: ctx.scale.queries_per_setting * 8,
            ..ctx.scale.workload.clone()
        },
    );
    let new_topic: Vec<_> = pool
        .iter()
        .filter(|q| q.target_topics.iter().all(|&t| t >= base_topics))
        .take(ctx.scale.queries_per_setting.max(8))
        .collect();
    assert!(
        !new_topic.is_empty(),
        "evolved workload has new-topic queries"
    );
    let (reports, got, expected, secs) = serve_round(&manager, &scheduler, &new_topic, 2);
    drained += got;
    drain_secs += secs;
    lost += expected - got;

    // Sessions survive the reindex with accounting intact.
    let ids = manager.session_ids();
    let carried = ids.len() == SESSIONS
        && ids
            .iter()
            .zip(&pre_cycles)
            .all(|(id, &pre)| manager.session_metrics(id).expect("open").cycles > pre);
    inv.check(
        "sessions_survive_reindex",
        format!(
            "{}/{SESSIONS} sessions open after tier+model swap, all with accounting advanced",
            ids.len()
        ),
        carried,
    );

    // Reindex correctness: the live (swapped) sharded tier must rank the
    // evolved workload exactly like the reference single engine.
    let mut parity_checked = 0usize;
    let mut parity_bad = 0usize;
    for q in new_topic.iter().take(16) {
        let sharded_hits = manager.tier().search_tokens(&q.tokens, TOP_K);
        let single_hits = reference.search_tokens(&q.tokens, TOP_K);
        parity_checked += 1;
        let same = sharded_hits.len() == single_hits.len()
            && sharded_hits
                .iter()
                .zip(&single_hits)
                .all(|(a, b)| a.doc_id == b.doc_id && (a.score - b.score).abs() <= 1e-9);
        if !same {
            parity_bad += 1;
        }
    }
    inv.check(
        "sharded_matches_single_after_reindex",
        format!("{parity_checked} evolved queries compared, {parity_bad} ranking mismatches"),
        parity_bad == 0 && parity_checked > 0,
    );

    // Post-swap privacy: new-topic queries protected, exposure bounded.
    let protected = reports
        .iter()
        .filter(|r| !r.intention.is_empty() && r.cycle.len() > 1)
        .count();
    inv.check(
        "new_topics_protected_after_swap",
        format!(
            "{protected}/{} post-swap cycles carry intention and decoys",
            reports.len()
        ),
        protected > 0,
    );
    let eps2 = toppriv_core::PrivacyRequirement::paper_default().eps2;
    let satisfied = reports
        .iter()
        .filter(|r| r.satisfied && !r.intention.is_empty())
        .count();
    let worst_violation = reports
        .iter()
        .map(|r| super::masking_violation(&r.metrics, eps2))
        .fold(f64::NEG_INFINITY, f64::max);
    inv.check(
        "intention_masked_or_negligible_after_swap",
        format!(
            "{} post-swap cycles ({satisfied} satisfied); worst \
             min(exposure − mask_level, exposure − ε2) = {worst_violation:.3e}",
            reports.len()
        ),
        satisfied > 0 && worst_violation <= 1e-9,
    );
    inv.check(
        "all_submissions_drained",
        format!("{drained} drained across both rounds, {lost} lost"),
        lost == 0,
    );

    let qps = drained as f64 / drain_secs.max(1e-9);
    let notes = format!(
        "{SESSIONS} sessions, {SHARDS} shards; {}→{} topics, {}→{} docs, vocab {}→{}; \
         live tier+model swap, scheduler rebuilt",
        base_topics,
        evolved.num_topics(),
        ctx.corpus.num_docs(),
        evolved.num_docs(),
        ctx.corpus.vocab.len(),
        evolved.vocab.len()
    );
    let report = finish("evolution", &manager, qps, notes, inv);
    manager.tier().clear_query_logs();
    report
}
