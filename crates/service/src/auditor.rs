//! The online privacy auditor: continuous per-tenant (ε1, ε2) monitoring.
//!
//! PR 7 proved the paper's Definition-4 fleet invariant —
//! `min(exposure − mask_level, exposure − ε2) ≤ 0` — inside the offline
//! scenario harness. [`PrivacyAuditor`] turns that into a permanent
//! runtime check that runs alongside serving, the privacy-system
//! analogue of continuous SLO monitoring:
//!
//! - **register** — [`crate::SessionManager::plan_cycle_with_report`] (and the
//!   synchronous search path) registers every formulated cycle's
//!   privacy facts (exposure, mask level, ε2, trace exposure) while the
//!   session lock is held, and updates the per-tenant gauges
//!   (`tenant_worst_exposure`, `tenant_trace_exposure`,
//!   `tenant_budget_headroom = ε2 − trace_exposure`) plus the budget
//!   **burn-rate** estimate (`tenant_burn_cycles`: cycles until ε2
//!   exhaustion at the current trace-exposure slope);
//! - **audit** — the [`crate::CycleScheduler`] drain workers call
//!   [`PrivacyAuditor::on_outcome`] for every drained submission; the
//!   registered fact's fleet invariant is evaluated on each call, and a
//!   breach (or a near-breach, when headroom drops under the configured
//!   threshold) is journaled as an [`AuditEvent`] **exactly once** per
//!   cycle, no matter how many workers race on its submissions;
//! - **spill** — once per drain the journal is optionally spilled to a
//!   CRC-sealed `tsearch-store` container (the PR-7 persist codec, kind
//!   [`tsearch_store::kind::AUDIT_JOURNAL`]) so audits survive restarts;
//! - **read out** — [`PrivacyAuditor::health`] aggregates the verdict a
//!   `Health` protocol op, a `toppriv-serve --audit-interval` tick, or a
//!   scenario's closing invariant consumes; [`PrivacyAuditor::tail`]
//!   serves `AuditTail`.
//!
//! The injection hook [`PrivacyAuditor::rig_cycle`] overwrites a
//! registered cycle's facts with a rigged mask schedule — the
//! chaos-testing counterpart of
//! [`crate::CycleScheduler::with_worker_fault`] — so tests and the
//! `audit` bench experiment can prove an ε2 breach is surfaced within
//! one drain without building a deliberately broken ghost generator.

use crate::fault::{FaultKind, FaultPlane};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use toppriv_core::PrivacyMetrics;
use toppriv_obs::{
    recover_lock, AuditEvent, AuditLog, AuditSeverity, HealthReport, MetricsRegistry,
};

/// Metric name: per-tenant worst single-cycle exposure (micro-units).
pub const M_TENANT_WORST_EXPOSURE: &str = "tenant_worst_exposure";
/// Metric name: per-tenant Equation-2 trace exposure (micro-units).
pub const M_TENANT_TRACE_EXPOSURE: &str = "tenant_trace_exposure";
/// Metric name: per-tenant budget headroom `ε2 − trace_exposure`
/// (micro-units; negative means the session budget is exhausted).
pub const M_TENANT_HEADROOM: &str = "tenant_budget_headroom";
/// Metric name: per-tenant cycles until ε2 exhaustion at the current
/// trace-exposure slope (−1 when the tenant is not burning budget).
pub const M_TENANT_BURN_CYCLES: &str = "tenant_burn_cycles";
/// Metric name: audit events journaled, labelled by `severity`.
pub const M_AUDIT_EVENTS: &str = "audit_events_total";
/// Metric name: cycles whose fleet invariant has been evaluated.
pub const M_AUDIT_CYCLES: &str = "audit_cycles_total";
/// Metric name: journal spills sealed to disk.
pub const M_AUDIT_SPILLS: &str = "audit_spills_total";

/// Fixed-point scale for float-valued gauges: the registry's [`toppriv_obs::Gauge`]
/// is an `i64`, so exposures and headrooms are published in micro-units
/// (`value × 1e6`, rounded).
pub const GAUGE_MICRO: f64 = 1e6;

/// Publishes `v` in micro-units, the fixed-point encoding every
/// `tenant_*` gauge uses.
pub fn to_micro(v: f64) -> i64 {
    (v * GAUGE_MICRO).round() as i64
}

/// Auditor tuning.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Events the ring journal retains.
    pub journal_capacity: usize,
    /// Near-breach threshold as a fraction of ε2: a `low_headroom`
    /// warning is journaled when `0 ≤ headroom < fraction × ε2`.
    pub near_breach_fraction: f64,
    /// Float tolerance on the fleet-invariant evaluation (matches the
    /// scenario harness).
    pub tolerance: f64,
    /// Spill the journal after this many audited cycles (0 disables
    /// periodic spills; explicit [`PrivacyAuditor::spill_now`] always
    /// works).
    pub spill_every_cycles: u64,
    /// Where periodic spills land (sealed container bytes). `None`
    /// disables periodic spills even when `spill_every_cycles > 0`.
    pub spill_path: Option<PathBuf>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            journal_capacity: 1024,
            near_breach_fraction: 0.25,
            tolerance: 1e-9,
            spill_every_cycles: 256,
            spill_path: None,
        }
    }
}

/// Per-tenant accounting the auditor maintains across cycles.
#[derive(Debug)]
struct TenantAudit {
    eps2: f64,
    cycles: u64,
    worst_exposure: f64,
    trace_exposure: f64,
    /// EMA of the per-cycle trace-exposure delta (the burn slope).
    burn_slope: f64,
    breaches: u64,
    gauge_worst: toppriv_obs::Gauge,
    gauge_trace: toppriv_obs::Gauge,
    gauge_headroom: toppriv_obs::Gauge,
    gauge_burn: toppriv_obs::Gauge,
}

impl TenantAudit {
    fn headroom(&self) -> f64 {
        self.eps2 - self.trace_exposure
    }

    /// Cycles until ε2 exhaustion at the current slope (−1 when not
    /// burning or already exhausted with no slope).
    fn burn_cycles(&self) -> i64 {
        if self.burn_slope <= 1e-12 {
            return -1;
        }
        let h = self.headroom();
        if h <= 0.0 {
            return 0;
        }
        (h / self.burn_slope).ceil().min(i64::MAX as f64) as i64
    }
}

/// Privacy facts of one formulated-but-not-yet-audited cycle.
#[derive(Debug, Clone)]
struct CycleFact {
    exposure: f64,
    mask_level: f64,
    eps2: f64,
    trace_exposure: f64,
    /// Set by the first drain worker that evaluates the fact, so the
    /// breach / near-breach event is emitted exactly once per cycle.
    audited: bool,
}

/// Burn-slope EMA smoothing factor.
const BURN_EMA_ALPHA: f64 = 0.3;

/// The continuous privacy auditor (see the module docs for the
/// register → audit → spill → read-out lifecycle).
pub struct PrivacyAuditor {
    registry: Arc<MetricsRegistry>,
    config: AuditConfig,
    log: AuditLog,
    /// session → accumulated accounting.
    tenants: Mutex<HashMap<String, TenantAudit>>,
    /// session → cycle id → registered facts awaiting audit. The outer
    /// key is the session so the drain hot path looks up by `&str`
    /// without allocating a composite key.
    pending: Mutex<HashMap<String, HashMap<usize, CycleFact>>>,
    cycles_audited: AtomicU64,
    cycles_at_last_spill: AtomicU64,
    /// The deterministic fault plane, when attached: journal spills
    /// consult its `StoreWrite` schedule before touching disk.
    fault: Mutex<Option<Arc<FaultPlane>>>,
}

impl PrivacyAuditor {
    /// An auditor publishing into `registry`.
    pub fn new(registry: Arc<MetricsRegistry>, config: AuditConfig) -> Self {
        let log = AuditLog::new(config.journal_capacity);
        PrivacyAuditor {
            registry,
            config,
            log,
            tenants: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            cycles_audited: AtomicU64::new(0),
            cycles_at_last_spill: AtomicU64::new(0),
            fault: Mutex::new(None),
        }
    }

    /// Attaches a deterministic [`FaultPlane`]: journal spills draw
    /// `StoreWrite` faults from it (keyed by the spill path), failing
    /// before any bytes reach disk. Wired up automatically by
    /// [`crate::SessionManager::with_fault_plane`].
    pub fn attach_fault_plane(&self, plane: Arc<FaultPlane>) {
        *recover_lock(&self.fault) = Some(plane);
    }

    /// The auditor's configuration.
    pub fn config(&self) -> &AuditConfig {
        &self.config
    }

    /// The ring journal (for `AuditTail` and the spill codec).
    pub fn log(&self) -> &AuditLog {
        &self.log
    }

    /// The most recent `limit` journal events, oldest first.
    pub fn tail(&self, limit: usize) -> Vec<AuditEvent> {
        self.log.tail(limit)
    }

    /// Cycles whose fleet invariant has been evaluated.
    pub fn cycles_audited(&self) -> u64 {
        self.cycles_audited.load(Ordering::Relaxed)
    }

    /// Registers one formulated cycle's privacy facts and refreshes the
    /// tenant's gauges. Called by the session manager at plan/search
    /// time (while it still holds the ground truth); the facts wait in
    /// the pending set until a drain worker audits them.
    pub fn register_cycle(
        &self,
        session: &str,
        cycle_id: usize,
        metrics: &PrivacyMetrics,
        eps2: f64,
        trace_exposure: f64,
        worst_exposure: f64,
    ) {
        {
            let mut pending = recover_lock(&self.pending);
            pending.entry(session.to_string()).or_default().insert(
                cycle_id,
                CycleFact {
                    exposure: metrics.exposure,
                    mask_level: metrics.mask_level,
                    eps2,
                    trace_exposure,
                    audited: false,
                },
            );
        }
        let mut tenants = recover_lock(&self.tenants);
        let tenant = tenants.entry(session.to_string()).or_insert_with(|| {
            let labels = [("tenant", session)];
            TenantAudit {
                eps2,
                cycles: 0,
                worst_exposure: 0.0,
                trace_exposure: 0.0,
                burn_slope: 0.0,
                breaches: 0,
                gauge_worst: self.registry.gauge(M_TENANT_WORST_EXPOSURE, &labels),
                gauge_trace: self.registry.gauge(M_TENANT_TRACE_EXPOSURE, &labels),
                gauge_headroom: self.registry.gauge(M_TENANT_HEADROOM, &labels),
                gauge_burn: self.registry.gauge(M_TENANT_BURN_CYCLES, &labels),
            }
        });
        tenant.eps2 = eps2;
        tenant.cycles += 1;
        let delta = (trace_exposure - tenant.trace_exposure).max(0.0);
        tenant.burn_slope = if tenant.cycles == 1 {
            delta
        } else {
            BURN_EMA_ALPHA * delta + (1.0 - BURN_EMA_ALPHA) * tenant.burn_slope
        };
        tenant.trace_exposure = trace_exposure;
        tenant.worst_exposure = worst_exposure.max(tenant.worst_exposure);
        tenant.gauge_worst.set(to_micro(tenant.worst_exposure));
        tenant.gauge_trace.set(to_micro(tenant.trace_exposure));
        tenant.gauge_headroom.set(to_micro(tenant.headroom()));
        tenant.gauge_burn.set(tenant.burn_cycles());
    }

    /// Registers **and immediately audits** one cycle — the synchronous
    /// search path resolves its cycle inline, so there is no later drain
    /// to call [`PrivacyAuditor::on_outcome`]; the fact is pruned right
    /// away.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_cycle(
        &self,
        session: &str,
        cycle_id: usize,
        metrics: &PrivacyMetrics,
        eps2: f64,
        trace_exposure: f64,
        worst_exposure: f64,
    ) {
        self.register_cycle(
            session,
            cycle_id,
            metrics,
            eps2,
            trace_exposure,
            worst_exposure,
        );
        self.on_outcome(session, cycle_id);
        let mut pending = recover_lock(&self.pending);
        if let Some(by_cycle) = pending.get_mut(session) {
            by_cycle.remove(&cycle_id);
            if by_cycle.is_empty() {
                pending.remove(session);
            }
        }
    }

    /// Chaos hook: overwrites (or inserts) a registered cycle's facts
    /// with a rigged mask schedule, so the next drain must surface an
    /// ε2 breach. Counterpart of
    /// [`crate::CycleScheduler::with_worker_fault`].
    pub fn rig_cycle(&self, session: &str, cycle_id: usize, exposure: f64, mask_level: f64) {
        let eps2 = recover_lock(&self.tenants)
            .get(session)
            .map(|t| t.eps2)
            .unwrap_or_else(|| toppriv_core::PrivacyRequirement::paper_default().eps2);
        recover_lock(&self.pending)
            .entry(session.to_string())
            .or_default()
            .insert(
                cycle_id,
                CycleFact {
                    exposure,
                    mask_level,
                    eps2,
                    trace_exposure: exposure,
                    audited: false,
                },
            );
    }

    /// Releases a rolled-back cycle's pending fact and rebinds the
    /// tenant's accounting to the post-rollback session metrics. The
    /// fact is removed outright — **not** reset — so its exactly-once
    /// audit flag survives the rollback: a breach already journaled for
    /// the cycle stays journaled exactly once, and a replanned
    /// incarnation registers a *new* fact under a *new* cycle id. The
    /// release itself is journaled as an `Info` `cycle_rolled_back`
    /// event.
    pub fn release_cycle(
        &self,
        session: &str,
        cycle_id: usize,
        trace_exposure: f64,
        worst_exposure: f64,
    ) {
        {
            let mut pending = recover_lock(&self.pending);
            if let Some(by_cycle) = pending.get_mut(session) {
                by_cycle.remove(&cycle_id);
                if by_cycle.is_empty() {
                    pending.remove(session);
                }
            }
        }
        {
            let mut tenants = recover_lock(&self.tenants);
            if let Some(t) = tenants.get_mut(session) {
                t.cycles = t.cycles.saturating_sub(1);
                t.trace_exposure = trace_exposure;
                t.worst_exposure = worst_exposure;
                t.gauge_worst.set(to_micro(t.worst_exposure));
                t.gauge_trace.set(to_micro(t.trace_exposure));
                t.gauge_headroom.set(to_micro(t.headroom()));
                t.gauge_burn.set(t.burn_cycles());
            }
        }
        self.emit(
            AuditSeverity::Info,
            "cycle_rolled_back",
            session,
            cycle_id as u64,
            format!(
                "cycle {cycle_id} rolled back: trace debits reversed bit-exactly \
                 (trace exposure now {trace_exposure:.6})"
            ),
        );
    }

    /// Journals one scheduler-plane event (`shard_quarantined`,
    /// `degraded_drain`, ...) through the same exactly-once-free emit
    /// path as the invariant events. Scheduler-internal.
    pub(crate) fn note(
        &self,
        severity: AuditSeverity,
        code: &str,
        tenant: &str,
        cycle: usize,
        detail: String,
    ) {
        self.emit(severity, code, tenant, cycle as u64, detail);
    }

    /// Audits one drained submission: evaluates the registered cycle
    /// fact's fleet invariant `min(exposure − mask_level, exposure − ε2)
    /// ≤ 0` and, on the **first** evaluation of that cycle, journals a
    /// breach or near-breach event and bumps the per-tenant accounting.
    /// A submission with no registered fact (already pruned, or planned
    /// before the auditor was attached) is a cheap no-op.
    pub fn on_outcome(&self, session: &str, cycle_id: usize) {
        let first = {
            let mut pending = recover_lock(&self.pending);
            let Some(fact) = pending.get_mut(session).and_then(|m| m.get_mut(&cycle_id)) else {
                return;
            };
            // The invariant is evaluated on every drained submission;
            // only the first evaluator proceeds to emit.
            let violation = (fact.exposure - fact.mask_level).min(fact.exposure - fact.eps2);
            debug_assert!(violation.is_finite());
            if fact.audited {
                None
            } else {
                fact.audited = true;
                Some(fact.clone())
            }
        };
        let Some(fact) = first else { return };
        self.cycles_audited.fetch_add(1, Ordering::Relaxed);
        self.registry.counter(M_AUDIT_CYCLES, &[]).inc();
        let violation = (fact.exposure - fact.mask_level).min(fact.exposure - fact.eps2);
        if violation > self.config.tolerance {
            if let Some(t) = recover_lock(&self.tenants).get_mut(session) {
                t.breaches += 1;
            }
            self.emit(
                AuditSeverity::Breach,
                "eps2_breach",
                session,
                cycle_id as u64,
                format!(
                    "fleet invariant violated by {violation:.3e}: exposure {:.4} above both \
                     mask level {:.4} and ε2 {:.4}",
                    fact.exposure, fact.mask_level, fact.eps2
                ),
            );
            return;
        }
        let headroom = fact.eps2 - fact.trace_exposure;
        if headroom < self.config.near_breach_fraction * fact.eps2 {
            self.emit(
                AuditSeverity::Warning,
                "low_headroom",
                session,
                cycle_id as u64,
                format!(
                    "budget headroom {headroom:.3e} below {:.0}% of ε2 {:.4} \
                     (trace exposure {:.4})",
                    self.config.near_breach_fraction * 100.0,
                    fact.eps2,
                    fact.trace_exposure
                ),
            );
        }
    }

    /// Drain epilogue: prunes audited facts (called once per drain by
    /// the scheduler, so the pending set stays bounded by in-flight
    /// cycles) and performs a periodic journal spill when due.
    pub fn finish_drain(&self) {
        {
            let mut pending = recover_lock(&self.pending);
            for by_cycle in pending.values_mut() {
                by_cycle.retain(|_, fact| !fact.audited);
            }
            pending.retain(|_, by_cycle| !by_cycle.is_empty());
        }
        let audited = self.cycles_audited();
        if self.config.spill_every_cycles == 0 || self.config.spill_path.is_none() {
            return;
        }
        let last = self.cycles_at_last_spill.load(Ordering::Relaxed);
        if audited.saturating_sub(last) >= self.config.spill_every_cycles
            && self
                .cycles_at_last_spill
                .compare_exchange(last, audited, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            if let Err(e) = self.spill_now() {
                self.emit(
                    AuditSeverity::Warning,
                    "spill_failed",
                    "",
                    0,
                    format!("journal spill failed: {e}"),
                );
            }
        }
    }

    /// Seals the current journal into a CRC-checked container (kind
    /// [`tsearch_store::kind::AUDIT_JOURNAL`]).
    pub fn seal_journal(&self) -> Vec<u8> {
        crate::persist::seal_audit_journal(&self.log.events())
    }

    /// Spills the sealed journal to the configured path (errors when no
    /// path is configured) and journals the spill itself.
    pub fn spill_now(&self) -> std::io::Result<PathBuf> {
        let path = self.config.spill_path.clone().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, "no spill path configured")
        })?;
        // Injection point *before* any bytes move: a scheduled
        // `StoreWrite` fault fails the spill like a full disk would,
        // leaving the previous container untouched; the caller's
        // `spill_failed` warning path and the next periodic spill take
        // over from there.
        let plane = recover_lock(&self.fault).clone();
        if let Some(plane) = plane {
            let key = FaultPlane::key_of(path.as_os_str().as_encoded_bytes());
            if let Some(err) = plane.io_error(FaultKind::StoreWrite, key) {
                return Err(err);
            }
        }
        let sealed = self.seal_journal();
        std::fs::write(&path, &sealed)?;
        self.registry.counter(M_AUDIT_SPILLS, &[]).inc();
        self.emit(
            AuditSeverity::Info,
            "journal_spill",
            "",
            0,
            format!(
                "{} event(s) sealed to {} ({} bytes)",
                self.log.events().len(),
                path.display(),
                sealed.len()
            ),
        );
        Ok(path)
    }

    /// Drops a departing tenant from the live accounting (its journal
    /// events remain) and zeroes its gauges.
    pub fn forget_session(&self, session: &str) {
        recover_lock(&self.pending).remove(session);
        if let Some(t) = recover_lock(&self.tenants).remove(session) {
            t.gauge_worst.set(0);
            t.gauge_trace.set(0);
            t.gauge_headroom.set(0);
            t.gauge_burn.set(-1);
        }
    }

    /// The aggregated audit-plane verdict.
    pub fn health(&self) -> HealthReport {
        let tenants = recover_lock(&self.tenants);
        let mut worst_headroom = f64::MAX;
        let mut burn_min = i64::MAX;
        for t in tenants.values() {
            worst_headroom = worst_headroom.min(t.headroom());
            let b = t.burn_cycles();
            if b >= 0 {
                burn_min = burn_min.min(b);
            }
        }
        let breaches = self.log.breaches();
        HealthReport {
            healthy: breaches == 0,
            tenants: tenants.len(),
            cycles_audited: self.cycles_audited(),
            breaches,
            warnings: self.log.warnings(),
            worst_headroom: if tenants.is_empty() {
                0.0
            } else {
                worst_headroom
            },
            burn_cycles_min: if burn_min == i64::MAX { -1 } else { burn_min },
            detail: format!(
                "{} tenant(s), {} cycle(s) audited, {} breach(es), {} warning(s)",
                tenants.len(),
                self.cycles_audited(),
                breaches,
                self.log.warnings()
            ),
        }
    }

    fn emit(&self, severity: AuditSeverity, code: &str, tenant: &str, cycle: u64, detail: String) {
        let label = match severity {
            AuditSeverity::Info => "info",
            AuditSeverity::Warning => "warning",
            AuditSeverity::Breach => "breach",
        };
        self.registry
            .counter(M_AUDIT_EVENTS, &[("severity", label)])
            .inc();
        self.log.push(severity, code, tenant, cycle, detail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(exposure: f64, mask_level: f64) -> PrivacyMetrics {
        PrivacyMetrics {
            exposure,
            mask_level,
            num_relevant: 1,
            best_intention_rank: 0,
            cycle_len: 4,
            generation_secs: 0.0,
        }
    }

    fn auditor() -> PrivacyAuditor {
        PrivacyAuditor::new(Arc::new(MetricsRegistry::new()), AuditConfig::default())
    }

    #[test]
    fn masked_cycle_audits_clean() {
        let a = auditor();
        a.register_cycle("t", 0, &metrics(0.02, 0.05), 0.01, 0.001, 0.02);
        a.on_outcome("t", 0);
        a.on_outcome("t", 0);
        assert_eq!(a.cycles_audited(), 1, "first evaluator only");
        assert_eq!(a.log().breaches(), 0);
        assert!(a.health().healthy);
        assert!((a.health().worst_headroom - 0.009).abs() < 1e-12);
    }

    #[test]
    fn breach_emits_exactly_one_event() {
        let a = auditor();
        a.register_cycle("t", 3, &metrics(0.5, 0.0), 0.01, 0.5, 0.5);
        for _ in 0..8 {
            a.on_outcome("t", 3);
        }
        assert_eq!(a.log().breaches(), 1);
        let h = a.health();
        assert!(!h.healthy);
        assert_eq!(h.breaches, 1);
        assert_eq!(
            a.registry.counter_total(M_AUDIT_EVENTS),
            1,
            "counter matches journal"
        );
    }

    #[test]
    fn negligible_exposure_is_not_a_breach() {
        // Satisfied cycle: exposure above the decoys but under ε2.
        let a = auditor();
        a.register_cycle("t", 0, &metrics(0.005, 0.001), 0.01, 0.002, 0.005);
        a.on_outcome("t", 0);
        assert_eq!(a.log().breaches(), 0);
    }

    #[test]
    fn low_headroom_warns_once() {
        let a = auditor();
        // headroom 0.01 − 0.009 = 0.001 < 0.25 × 0.01.
        a.register_cycle("t", 0, &metrics(0.002, 0.05), 0.01, 0.009, 0.002);
        a.on_outcome("t", 0);
        a.on_outcome("t", 0);
        assert_eq!(a.log().warnings(), 1);
        assert_eq!(a.log().breaches(), 0);
        assert!(a.health().healthy, "warnings do not degrade health");
    }

    #[test]
    fn rigged_cycle_breaches_within_one_audit() {
        let a = auditor();
        a.register_cycle("t", 0, &metrics(0.002, 0.05), 0.01, 0.001, 0.002);
        a.rig_cycle("t", 0, 0.5, 0.0);
        a.on_outcome("t", 0);
        assert_eq!(a.log().breaches(), 1);
    }

    #[test]
    fn gauges_publish_micro_units() {
        let a = auditor();
        a.register_cycle("alice", 0, &metrics(0.004, 0.05), 0.01, 0.0025, 0.004);
        let g = a.registry.gauge(M_TENANT_HEADROOM, &[("tenant", "alice")]);
        assert_eq!(g.get(), to_micro(0.01 - 0.0025));
        assert_eq!(
            a.registry
                .gauge(M_TENANT_WORST_EXPOSURE, &[("tenant", "alice")])
                .get(),
            to_micro(0.004)
        );
        a.forget_session("alice");
        assert_eq!(g.get(), 0, "departing tenants zero their gauges");
        assert_eq!(a.health().tenants, 0);
    }

    #[test]
    fn burn_rate_estimates_cycles_to_exhaustion() {
        let a = auditor();
        // Trace exposure climbs 0.001 per cycle toward ε2 = 0.01.
        a.register_cycle("t", 0, &metrics(0.002, 0.05), 0.01, 0.001, 0.002);
        a.register_cycle("t", 1, &metrics(0.002, 0.05), 0.01, 0.002, 0.002);
        a.register_cycle("t", 2, &metrics(0.002, 0.05), 0.01, 0.003, 0.002);
        let h = a.health();
        assert!(
            h.burn_cycles_min > 0,
            "a climbing trace exposure must yield a finite burn estimate, got {}",
            h.burn_cycles_min
        );
        // Flat trace exposure decays the slope toward no-burn.
        let b = auditor();
        b.register_cycle("t", 0, &metrics(0.002, 0.05), 0.01, 0.001, 0.002);
        b.register_cycle("t", 1, &metrics(0.002, 0.05), 0.01, 0.001, 0.002);
        let hb = b.health();
        assert!(hb.burn_cycles_min == -1 || hb.burn_cycles_min > h.burn_cycles_min);
    }

    #[test]
    fn finish_drain_prunes_audited_facts() {
        let a = auditor();
        a.register_cycle("t", 0, &metrics(0.002, 0.05), 0.01, 0.001, 0.002);
        a.on_outcome("t", 0);
        a.finish_drain();
        a.on_outcome("t", 0); // pruned: no-op, not a re-audit
        assert_eq!(a.cycles_audited(), 1);
        assert!(recover_lock(&a.pending).is_empty());
    }
}
