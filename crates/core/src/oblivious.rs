//! Oblivious document retrieval via commutative encryption.
//!
//! Section III-B excludes the document-download threat because "the
//! commutative encryption protocol in \[15\] prevents the search engine
//! from identifying which documents are downloaded". This module builds
//! that excluded piece so the whole search process of Figure 1 (Steps 6–7
//! included) can run end-to-end.
//!
//! The scheme is SRA/Pohlig–Hellman-style exponentiation in `Z_p^*`:
//! `E_k(x) = x^k mod p` with `gcd(k, p−1) = 1`, which commutes:
//! `E_a(E_b(x)) = E_b(E_a(x))`. The fetch protocol:
//!
//! 1. the server publishes, per document, a *sealed content key*
//!    `E_s(key_j)`;
//! 2. the client picks its document `i`, adds its own layer and sends
//!    back the double-sealed `E_c(E_s(key_i))` — a uniformly blinded group
//!    element that reveals nothing about `i`;
//! 3. the server strips its layer (`^ s⁻¹ mod p−1`), returning
//!    `E_c(key_i)`;
//! 4. the client strips its layer and decrypts the (separately fetched,
//!    key-stream-encrypted) document payload.
//!
//! This is a faithful simulation of the protocol *mechanics* with 63-bit
//! parameters — NOT production cryptography (real deployments need
//! full-size groups and padding/KDF hygiene).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A safe prime below 2^62 (p = 2q + 1 with q prime), small enough for
/// u128-intermediate modular arithmetic.
pub const MODULUS: u64 = 4611686018427377339; // p
const ORDER: u64 = MODULUS - 1; // p − 1 = 2q

/// Modular exponentiation `base^exp mod m` with u128 intermediates.
pub fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut result = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            result = ((result as u128 * base as u128) % m as u128) as u64;
        }
        base = ((base as u128 * base as u128) % m as u128) as u64;
        exp >>= 1;
    }
    result
}

/// Extended Euclid: returns `(g, x)` with `a·x ≡ g (mod m)`.
fn ext_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = ext_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// Modular inverse of `a` modulo `m`, if `gcd(a, m) = 1`.
pub fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    let (g, x, _) = ext_gcd(a as i128, m as i128);
    if g != 1 {
        return None;
    }
    Some(((x % m as i128 + m as i128) % m as i128) as u64)
}

/// A commutative encryption key: an exponent coprime to `p − 1`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CommutativeKey {
    encrypt_exp: u64,
    decrypt_exp: u64,
}

impl CommutativeKey {
    /// Samples a fresh key.
    pub fn generate(rng: &mut StdRng) -> Self {
        loop {
            let e = rng.gen_range(3..ORDER) | 1; // odd, so coprime to the factor 2
            if let Some(d) = mod_inverse(e, ORDER) {
                return CommutativeKey {
                    encrypt_exp: e,
                    decrypt_exp: d,
                };
            }
        }
    }

    /// Encrypts a group element (`1 < x < p`).
    pub fn encrypt(&self, x: u64) -> u64 {
        mod_pow(x, self.encrypt_exp, MODULUS)
    }

    /// Decrypts a group element.
    pub fn decrypt(&self, x: u64) -> u64 {
        mod_pow(x, self.decrypt_exp, MODULUS)
    }
}

/// Key-stream "encryption" of a payload under a 64-bit content key
/// (splitmix64 stream XOR — placeholder symmetric layer).
pub fn stream_cipher(key: u64, data: &[u8]) -> Vec<u8> {
    let mut state = key;
    let mut out = Vec::with_capacity(data.len());
    let mut ks = [0u8; 8];
    for (i, &b) in data.iter().enumerate() {
        if i % 8 == 0 {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            ks = z.to_le_bytes();
        }
        out.push(b ^ ks[i % 8]);
    }
    out
}

/// The server side: holds per-document content keys and sealed versions.
pub struct ObliviousServer {
    key: CommutativeKey,
    content_keys: Vec<u64>,
    payloads: Vec<Vec<u8>>,
}

/// The catalogue the server publishes: sealed content keys plus encrypted
/// payloads, in document order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catalogue {
    /// `E_s(key_j)` per document.
    pub sealed_keys: Vec<u64>,
    /// Payload of each document under its content-key stream.
    pub encrypted_payloads: Vec<Vec<u8>>,
}

impl ObliviousServer {
    /// Sets up the server over document payloads.
    pub fn new(documents: &[&str], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = CommutativeKey::generate(&mut rng);
        let content_keys: Vec<u64> = documents
            .iter()
            .map(|_| rng.gen_range(2..MODULUS - 1))
            .collect();
        let payloads = documents
            .iter()
            .zip(&content_keys)
            .map(|(doc, &k)| stream_cipher(k, doc.as_bytes()))
            .collect();
        ObliviousServer {
            key,
            content_keys,
            payloads,
        }
    }

    /// Publishes the catalogue (Step 1).
    pub fn catalogue(&self) -> Catalogue {
        Catalogue {
            sealed_keys: self
                .content_keys
                .iter()
                .map(|&k| self.key.encrypt(k))
                .collect(),
            encrypted_payloads: self.payloads.clone(),
        }
    }

    /// Step 3: strips the server layer from a double-sealed key. The
    /// input is a blinded group element — the server cannot tell which
    /// document it belongs to.
    pub fn unseal(&self, double_sealed: u64) -> u64 {
        self.key.decrypt(double_sealed)
    }
}

/// The client side of the protocol.
pub struct ObliviousClient {
    key: CommutativeKey,
}

impl ObliviousClient {
    /// Creates a client with a fresh key.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        ObliviousClient {
            key: CommutativeKey::generate(&mut rng),
        }
    }

    /// Step 2: picks document `i` from the catalogue and produces the
    /// double-sealed request.
    pub fn request(&self, catalogue: &Catalogue, i: usize) -> u64 {
        self.key.encrypt(catalogue.sealed_keys[i])
    }

    /// Step 4: recovers the document text from the server's response.
    pub fn recover(&self, catalogue: &Catalogue, i: usize, response: u64) -> Option<String> {
        let content_key = self.key.decrypt(response);
        let plain = stream_cipher(content_key, &catalogue.encrypted_payloads[i]);
        String::from_utf8(plain).ok()
    }
}

/// Runs the full protocol for document `i`; returns the recovered text.
pub fn oblivious_fetch(
    server: &ObliviousServer,
    client: &ObliviousClient,
    i: usize,
) -> Option<String> {
    let catalogue = server.catalogue();
    let request = client.request(&catalogue, i);
    let response = server.unseal(request);
    client.recover(&catalogue, i, response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modular_arithmetic() {
        assert_eq!(mod_pow(2, 10, 1_000_003), 1024);
        assert_eq!(mod_pow(7, 0, 13), 1);
        let inv = mod_inverse(3, 10).unwrap();
        assert_eq!((3 * inv) % 10, 1);
        assert_eq!(mod_inverse(2, 10), None); // gcd 2
    }

    #[test]
    fn keys_roundtrip_and_commute() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = CommutativeKey::generate(&mut rng);
        let b = CommutativeKey::generate(&mut rng);
        for x in [2u64, 12345, MODULUS - 2] {
            assert_eq!(a.decrypt(a.encrypt(x)), x, "roundtrip");
            // Commutativity: E_a(E_b(x)) == E_b(E_a(x)).
            assert_eq!(a.encrypt(b.encrypt(x)), b.encrypt(a.encrypt(x)));
            // Strip in either order.
            let double = a.encrypt(b.encrypt(x));
            assert_eq!(b.decrypt(a.decrypt(double)), x);
            assert_eq!(a.decrypt(b.decrypt(double)), x);
        }
    }

    #[test]
    fn stream_cipher_involutive() {
        let data = b"the AH-64 apache helicopter acquisition report";
        let enc = stream_cipher(0xDEADBEEF, data);
        assert_ne!(&enc[..], &data[..]);
        assert_eq!(stream_cipher(0xDEADBEEF, &enc), data);
    }

    #[test]
    fn protocol_fetches_the_right_document() {
        let docs = vec!["alpha document", "bravo document", "charlie document"];
        let server = ObliviousServer::new(&docs, 7);
        let client = ObliviousClient::new(9);
        for (i, &expected) in docs.iter().enumerate() {
            let got = oblivious_fetch(&server, &client, i).unwrap();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn request_is_blinded() {
        // The double-sealed request must differ from every published
        // sealed key and from the raw content keys — the server sees only
        // a blinded element.
        let docs = vec!["secret one", "secret two"];
        let server = ObliviousServer::new(&docs, 3);
        let client = ObliviousClient::new(4);
        let catalogue = server.catalogue();
        for i in 0..docs.len() {
            let req = client.request(&catalogue, i);
            assert!(!catalogue.sealed_keys.contains(&req));
        }
        // Two different clients produce different blindings of the same
        // item.
        let other = ObliviousClient::new(5);
        assert_ne!(client.request(&catalogue, 0), other.request(&catalogue, 0));
    }

    #[test]
    fn wrong_index_recovery_fails_or_garbles() {
        let docs = vec!["first text", "second text"];
        let server = ObliviousServer::new(&docs, 11);
        let client = ObliviousClient::new(12);
        let catalogue = server.catalogue();
        let request = client.request(&catalogue, 0);
        let response = server.unseal(request);
        // Decrypting payload 1 with document 0's key yields garbage (or
        // invalid UTF-8), never the true text of document 1.
        if let Some(text) = client.recover(&catalogue, 1, response) {
            assert_ne!(text, "second text")
        }
    }
}
