//! Tables II–IV: qualitative topic inspection.
//!
//! - Table II: top-20 words of several coherent topics in the default
//!   model.
//! - Table III: the "same" topic tracked across all trained models via
//!   cosine matching of topic-word distributions.
//! - Table IV: a deliberately tiny model (K=5 counterpart of the paper's
//!   LDA005) whose topics are indistinct, quantified by mean pairwise
//!   topic similarity.

use crate::context::ExperimentContext;
use crate::scale::Scale;
use crate::table::ResultTable;
use tsearch_lda::{
    best_matching_topic, mean_pairwise_topic_similarity, topic_report, LdaConfig, LdaTrainer,
};

/// Words shown per topic (the paper prints 20).
pub const TOP_WORDS: usize = 20;

/// Number of sample topics in the Table II counterpart.
pub const SAMPLE_TOPICS: usize = 5;

/// Runs all three table reproductions.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let mut out = Vec::new();
    let model = ctx.default_model();
    let vocab = &ctx.corpus.vocab;
    let label = Scale::model_label(ctx.scale.default_k);

    // --- Table II: sample topics of the default model -------------------
    // Pick the topics with the highest corpus prior (the most substantial
    // ones), which tend to be the coherent, specific topics.
    let mut by_prior: Vec<usize> = (0..model.num_topics()).collect();
    by_prior.sort_by(|&a, &b| model.prior()[b].partial_cmp(&model.prior()[a]).unwrap());
    let chosen: Vec<usize> = by_prior.into_iter().take(SAMPLE_TOPICS).collect();
    let mut tab2 = ResultTable::new(
        "tab2_sample_topics",
        format!("Sample topics in the {label} model (top-{TOP_WORDS} words)"),
        chosen.iter().map(|t| format!("topic_{t}")).collect(),
    );
    let reports: Vec<_> = chosen
        .iter()
        .map(|&t| topic_report(model, vocab, t, TOP_WORDS))
        .collect();
    for i in 0..TOP_WORDS {
        tab2.push_row(
            reports
                .iter()
                .map(|r| {
                    r.top_words
                        .get(i)
                        .map(|(w, _)| w.clone())
                        .unwrap_or_default()
                })
                .collect(),
        );
    }
    out.push(tab2);

    // --- Table III: one topic across all models -------------------------
    // Anchor: the default model's highest-prior topic; match it into every
    // other model by cosine similarity.
    let anchor = chosen[0];
    let mut header = Vec::new();
    let mut columns: Vec<Vec<String>> = Vec::new();
    for (k, other) in &ctx.models {
        let (matched, sim) = if std::ptr::eq(other, model) {
            (anchor, 1.0)
        } else {
            best_matching_topic(model, anchor, other)
        };
        header.push(format!(
            "{}(t{} sim {:.2})",
            Scale::model_label(*k),
            matched,
            sim
        ));
        columns.push(
            topic_report(other, vocab, matched, TOP_WORDS)
                .top_words
                .into_iter()
                .map(|(w, _)| w)
                .collect(),
        );
    }
    let mut tab3 = ResultTable::new(
        "tab3_common_topic",
        "A common topic tracked across the LDA models (cosine matching)",
        header,
    );
    for i in 0..TOP_WORDS {
        tab3.push_row(
            columns
                .iter()
                .map(|c| c.get(i).cloned().unwrap_or_default())
                .collect(),
        );
    }
    out.push(tab3);

    // --- Table IV: the indistinct tiny model -----------------------------
    let docs = ctx.corpus.token_docs();
    let tiny = LdaTrainer::train(
        &docs,
        ctx.corpus.vocab.len(),
        LdaConfig {
            iterations: ctx.scale.lda_iterations,
            ..LdaConfig::with_topics(5)
        },
    );
    let mut tab4 = ResultTable::new(
        "tab4_lda005_topics",
        "Topics in the LDA005 model (too few topics -> indistinct)",
        (0..5).map(|t| format!("topic_{t}")).collect(),
    );
    let tiny_reports: Vec<_> = (0..5)
        .map(|t| topic_report(&tiny, vocab, t, TOP_WORDS))
        .collect();
    for i in 0..TOP_WORDS {
        tab4.push_row(
            tiny_reports
                .iter()
                .map(|r| {
                    r.top_words
                        .get(i)
                        .map(|(w, _)| w.clone())
                        .unwrap_or_default()
                })
                .collect(),
        );
    }
    out.push(tab4);

    // Quantified indistinctness comparison.
    let mut sim_table = ResultTable::new(
        "tab4x_topic_distinctness",
        "Mean pairwise topic similarity (higher = more indistinct)",
        vec!["model".into(), "mean_pairwise_cosine".into()],
    );
    sim_table.push_row(vec![
        "LDA005".into(),
        format!("{:.4}", mean_pairwise_topic_similarity(&tiny)),
    ]);
    for (k, m) in &ctx.models {
        sim_table.push_row(vec![
            Scale::model_label(*k),
            format!("{:.4}", mean_pairwise_topic_similarity(m)),
        ]);
    }
    out.push(sim_table);
    out
}
