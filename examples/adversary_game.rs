//! The adversary's side: replaying the four Section IV-D attacks against
//! protected query cycles, plus a positive control against TrackMeNot-style
//! random ghosts (which the coherence attack defeats easily).
//!
//! Run with:
//! ```text
//! cargo run --release --example adversary_game
//! ```

use toppriv::adversary::{
    run_coherence_attack, run_exposure_attack, run_probing_attack, run_term_elimination_attack,
};
use toppriv::baselines::{TrackMeNot, TrackMeNotConfig};
use toppriv::core::semantic_coherence;
use toppriv::corpus::{generate_workload, WorkloadConfig};
use toppriv::{BeliefEngine, CorpusConfig, GhostConfig, GhostGenerator, PrivacyRequirement};

fn main() {
    let (corpus, _engine, model) = toppriv::build_demo_stack(
        CorpusConfig {
            num_docs: 800,
            num_topics: 12,
            terms_per_topic: 80,
            ..CorpusConfig::default()
        },
        24,
        40,
    );
    let queries = generate_workload(
        &corpus,
        &WorkloadConfig {
            num_queries: 20,
            ..WorkloadConfig::default()
        },
    );
    let requirement = PrivacyRequirement::paper_default();
    let generator = GhostGenerator::new(
        BeliefEngine::new(model.clone()),
        requirement,
        GhostConfig::default(),
    );
    let cycles: Vec<_> = queries
        .iter()
        .map(|q| generator.generate(&q.tokens))
        .filter(|c| c.cycle_len() > 1)
        .collect();
    println!(
        "protected {} contested cycles; running attacks...\n",
        cycles.len()
    );

    for report in [
        run_coherence_attack(&model, &cycles),
        run_exposure_attack(&model, &cycles, 3),
        run_term_elimination_attack(&model, &cycles, 2, 20, requirement.eps1),
        run_probing_attack(&model, &cycles, requirement, 2),
    ] {
        println!(
            "  {:<42} success {:.2}  chance {:.2}  advantage {:+.2}  ({} trials)",
            report.attack,
            report.success_rate,
            report.chance_rate,
            report.advantage(),
            report.trials
        );
    }

    // Positive control: the same coherence attack demolishes random ghosts.
    println!("\npositive control: coherence attack vs TrackMeNot random ghosts");
    let tmn = TrackMeNot::new(corpus.vocab.len(), TrackMeNotConfig::default());
    let attack = toppriv::adversary::CoherenceAttack::new(model.clone());
    let mut hits = 0usize;
    let mut ghost_coherence = 0.0;
    let mut genuine_coherence = 0.0;
    for q in &queries {
        let (cycle, genuine_index) = tmn.cycle(&q.tokens);
        let refs: Vec<&[u32]> = cycle.iter().map(|c| c.as_slice()).collect();
        if attack.guess_genuine(&refs) == genuine_index {
            hits += 1;
        }
        genuine_coherence += semantic_coherence(&model, &cycle[genuine_index]);
        for (i, g) in cycle.iter().enumerate() {
            if i != genuine_index {
                ghost_coherence += semantic_coherence(&model, g) / (cycle.len() - 1) as f64;
            }
        }
    }
    println!(
        "  identified the genuine query {}/{} times (chance {:.2});\n  \
         mean coherence genuine {:.5} vs random ghosts {:.5}",
        hits,
        queries.len(),
        1.0 / 5.0,
        genuine_coherence / queries.len() as f64,
        ghost_coherence / queries.len() as f64,
    );
}
