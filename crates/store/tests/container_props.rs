//! Property tests for the container codec: every byte payload round-trips
//! exactly, and any single-byte corruption anywhere in the blob is
//! rejected (never silently decoded to different bytes).

use proptest::prelude::*;
use tsearch_store::{seal, unseal};

proptest! {
    #[test]
    fn roundtrip_any_payload(kind_tag: u32, payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let blob = seal(kind_tag, &payload);
        let (k, p) = unseal(&blob).expect("fresh blob decodes");
        prop_assert_eq!(k, kind_tag);
        prop_assert_eq!(p, &payload[..]);
    }

    #[test]
    fn bit_flip_never_yields_wrong_payload(
        kind_tag: u32,
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        pos in 0usize..10_000,
        flip in 1u8..=255,
    ) {
        let mut blob = seal(kind_tag, &payload);
        let pos = pos % blob.len();
        blob[pos] ^= flip;
        match unseal(&blob) {
            // Either the corruption is detected...
            Err(_) => {}
            // ...or it landed in the (unchecksummed) kind tag, in which
            // case the payload still decodes byte-identically — a kind
            // flip is caught by `unseal_kind` at the call site instead.
            Ok((_, p)) => prop_assert_eq!(p, &payload[..]),
        }
    }

    #[test]
    fn truncation_always_detected(
        kind_tag: u32,
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        cut in 1usize..100,
    ) {
        let blob = seal(kind_tag, &payload);
        let cut = cut.min(blob.len());
        let shorter = &blob[..blob.len() - cut];
        prop_assert!(unseal(shorter).is_err());
    }
}
