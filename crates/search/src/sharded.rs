//! The term-sharded search engine.
//!
//! [`ShardedEngine`] is the scale-out counterpart of
//! [`SearchEngine`](crate::SearchEngine):
//! postings are partitioned across N [`tsearch_index::ShardedIndex`]
//! shards by term hash, a query is fanned out to exactly the shards that
//! own its terms, and the per-shard partial scores are merged into one
//! ranked list that is **identical** to what the single-shard engine
//! returns (the shard-equivalence property test in
//! `tests/sharded_props.rs` holds this for shard counts 1–8).
//!
//! Exactness falls out of two structural facts:
//!
//! - every term's complete postings list lives on exactly one shard, so
//!   per-term statistics (`df`, `idf`, `max_tf`) are global;
//! - every shard carries the global document-length table and the engine
//!   keeps one global cosine-norm table, so document-side weights are
//!   global too.
//!
//! A document's score is a sum of independent per-term contributions;
//! sharding merely partitions that sum by term, and the gather step adds
//! the partials back together.
//!
//! The adversary view is sharded as well: each shard keeps its **own**
//! bounded, independently locked query log and records only the
//! sub-query routed to it, with ordinals drawn from one atomic counter.
//! There is no engine-wide log mutex — the contention point the
//! single-engine hot path serializes on — and
//! `toppriv_adversary::merge_shard_logs` can reconstruct the global
//! trace for after-the-fact analysis.

use crate::log::{LoggedQuery, QueryLog};
use crate::query::Query;
use crate::score::ScoringModel;
use crate::topk::{SearchHit, TopK};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use toppriv_obs::HistogramHandle;
use tsearch_index::{DocumentStore, ShardRouter, ShardedIndex};
use tsearch_text::{Analyzer, TermId, Vocabulary};

/// Metric name: per-shard scatter latency — one shard's accumulation
/// for one query (µs), labeled `shard=`.
pub const M_SHARD_EVAL_US: &str = "engine_shard_eval_us";
/// Metric name: gather latency — merging partials and ranking top-k
/// (µs). Also recorded by the single engine's rank phase, so the stage
/// exists on unsharded tiers too.
pub const M_GATHER_US: &str = "engine_gather_us";

/// A search engine whose postings are term-sharded across N independent
/// slices, each with its own query log.
pub struct ShardedEngine {
    index: ShardedIndex,
    store: DocumentStore,
    analyzer: Analyzer,
    vocab: Vocabulary,
    model: ScoringModel,
    /// Global per-document cosine norms (over the full term space).
    doc_norms: Vec<f64>,
    /// Global arrival counter feeding every shard log.
    next_ordinal: AtomicU64,
    /// One independently locked log per shard.
    logs: Vec<Mutex<QueryLog>>,
    /// Per-shard scatter-latency histograms (global registry handles,
    /// prefetched so the query path never touches the registry lock).
    shard_eval_us: Vec<HistogramHandle>,
    /// Gather-latency histogram.
    gather_us: HistogramHandle,
}

impl ShardedEngine {
    /// Assembles a sharded engine over a prebuilt sharded index and store.
    pub fn new(
        index: ShardedIndex,
        store: DocumentStore,
        analyzer: Analyzer,
        vocab: Vocabulary,
        model: ScoringModel,
    ) -> Self {
        let doc_norms = compute_global_doc_norms(&index, model);
        let logs = (0..index.num_shards())
            .map(|_| Mutex::new(QueryLog::new()))
            .collect();
        let registry = toppriv_obs::global();
        let shard_eval_us = (0..index.num_shards())
            .map(|s| registry.histogram(M_SHARD_EVAL_US, &[("shard", &s.to_string())]))
            .collect();
        let gather_us = registry.histogram(M_GATHER_US, &[]);
        ShardedEngine {
            index,
            store,
            analyzer,
            vocab,
            model,
            doc_norms,
            next_ordinal: AtomicU64::new(0),
            logs,
            shard_eval_us,
            gather_us,
        }
    }

    /// Builds a sharded engine directly from token documents and texts.
    pub fn build(
        docs: &[&[TermId]],
        texts: &[String],
        analyzer: Analyzer,
        vocab: Vocabulary,
        model: ScoringModel,
        num_shards: usize,
    ) -> Self {
        assert_eq!(docs.len(), texts.len());
        let index = ShardedIndex::build(docs, vocab.len(), num_shards);
        let store = DocumentStore::from_texts(texts.iter().cloned());
        Self::new(index, store, analyzer, vocab, model)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.index.num_shards()
    }

    /// The term router (shared with schedulers that plan shard sets).
    pub fn router(&self) -> &ShardRouter {
        self.index.router()
    }

    /// The sorted shard set a token query touches.
    pub fn shard_set(&self, tokens: &[TermId]) -> Vec<usize> {
        self.index.shard_set(tokens.iter().copied())
    }

    /// Executes a text query, returning the best `k` documents. Each
    /// touched shard records the sub-query routed to it.
    pub fn search(&self, text: &str, k: usize) -> Vec<SearchHit> {
        let query = Query::parse(text, &self.analyzer, &self.vocab);
        self.log_query(&query);
        self.evaluate(&query, k)
    }

    /// Executes a pre-analyzed token query (each shard logs its slice as
    /// the canonical text of the terms it owns).
    pub fn search_tokens(&self, tokens: &[TermId], k: usize) -> Vec<SearchHit> {
        let query = Query::from_tokens(tokens);
        self.log_query(&query);
        self.evaluate(&query, k)
    }

    /// Scores a query without logging it, returning exactly the ranked
    /// list [`SearchEngine::evaluate`](crate::SearchEngine::evaluate)
    /// would produce over the unsharded index.
    pub fn evaluate(&self, query: &Query, k: usize) -> Vec<SearchHit> {
        let shards = self.index.shard_set(query.terms().map(|(t, _)| t));
        let mut accumulators: HashMap<u32, f64> = HashMap::new();
        for &s in &shards {
            let t0 = Instant::now();
            self.accumulate_shard(s, query, &mut accumulators);
            self.shard_eval_us[s].record(t0.elapsed().as_micros() as u64);
        }
        let t0 = Instant::now();
        let hits = self.rank(accumulators, k);
        self.gather_us.record(t0.elapsed().as_micros() as u64);
        hits
    }

    /// Scatter step: the partial (unnormalized) score contributions of
    /// shard `shard_id`'s terms, as its worker pool would compute them.
    pub fn shard_partials(&self, shard_id: usize, query: &Query) -> HashMap<u32, f64> {
        let t0 = Instant::now();
        let mut partials = HashMap::new();
        self.accumulate_shard(shard_id, query, &mut partials);
        self.shard_eval_us[shard_id].record(t0.elapsed().as_micros() as u64);
        partials
    }

    /// Gather step: merges per-shard partials (summing per document) and
    /// ranks the best `k`. `partials` may come in any order — addition of
    /// disjoint-term contributions is the merge.
    pub fn merge_partials(
        &self,
        partials: impl IntoIterator<Item = HashMap<u32, f64>>,
        k: usize,
    ) -> Vec<SearchHit> {
        let t0 = Instant::now();
        let mut accumulators: HashMap<u32, f64> = HashMap::new();
        for partial in partials {
            for (doc_id, score) in partial {
                *accumulators.entry(doc_id).or_insert(0.0) += score;
            }
        }
        let hits = self.rank(accumulators, k);
        self.gather_us.record(t0.elapsed().as_micros() as u64);
        hits
    }

    /// Accumulates shard `shard_id`'s contribution for `query` into
    /// `accumulators`, iterating the shard's terms in ascending term
    /// order through the same [`crate::engine::accumulate_term`] inner
    /// loop the single engine uses (one copy of the scoring code = the
    /// shard-equivalence contract cannot silently drift).
    fn accumulate_shard(
        &self,
        shard_id: usize,
        query: &Query,
        accumulators: &mut HashMap<u32, f64>,
    ) {
        let shard = self.index.shard(shard_id);
        let avg_len = self.index.avg_doc_len();
        for (term, qtf) in query.terms() {
            if self.index.router().shard_of(term) != shard_id {
                continue;
            }
            crate::engine::accumulate_term(shard, self.model, avg_len, term, qtf, accumulators);
        }
    }

    /// Normalizes and top-k ranks a merged accumulator map.
    fn rank(&self, accumulators: HashMap<u32, f64>, k: usize) -> Vec<SearchHit> {
        let mut topk = TopK::new(k);
        for (doc_id, mut score) in accumulators {
            if self.model.needs_cosine_norm() {
                let norm = self.doc_norms[doc_id as usize];
                if norm > 0.0 {
                    score /= norm;
                }
            }
            topk.push(SearchHit { doc_id, score });
        }
        topk.into_sorted()
    }

    /// Records one submission: a single global ordinal is drawn, then
    /// every touched shard logs the sub-query it owns under that ordinal.
    fn log_query(&self, query: &Query) {
        let ordinal = self.next_ordinal.fetch_add(1, Ordering::Relaxed);
        let shards = self.index.shard_set(query.terms().map(|(t, _)| t));
        for s in shards {
            let tokens: Vec<TermId> = query
                .terms()
                .filter(|&(t, _)| self.index.router().shard_of(t) == s)
                .flat_map(|(t, tf)| std::iter::repeat_n(t, tf as usize))
                .collect();
            let text = tokens
                .iter()
                .map(|&t| self.vocab.term(t))
                .collect::<Vec<_>>()
                .join(" ");
            self.logs[s]
                .lock()
                .expect("shard log poisoned")
                .push_at(ordinal, text, tokens);
        }
    }

    /// Snapshot of one shard's query log.
    pub fn query_log(&self, shard_id: usize) -> Vec<LoggedQuery> {
        self.logs[shard_id]
            .lock()
            .expect("shard log poisoned")
            .snapshot()
    }

    /// Snapshots of every shard's log, in shard-id order — the input to
    /// `toppriv_adversary::merge_shard_logs`.
    pub fn shard_logs(&self) -> Vec<Vec<LoggedQuery>> {
        (0..self.num_shards()).map(|s| self.query_log(s)).collect()
    }

    /// Clears every shard log and restarts the global ordinal counter.
    pub fn clear_query_logs(&self) {
        for log in &self.logs {
            log.lock().expect("shard log poisoned").clear();
        }
        self.next_ordinal.store(0, Ordering::Relaxed);
    }

    /// Bounds **each** shard log to `capacity` entries (total retention
    /// is `capacity × num_shards` across the engine).
    pub fn set_query_log_capacity(&self, capacity: usize) {
        for log in &self.logs {
            log.lock()
                .expect("shard log poisoned")
                .set_capacity(capacity);
        }
    }

    /// Fetches a result document's text.
    pub fn fetch_document(&self, doc_id: u32) -> Option<&str> {
        self.store.get(doc_id)
    }

    /// The sharded index (read-only).
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    /// The engine's vocabulary (read-only).
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The engine's analyzer.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// The scoring model in use.
    pub fn model(&self) -> ScoringModel {
        self.model
    }
}

/// Global cosine norms over a sharded index: shards partition the term
/// space, so summing every shard's squared contributions reproduces the
/// single-index norm exactly.
fn compute_global_doc_norms(index: &ShardedIndex, model: ScoringModel) -> Vec<f64> {
    let mut sums = vec![0.0f64; index.num_docs()];
    if !model.needs_cosine_norm() {
        return sums;
    }
    let avg_len = index.avg_doc_len();
    // Iterate in ascending term order (not shard-by-shard) so the
    // floating-point accumulation order matches the single engine's and
    // the norms are bit-identical.
    for term in 0..index.num_terms() as TermId {
        let shard = index.owner(term);
        for posting in shard.postings(term).iter() {
            let w = model.doc_weight(posting.tf, shard.doc_len(posting.doc_id), avg_len);
            sums[posting.doc_id as usize] += w * w;
        }
    }
    sums.iter().map(|s| s.sqrt()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SearchEngine;

    fn corpus() -> (Vec<Vec<TermId>>, Vec<String>, Vocabulary) {
        let analyzer = Analyzer::new();
        let mut vocab = Vocabulary::new();
        let texts = vec![
            "apache helicopter weapons army".to_string(),
            "apache web server software".to_string(),
            "stock market investors shares shares shares".to_string(),
            "helicopter aviation airport".to_string(),
            "army weapons market software".to_string(),
        ];
        let docs: Vec<Vec<TermId>> = texts
            .iter()
            .map(|t| analyzer.analyze_into(t, &mut vocab))
            .collect();
        for d in &docs {
            vocab.observe_document(d);
        }
        (docs, texts, vocab)
    }

    fn engines(model: ScoringModel, shards: usize) -> (SearchEngine, ShardedEngine) {
        let (docs, texts, vocab) = corpus();
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        let single = SearchEngine::build(&refs, &texts, Analyzer::new(), vocab.clone(), model);
        let sharded = ShardedEngine::build(&refs, &texts, Analyzer::new(), vocab, model, shards);
        (single, sharded)
    }

    #[test]
    fn matches_single_engine_exactly() {
        for model in [ScoringModel::TfIdfCosine, ScoringModel::bm25_default()] {
            for shards in [1usize, 2, 3, 4, 8] {
                let (single, sharded) = engines(model, shards);
                for text in [
                    "apache",
                    "apache helicopter",
                    "stock market shares",
                    "army software market helicopter",
                    "nonexistent gibberish",
                ] {
                    let a = single.search(text, 10);
                    let b = sharded.search(text, 10);
                    assert_eq!(a.len(), b.len(), "{model:?} {shards} shards: {text}");
                    for (x, y) in a.iter().zip(&b) {
                        assert_eq!(x.doc_id, y.doc_id, "{model:?} {shards} shards: {text}");
                        assert!(
                            (x.score - y.score).abs() < 1e-12,
                            "{model:?} {shards} shards: {text}: {} vs {}",
                            x.score,
                            y.score
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scatter_gather_equals_direct_evaluation() {
        let (_, sharded) = engines(ScoringModel::TfIdfCosine, 4);
        let query = Query::parse("apache market shares", sharded.analyzer(), sharded.vocab());
        let direct = sharded.evaluate(&query, 10);
        let partials: Vec<_> = sharded
            .shard_set(&query.term_ids())
            .into_iter()
            .map(|s| sharded.shard_partials(s, &query))
            .collect();
        let merged = sharded.merge_partials(partials, 10);
        assert_eq!(direct.len(), merged.len());
        for (a, b) in direct.iter().zip(&merged) {
            assert_eq!(a.doc_id, b.doc_id);
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }

    #[test]
    fn shard_logs_partition_the_query() {
        let (_, sharded) = engines(ScoringModel::TfIdfCosine, 4);
        sharded.search("apache market helicopter", 5);
        sharded.search("shares investors", 5);
        let logs = sharded.shard_logs();
        // Union of all shard entries per ordinal reassembles the queries.
        let mut by_ordinal: std::collections::BTreeMap<u64, Vec<TermId>> = Default::default();
        for entries in &logs {
            for e in entries {
                by_ordinal.entry(e.ordinal).or_default().extend(&e.tokens);
            }
        }
        assert_eq!(by_ordinal.len(), 2, "two submissions, two ordinals");
        let first = &by_ordinal[&0];
        assert_eq!(first.len(), 3, "three terms logged across shards");
        // Each shard saw only terms it owns.
        for (s, entries) in logs.iter().enumerate() {
            for e in entries {
                for &t in &e.tokens {
                    assert_eq!(sharded.router().shard_of(t), s);
                }
            }
        }
    }

    #[test]
    fn log_capacity_bounds_each_shard() {
        let (_, sharded) = engines(ScoringModel::TfIdfCosine, 2);
        sharded.set_query_log_capacity(3);
        for _ in 0..10 {
            sharded.search("apache", 1);
        }
        for entries in sharded.shard_logs() {
            assert!(entries.len() <= 3);
        }
        sharded.clear_query_logs();
        assert!(sharded.shard_logs().iter().all(|l| l.is_empty()));
    }

    #[test]
    fn evaluate_does_not_log() {
        let (_, sharded) = engines(ScoringModel::TfIdfCosine, 2);
        let q = Query::from_tokens(&[0]);
        sharded.evaluate(&q, 5);
        assert!(sharded.shard_logs().iter().all(|l| l.is_empty()));
    }

    #[test]
    fn fetch_document_roundtrip() {
        let (_, sharded) = engines(ScoringModel::TfIdfCosine, 2);
        assert_eq!(
            sharded.fetch_document(1),
            Some("apache web server software")
        );
        assert_eq!(sharded.fetch_document(99), None);
    }
}
