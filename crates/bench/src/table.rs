//! Minimal result-table abstraction with CSV output and console rendering.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// A rectangular result table (one per figure panel / paper table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResultTable {
    /// Identifier, e.g. `fig2a_exposure`.
    pub name: String,
    /// Human caption.
    pub caption: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, caption: impl Into<String>, header: Vec<String>) -> Self {
        Self {
            name: name.into(),
            caption: caption.into(),
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Serializes to CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes `<dir>/<name>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }

    /// Renders an aligned console view.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.name, self.caption));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, &w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percent with two decimals ("1.23").
pub fn pct(x: f64) -> String {
    format!("{:.3}", x * 100.0)
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = ResultTable::new("demo", "a demo", vec!["x".into(), "y".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["3".into(), "4".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "x,y\n1,2\n3,4\n");
        let rendered = t.render();
        assert!(rendered.contains("demo"));
        assert!(rendered.contains("3"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_enforced() {
        let mut t = ResultTable::new("demo", "", vec!["x".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_written_to_disk() {
        let mut t = ResultTable::new("disk_demo", "", vec!["a".into()]);
        t.push_row(vec!["42".into()]);
        let dir = std::env::temp_dir().join("toppriv-table-test");
        let path = t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("42"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.01234), "1.234");
        assert_eq!(f3(2.5), "2.500");
    }
}
