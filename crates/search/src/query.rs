//! Query representation.
//!
//! The engine treats every query as a bag of words (the paper relies on
//! this to justify shuffling ghost-query terms): a [`Query`] is a multiset
//! of term ids with query-side term frequencies.

use serde::{Deserialize, Serialize};
use tsearch_text::{Analyzer, TermId, Vocabulary};

/// A parsed bag-of-words query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// Distinct `(term, query_tf)` pairs, term-sorted.
    terms: Vec<(TermId, u32)>,
    /// Total token count of the raw query (before deduplication).
    raw_len: usize,
}

impl Query {
    /// Parses a query from raw text using the shared analyzer and a frozen
    /// vocabulary (out-of-vocabulary terms are dropped, as a real engine
    /// would score them zero anyway).
    pub fn parse(text: &str, analyzer: &Analyzer, vocab: &Vocabulary) -> Self {
        Self::from_tokens(&analyzer.analyze_frozen(text, vocab))
    }

    /// Builds a query from an analyzed token sequence.
    pub fn from_tokens(tokens: &[TermId]) -> Self {
        let mut sorted = tokens.to_vec();
        sorted.sort_unstable();
        let mut terms: Vec<(TermId, u32)> = Vec::new();
        for &t in &sorted {
            match terms.last_mut() {
                Some((last, tf)) if *last == t => *tf += 1,
                _ => terms.push((t, 1)),
            }
        }
        Query {
            terms,
            raw_len: tokens.len(),
        }
    }

    /// Distinct term count.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Total token count (with duplicates).
    pub fn raw_len(&self) -> usize {
        self.raw_len
    }

    /// Whether the query matched no vocabulary terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates `(term, query_tf)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (TermId, u32)> + '_ {
        self.terms.iter().copied()
    }

    /// The distinct term ids.
    pub fn term_ids(&self) -> Vec<TermId> {
        self.terms.iter().map(|&(t, _)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsearch_text::Analyzer;

    #[test]
    fn from_tokens_deduplicates() {
        let q = Query::from_tokens(&[5, 2, 5, 5, 9]);
        assert_eq!(q.num_terms(), 3);
        assert_eq!(q.raw_len(), 5);
        let terms: Vec<_> = q.terms().collect();
        assert_eq!(terms, vec![(2, 1), (5, 3), (9, 1)]);
    }

    #[test]
    fn parse_drops_out_of_vocab() {
        let analyzer = Analyzer::new();
        let mut vocab = Vocabulary::new();
        let apache = vocab.intern("apache");
        let q = Query::parse("the apache submarine", &analyzer, &vocab);
        assert_eq!(q.term_ids(), vec![apache]);
        assert_eq!(q.raw_len(), 1);
    }

    #[test]
    fn empty_query() {
        let q = Query::from_tokens(&[]);
        assert!(q.is_empty());
        assert_eq!(q.num_terms(), 0);
    }
}
