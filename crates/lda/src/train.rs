//! Collapsed Gibbs sampling LDA trainer.
//!
//! Re-implements the algorithm of GibbsLDA++ (which the paper uses): each
//! token's topic assignment is resampled from
//! `p(z=k) ∝ (n_wk + β)/(n_k + Vβ) · (n_dk + α)`
//! with the token's own assignment excluded. After the final iteration the
//! model estimates are read off the counts with Dirichlet smoothing.

use crate::model::LdaModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tsearch_text::TermId;

/// Trainer configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Number of topics K.
    pub num_topics: usize,
    /// Document-topic Dirichlet prior; `None` selects the GibbsLDA++
    /// default `50 / K` used in the paper.
    pub alpha: Option<f64>,
    /// Topic-word Dirichlet prior (paper default 0.1).
    pub beta: f64,
    /// Gibbs iterations over the whole corpus.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl LdaConfig {
    /// Paper-default configuration for K topics.
    pub fn with_topics(num_topics: usize) -> Self {
        Self {
            num_topics,
            alpha: None,
            beta: 0.1,
            iterations: 100,
            seed: 0x1DA,
        }
    }

    /// Resolved alpha value.
    pub fn resolved_alpha(&self) -> f64 {
        self.alpha.unwrap_or(50.0 / self.num_topics as f64)
    }
}

/// Progress snapshot emitted after each iteration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainProgress {
    /// Completed iteration (1-based).
    pub iteration: usize,
    /// Training-set perplexity at this point.
    pub perplexity: f64,
}

/// The collapsed Gibbs sampler state.
pub struct LdaTrainer {
    config: LdaConfig,
    vocab_size: usize,
    /// Word-topic counts, word-major: `nwk[w * K + k]`.
    nwk: Vec<u32>,
    /// Per-topic totals.
    nk: Vec<u32>,
    /// Document-topic counts, doc-major: `ndk[d * K + k]`.
    ndk: Vec<u32>,
    /// Flattened token stream.
    tokens: Vec<TermId>,
    /// Topic assignment of each token.
    assignments: Vec<u32>,
    /// Start offset of each document in `tokens` (plus a final sentinel).
    doc_offsets: Vec<usize>,
    rng: StdRng,
}

impl LdaTrainer {
    /// Initializes the sampler with random topic assignments.
    pub fn new(docs: &[&[TermId]], vocab_size: usize, config: LdaConfig) -> Self {
        assert!(config.num_topics > 0, "need at least one topic");
        assert!(vocab_size > 0, "need a vocabulary");
        let k = config.num_topics;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let total_tokens: usize = docs.iter().map(|d| d.len()).sum();
        let mut tokens = Vec::with_capacity(total_tokens);
        let mut assignments = Vec::with_capacity(total_tokens);
        let mut doc_offsets = Vec::with_capacity(docs.len() + 1);
        let mut nwk = vec![0u32; vocab_size * k];
        let mut nk = vec![0u32; k];
        let mut ndk = vec![0u32; docs.len() * k];
        for (d, doc) in docs.iter().enumerate() {
            doc_offsets.push(tokens.len());
            for &w in doc.iter() {
                assert!((w as usize) < vocab_size, "token outside vocabulary");
                let z = rng.gen_range(0..k) as u32;
                tokens.push(w);
                assignments.push(z);
                nwk[w as usize * k + z as usize] += 1;
                nk[z as usize] += 1;
                ndk[d * k + z as usize] += 1;
            }
        }
        doc_offsets.push(tokens.len());
        LdaTrainer {
            config,
            vocab_size,
            nwk,
            nk,
            ndk,
            tokens,
            assignments,
            doc_offsets,
            rng,
        }
    }

    /// Runs one full Gibbs sweep over all tokens.
    pub fn sweep(&mut self) {
        let k = self.config.num_topics;
        let alpha = self.config.resolved_alpha();
        let beta = self.config.beta;
        let vbeta = self.vocab_size as f64 * beta;
        let mut weights = vec![0.0f64; k];
        let num_docs = self.doc_offsets.len() - 1;
        for d in 0..num_docs {
            let (start, end) = (self.doc_offsets[d], self.doc_offsets[d + 1]);
            for i in start..end {
                let w = self.tokens[i] as usize;
                let old = self.assignments[i] as usize;
                // Exclude the token's own assignment.
                self.nwk[w * k + old] -= 1;
                self.nk[old] -= 1;
                self.ndk[d * k + old] -= 1;
                // Accumulate unnormalized conditional.
                let mut total = 0.0;
                let nwk_row = &self.nwk[w * k..w * k + k];
                let ndk_row = &self.ndk[d * k..d * k + k];
                for t in 0..k {
                    let p = (nwk_row[t] as f64 + beta) / (self.nk[t] as f64 + vbeta)
                        * (ndk_row[t] as f64 + alpha);
                    total += p;
                    weights[t] = total;
                }
                // Draw the new topic by inverse CDF.
                let u = self.rng.gen::<f64>() * total;
                let mut new = k - 1;
                for (t, &cum) in weights.iter().enumerate() {
                    if u < cum {
                        new = t;
                        break;
                    }
                }
                self.assignments[i] = new as u32;
                self.nwk[w * k + new] += 1;
                self.nk[new] += 1;
                self.ndk[d * k + new] += 1;
            }
        }
    }

    /// Training-set perplexity under the current count estimates. A
    /// decreasing sequence over iterations indicates the sampler is
    /// fitting the corpus.
    pub fn perplexity(&self) -> f64 {
        let k = self.config.num_topics;
        let alpha = self.config.resolved_alpha();
        let beta = self.config.beta;
        let vbeta = self.vocab_size as f64 * beta;
        let kalpha = k as f64 * alpha;
        let num_docs = self.doc_offsets.len() - 1;
        let mut log_lik = 0.0;
        for d in 0..num_docs {
            let (start, end) = (self.doc_offsets[d], self.doc_offsets[d + 1]);
            let doc_len = (end - start) as f64;
            for i in start..end {
                let w = self.tokens[i] as usize;
                let mut p = 0.0;
                for t in 0..k {
                    let phi = (self.nwk[w * k + t] as f64 + beta) / (self.nk[t] as f64 + vbeta);
                    let theta = (self.ndk[d * k + t] as f64 + alpha) / (doc_len + kalpha);
                    p += phi * theta;
                }
                log_lik += p.max(f64::MIN_POSITIVE).ln();
            }
        }
        (-log_lik / self.tokens.len().max(1) as f64).exp()
    }

    /// Runs the configured number of iterations, invoking `progress` after
    /// each (with perplexity computed every `perplexity_every` iterations,
    /// 0 meaning never).
    pub fn run<F: FnMut(TrainProgress)>(&mut self, perplexity_every: usize, mut progress: F) {
        for it in 1..=self.config.iterations {
            self.sweep();
            if perplexity_every > 0 && (it % perplexity_every == 0 || it == self.config.iterations)
            {
                progress(TrainProgress {
                    iteration: it,
                    perplexity: self.perplexity(),
                });
            }
        }
    }

    /// Finalizes the model: reads smoothed phi and theta off the counts.
    pub fn into_model(self) -> LdaModel {
        let k = self.config.num_topics;
        let alpha = self.config.resolved_alpha();
        let beta = self.config.beta;
        let vbeta = self.vocab_size as f64 * beta;
        let kalpha = k as f64 * alpha;
        let mut phi_wk = vec![0.0f64; self.vocab_size * k];
        for w in 0..self.vocab_size {
            for t in 0..k {
                phi_wk[w * k + t] =
                    (self.nwk[w * k + t] as f64 + beta) / (self.nk[t] as f64 + vbeta);
            }
        }
        let num_docs = self.doc_offsets.len() - 1;
        let mut theta_dk = vec![0.0f64; num_docs * k];
        for d in 0..num_docs {
            let doc_len = (self.doc_offsets[d + 1] - self.doc_offsets[d]) as f64;
            for t in 0..k {
                theta_dk[d * k + t] = (self.ndk[d * k + t] as f64 + alpha) / (doc_len + kalpha);
            }
        }
        LdaModel::from_parts(k, self.vocab_size, alpha, beta, phi_wk, theta_dk)
    }

    /// Convenience: initialize, run, and finalize in one call.
    pub fn train(docs: &[&[TermId]], vocab_size: usize, config: LdaConfig) -> LdaModel {
        let mut trainer = Self::new(docs, vocab_size, config);
        trainer.run(0, |_| {});
        trainer.into_model()
    }

    /// Internal count-invariant check used by tests: all three count
    /// matrices must agree with the assignment vector.
    pub fn check_invariants(&self) -> Result<(), String> {
        let k = self.config.num_topics;
        let mut nwk = vec![0u32; self.vocab_size * k];
        let mut nk = vec![0u32; k];
        let mut ndk = vec![0u32; (self.doc_offsets.len() - 1) * k];
        for d in 0..self.doc_offsets.len() - 1 {
            for i in self.doc_offsets[d]..self.doc_offsets[d + 1] {
                let w = self.tokens[i] as usize;
                let z = self.assignments[i] as usize;
                nwk[w * k + z] += 1;
                nk[z] += 1;
                ndk[d * k + z] += 1;
            }
        }
        if nwk != self.nwk {
            return Err("word-topic counts inconsistent".into());
        }
        if nk != self.nk {
            return Err("topic totals inconsistent".into());
        }
        if ndk != self.ndk {
            return Err("doc-topic counts inconsistent".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two clearly separated "topics": words 0..5 vs words 5..10.
    fn synthetic_docs() -> Vec<Vec<TermId>> {
        let mut docs = Vec::new();
        for d in 0..40 {
            let base: u32 = if d % 2 == 0 { 0 } else { 5 };
            let doc: Vec<TermId> = (0..30).map(|i| base + (i % 5) as u32).collect();
            docs.push(doc);
        }
        docs
    }

    fn refs(docs: &[Vec<TermId>]) -> Vec<&[TermId]> {
        docs.iter().map(|d| d.as_slice()).collect()
    }

    #[test]
    fn counts_stay_consistent() {
        let docs = synthetic_docs();
        let mut trainer = LdaTrainer::new(
            &refs(&docs),
            10,
            LdaConfig {
                iterations: 3,
                ..LdaConfig::with_topics(2)
            },
        );
        trainer.check_invariants().unwrap();
        trainer.sweep();
        trainer.check_invariants().unwrap();
        trainer.sweep();
        trainer.check_invariants().unwrap();
    }

    #[test]
    fn perplexity_decreases() {
        let docs = synthetic_docs();
        let mut trainer = LdaTrainer::new(
            &refs(&docs),
            10,
            LdaConfig {
                iterations: 30,
                ..LdaConfig::with_topics(2)
            },
        );
        let before = trainer.perplexity();
        for _ in 0..30 {
            trainer.sweep();
        }
        let after = trainer.perplexity();
        assert!(
            after < before,
            "perplexity should drop: before {before}, after {after}"
        );
    }

    #[test]
    fn recovers_separated_topics() {
        let docs = synthetic_docs();
        let model = LdaTrainer::train(
            &refs(&docs),
            10,
            LdaConfig {
                iterations: 60,
                alpha: Some(0.5),
                ..LdaConfig::with_topics(2)
            },
        );
        model.validate().unwrap();
        // The top-5 words of each topic should be one of the two blocks.
        for t in 0..2 {
            let top: Vec<u32> = model.top_words(t, 5).iter().map(|&(w, _)| w).collect();
            let low = top.iter().filter(|&&w| w < 5).count();
            assert!(
                low == 5 || low == 0,
                "topic {t} mixes blocks: {top:?} (low count {low})"
            );
        }
        // And the two topics should cover different blocks.
        let t0_low = model.top_words(0, 5).iter().all(|&(w, _)| w < 5);
        let t1_low = model.top_words(1, 5).iter().all(|&(w, _)| w < 5);
        assert_ne!(t0_low, t1_low, "topics should split the two blocks");
    }

    #[test]
    fn training_is_deterministic() {
        let docs = synthetic_docs();
        let cfg = LdaConfig {
            iterations: 10,
            ..LdaConfig::with_topics(3)
        };
        let a = LdaTrainer::train(&refs(&docs), 10, cfg.clone());
        let b = LdaTrainer::train(&refs(&docs), 10, cfg);
        for w in 0..10u32 {
            assert_eq!(a.word_topics(w), b.word_topics(w));
        }
    }

    #[test]
    fn default_alpha_matches_paper() {
        let cfg = LdaConfig::with_topics(200);
        assert!((cfg.resolved_alpha() - 0.25).abs() < 1e-12);
        assert_eq!(cfg.beta, 0.1);
    }

    #[test]
    fn progress_callback_fires() {
        let docs = synthetic_docs();
        let mut trainer = LdaTrainer::new(
            &refs(&docs),
            10,
            LdaConfig {
                iterations: 4,
                ..LdaConfig::with_topics(2)
            },
        );
        let mut seen = Vec::new();
        trainer.run(2, |p| seen.push(p.iteration));
        assert_eq!(seen, vec![2, 4]);
    }

    #[test]
    fn empty_documents_are_tolerated() {
        let docs: Vec<Vec<TermId>> = vec![vec![], vec![0, 1], vec![]];
        let model = LdaTrainer::train(
            &refs(&docs),
            2,
            LdaConfig {
                iterations: 2,
                ..LdaConfig::with_topics(2)
            },
        );
        model.validate().unwrap();
        assert_eq!(model.num_docs(), 3);
    }
}
