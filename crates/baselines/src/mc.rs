//! The Murugesan & Clifton baseline: plausibly deniable search through
//! canonical query substitution (the paper's reference \[10\]).
//!
//! Offline, the scheme (a) maps dictionary terms into an LSI factor
//! space, (b) forms *canonical queries* from terms that are close in that
//! space (kd-tree nearest neighbors), and (c) groups canonical queries of
//! similar popularity from different parts of the space. At runtime a
//! user query is replaced by the closest canonical query, and the other
//! members of its group serve as cover queries.
//!
//! The ICDE paper's criticism — which experiment `mc1` quantifies — is
//! that substituting the query changes the result list, degrading the
//! engine's intended precision/recall, whereas TopPriv returns exact
//! results.

use crate::kdtree::KdTree;
use crate::lsi::LsiModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tsearch_text::TermId;

/// Configuration of the canonical-query universe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct McConfig {
    /// Number of canonical queries to construct.
    pub num_canonical: usize,
    /// Terms per canonical query.
    pub canonical_len: usize,
    /// Group size k: 1 canonical + (k−1) covers (the deniability set).
    pub group_size: usize,
    /// Only the `active_terms` highest-collection-frequency terms seed
    /// canonical queries (rare terms make meaningless canonicals).
    pub active_terms: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            num_canonical: 256,
            canonical_len: 6,
            group_size: 4,
            active_terms: 4000,
            seed: 0x11C0,
        }
    }
}

/// One canonical query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CanonicalQuery {
    /// Token ids (term-space form, submitted to the engine verbatim).
    pub tokens: Vec<TermId>,
    /// Factor-space centroid.
    pub point: Vec<f64>,
    /// The group this canonical belongs to.
    pub group: usize,
}

/// The built scheme.
pub struct McScheme {
    canonical: Vec<CanonicalQuery>,
    groups: Vec<Vec<usize>>,
    tree: KdTree,
    lsi: LsiModel,
}

impl McScheme {
    /// Builds the canonical-query universe from the corpus.
    ///
    /// `collection_freq` gives each term's corpus frequency (used to seed
    /// canonicals from frequent terms and to match popularity in groups).
    pub fn build(lsi: LsiModel, collection_freq: &[u64], config: McConfig) -> Self {
        assert_eq!(collection_freq.len(), lsi.vocab_size());
        assert!(config.group_size >= 2, "need at least one cover query");
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Active term pool: most frequent terms.
        let mut by_freq: Vec<TermId> = (0..lsi.vocab_size() as TermId).collect();
        by_freq.sort_by_key(|&t| std::cmp::Reverse(collection_freq[t as usize]));
        by_freq.truncate(config.active_terms.min(by_freq.len()));

        // kd-tree over the active terms' factor vectors for NN retrieval.
        let term_points: Vec<Vec<f64>> = by_freq
            .iter()
            .map(|&t| lsi.term_vector(t).to_vec())
            .collect();
        let term_tree = KdTree::build(&term_points, lsi.factors());

        // (a)+(b): canonical queries from factor-space term neighborhoods.
        let mut canonical: Vec<CanonicalQuery> = Vec::with_capacity(config.num_canonical);
        let mut attempts = 0usize;
        while canonical.len() < config.num_canonical && attempts < config.num_canonical * 10 {
            attempts += 1;
            let seed_slot = rng.gen_range(0..by_freq.len());
            let seed_point = &term_points[seed_slot];
            // Draw the canonical's terms from a slightly wider factor-space
            // neighborhood of the seed, so different seeds in one region
            // still yield distinct canonicals.
            let pool = term_tree.k_nearest(seed_point, config.canonical_len * 2);
            if pool.len() < config.canonical_len.min(2) {
                continue;
            }
            let mut slots: Vec<usize> = pool.iter().map(|&(slot, _)| slot).collect();
            // Always keep the seed itself; shuffle the rest.
            for i in (2..slots.len()).rev() {
                let j = rng.gen_range(1..=i);
                slots.swap(i, j);
            }
            slots.truncate(config.canonical_len);
            let mut tokens: Vec<TermId> = slots.into_iter().map(|slot| by_freq[slot]).collect();
            tokens.sort_unstable();
            tokens.dedup();
            if canonical.iter().any(|c| c.tokens == tokens) {
                continue; // duplicate canonical
            }
            let point = lsi.project_query(&tokens);
            canonical.push(CanonicalQuery {
                tokens,
                point,
                group: usize::MAX,
            });
        }

        // (c): group canonicals of similar popularity from different parts
        // of the space. Popularity = summed collection frequency; sort by
        // popularity, then deal consecutive popularity-peers into groups
        // round-robin so each group spans distant regions.
        let mut order: Vec<usize> = (0..canonical.len()).collect();
        let popularity = |c: &CanonicalQuery| -> u64 {
            c.tokens.iter().map(|&t| collection_freq[t as usize]).sum()
        };
        order.sort_by_key(|&i| std::cmp::Reverse(popularity(&canonical[i])));
        let num_groups = canonical.len().div_ceil(config.group_size).max(1);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); num_groups];
        for (slot, &ci) in order.iter().enumerate() {
            // Consecutive popularity ranks land in different groups.
            let g = slot % num_groups;
            canonical[ci].group = g;
            groups[g].push(ci);
        }

        let points: Vec<Vec<f64>> = canonical.iter().map(|c| c.point.clone()).collect();
        let tree = KdTree::build(&points, lsi.factors());
        McScheme {
            canonical,
            groups,
            tree,
            lsi,
        }
    }

    /// Number of canonical queries.
    pub fn num_canonical(&self) -> usize {
        self.canonical.len()
    }

    /// The canonical queries.
    pub fn canonical(&self) -> &[CanonicalQuery] {
        &self.canonical
    }

    /// Runtime substitution: maps a user query to `(canonical index,
    /// cover indices)` — the canonical replaces the query; the covers are
    /// submitted alongside it.
    pub fn substitute(&self, user_tokens: &[TermId]) -> Option<Substitution> {
        let point = self.lsi.project_query(user_tokens);
        let (index, distance) = self.tree.nearest(&point)?;
        let group = self.canonical[index].group;
        let covers: Vec<usize> = self.groups[group]
            .iter()
            .copied()
            .filter(|&c| c != index)
            .collect();
        Some(Substitution {
            canonical: index,
            covers,
            distance,
        })
    }

    /// Token form of a canonical query by index.
    pub fn canonical_tokens(&self, index: usize) -> &[TermId] {
        &self.canonical[index].tokens
    }
}

/// Result of a runtime substitution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Substitution {
    /// Index of the canonical query replacing the user query.
    pub canonical: usize,
    /// Indices of the cover queries (the rest of the group).
    pub covers: Vec<usize>,
    /// Factor-space distance from the user query to the canonical.
    pub distance: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsi::LsiConfig;

    /// Four-block corpus; returns (lsi, collection_freq, docs).
    fn fixture() -> (LsiModel, Vec<u64>) {
        let mut docs: Vec<Vec<TermId>> = Vec::new();
        for d in 0..120u32 {
            let base = (d % 4) * 8;
            docs.push((0..24).map(|i| base + (i % 8)).collect());
        }
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        let lsi = LsiModel::train(
            &refs,
            32,
            LsiConfig {
                factors: 6,
                iterations: 30,
                ..LsiConfig::default()
            },
        );
        let mut freq = vec![0u64; 32];
        for doc in &docs {
            for &t in doc {
                freq[t as usize] += 1;
            }
        }
        (lsi, freq)
    }

    fn scheme() -> McScheme {
        let (lsi, freq) = fixture();
        McScheme::build(
            lsi,
            &freq,
            McConfig {
                num_canonical: 24,
                canonical_len: 4,
                group_size: 4,
                active_terms: 32,
                ..McConfig::default()
            },
        )
    }

    #[test]
    fn canonicals_are_built_and_grouped() {
        let s = scheme();
        assert!(s.num_canonical() >= 8, "got {}", s.num_canonical());
        for c in s.canonical() {
            assert!(c.group != usize::MAX, "every canonical grouped");
            assert!(!c.tokens.is_empty());
        }
    }

    #[test]
    fn canonical_queries_are_topically_coherent() {
        // Terms of one canonical should come from one block (they are
        // factor-space neighbors).
        let s = scheme();
        let mut coherent = 0usize;
        for c in s.canonical() {
            let blocks: std::collections::HashSet<u32> = c.tokens.iter().map(|&t| t / 8).collect();
            if blocks.len() == 1 {
                coherent += 1;
            }
        }
        assert!(
            coherent * 2 >= s.num_canonical(),
            "most canonicals single-block: {coherent}/{}",
            s.num_canonical()
        );
    }

    #[test]
    fn substitution_picks_matching_block() {
        let s = scheme();
        let sub = s.substitute(&[0, 1, 2, 3]).unwrap();
        let canonical = s.canonical_tokens(sub.canonical);
        // The canonical should share the user's topic block (block 0).
        let in_block = canonical.iter().filter(|&&t| t < 8).count();
        assert!(
            in_block * 2 >= canonical.len(),
            "canonical {canonical:?} not from block 0"
        );
        // Cover queries come from the same group, minus the canonical.
        assert!(!sub.covers.is_empty());
        for &cover in &sub.covers {
            assert_ne!(cover, sub.canonical);
        }
    }

    #[test]
    fn substitution_changes_the_query() {
        // The core deficiency the paper points out: the submitted query is
        // generally NOT the user's query.
        let s = scheme();
        let user = vec![0u32, 9, 17]; // deliberately cross-block
        let sub = s.substitute(&user).unwrap();
        assert_ne!(s.canonical_tokens(sub.canonical), user.as_slice());
    }

    #[test]
    fn groups_span_the_space() {
        let s = scheme();
        // A group should contain canonicals from more than one topic block
        // (that is the whole point of the cover set).
        let mut any_diverse = false;
        for group in &s.groups {
            let blocks: std::collections::HashSet<u32> = group
                .iter()
                .flat_map(|&c| s.canonical[c].tokens.iter().map(|&t| t / 8))
                .collect();
            if blocks.len() >= 2 {
                any_diverse = true;
            }
        }
        assert!(any_diverse, "at least some groups span topic blocks");
    }
}
