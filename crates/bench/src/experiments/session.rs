//! Experiment `ext1` (extension beyond the paper): trace-level leakage
//! over a same-topic query session.
//!
//! A user issues a burst of queries on one sensitive topic. Three client
//! policies are compared under an adversary who aggregates belief over
//! the whole query log (Equation 2 applied to the full trace):
//!
//! 1. `unprotected` — raw queries;
//! 2. `per_cycle` — the paper's TopPriv, each cycle certified in
//!    isolation;
//! 3. `session_aware` — our extension: each cycle certified against the
//!    accumulated trace (`GhostGenerator::generate_with_history`).

use crate::context::ExperimentContext;
use crate::table::{f3, pct, ResultTable};
use toppriv_core::{
    exposure, BeliefEngine, GhostConfig, GhostGenerator, PrivacyRequirement, SessionTracker,
};

/// Queries per simulated session.
pub const SESSION_LEN: usize = 8;

/// Runs the session experiment on the default model.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let model = ctx.default_model();
    let belief = BeliefEngine::new(model.clone());
    let requirement = PrivacyRequirement::paper_default();
    let generator = GhostGenerator::new(
        BeliefEngine::new(model.clone()),
        requirement,
        GhostConfig::default(),
    );

    // Sessions: group workload queries by their first target topic and
    // keep topics with enough queries.
    let mut by_topic: std::collections::HashMap<usize, Vec<&tsearch_corpus::BenchmarkQuery>> =
        std::collections::HashMap::new();
    for q in &ctx.queries {
        by_topic.entry(q.target_topics[0]).or_default().push(q);
    }
    let sessions: Vec<Vec<&tsearch_corpus::BenchmarkQuery>> = by_topic
        .into_values()
        .filter(|qs| qs.len() >= 3)
        .take(8)
        .map(|mut qs| {
            qs.truncate(SESSION_LEN);
            qs
        })
        .collect();

    let mut table = ResultTable::new(
        "ext1_session_leakage",
        "Trace-level exposure over same-topic sessions (default model, eps=(5%,1%))",
        vec![
            "policy".into(),
            "trace_exposure_pct".into(),
            "satisfied_eps2".into(),
            "queries_per_session".into(),
            "server_queries".into(),
            "sessions".into(),
        ],
    );

    for policy in ["unprotected", "per_cycle", "session_aware"] {
        let mut total_exposure = 0.0;
        let mut satisfied = 0usize;
        let mut total_session_len = 0usize;
        let mut total_server = 0usize;
        for session in &sessions {
            let mut tracker = SessionTracker::new();
            let mut intention: Vec<usize> = Vec::new();
            for q in session {
                match policy {
                    "unprotected" => tracker.record_plain(&belief, &q.tokens),
                    "per_cycle" => {
                        let r = generator.generate(&q.tokens);
                        if intention.is_empty() {
                            intention = r.intention.clone();
                        }
                        tracker.record_cycle(&belief, &r);
                    }
                    _ => {
                        let r = generator.generate_with_history(&q.tokens, tracker.posteriors());
                        if intention.is_empty() {
                            intention = r.intention.clone();
                        }
                        tracker.record_cycle(&belief, &r);
                    }
                }
            }
            if policy == "unprotected" && intention.is_empty() {
                let boosts = belief.boost(&session[0].tokens);
                intention = requirement.user_intention(&boosts);
            }
            let trace = tracker.trace_boosts(&belief);
            let e = exposure(&trace, &intention);
            total_exposure += e;
            if e <= requirement.eps2 {
                satisfied += 1;
            }
            total_session_len += session.len();
            total_server += tracker.len();
        }
        let n = sessions.len().max(1) as f64;
        table.push_row(vec![
            policy.into(),
            pct(total_exposure / n),
            f3(satisfied as f64 / n),
            f3(total_session_len as f64 / n),
            f3(total_server as f64 / n),
            sessions.len().to_string(),
        ]);
    }
    vec![table]
}
