//! Plaintext document store.
//!
//! The paper's server hosts the corpus in plaintext; the store keeps the
//! raw text so the search engine can return result documents (Step 7 of the
//! search process) and so size accounting can include stored text.

use serde::{Deserialize, Serialize};

/// A simple append-only store of document texts, addressed by dense doc id.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DocumentStore {
    texts: Vec<String>,
}

impl DocumentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a store from texts in doc-id order.
    pub fn from_texts<I, S>(texts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            texts: texts.into_iter().map(Into::into).collect(),
        }
    }

    /// Appends a document, returning its id.
    pub fn push(&mut self, text: String) -> u32 {
        let id = self.texts.len() as u32;
        self.texts.push(text);
        id
    }

    /// Fetches a document's text.
    pub fn get(&self, doc_id: u32) -> Option<&str> {
        self.texts.get(doc_id as usize).map(String::as_str)
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Total stored text bytes.
    pub fn size_bytes(&self) -> usize {
        self.texts.iter().map(String::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut store = DocumentStore::new();
        let a = store.push("alpha beta".into());
        let b = store.push("gamma".into());
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(store.get(0), Some("alpha beta"));
        assert_eq!(store.get(1), Some("gamma"));
        assert_eq!(store.get(2), None);
        assert_eq!(store.len(), 2);
        assert_eq!(store.size_bytes(), 15);
    }

    #[test]
    fn from_texts() {
        let store = DocumentStore::from_texts(["a", "b", "c"]);
        assert_eq!(store.len(), 3);
        assert_eq!(store.get(2), Some("c"));
    }
}
