//! Co-occurrence thesaurus.
//!
//! The PDX baseline \[11\] selects decoy terms that match genuine terms in
//! *specificity* and *semantic association*, "using information extracted
//! automatically from a thesaurus". We build that thesaurus from the corpus
//! itself: windowed co-occurrence counts scored by pointwise mutual
//! information (PMI), keeping the top-k neighbors of every term.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tsearch_text::TermId;

/// Thesaurus construction parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThesaurusConfig {
    /// Co-occurrence window (tokens to each side).
    pub window: usize,
    /// Minimum pair count for an association to be kept.
    pub min_count: u32,
    /// Neighbors retained per term.
    pub top_k: usize,
}

impl Default for ThesaurusConfig {
    fn default() -> Self {
        Self {
            window: 6,
            min_count: 3,
            top_k: 30,
        }
    }
}

/// A PMI-scored association thesaurus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Thesaurus {
    /// Per-term neighbor lists `(neighbor, pmi)`, descending by PMI.
    neighbors: Vec<Vec<(TermId, f64)>>,
}

impl Thesaurus {
    /// Builds the thesaurus from token documents.
    pub fn build(docs: &[&[TermId]], vocab_size: usize, config: ThesaurusConfig) -> Self {
        let mut unigram = vec![0u64; vocab_size];
        let mut pair: HashMap<(TermId, TermId), u32> = HashMap::new();
        let mut total_tokens = 0u64;
        for doc in docs {
            total_tokens += doc.len() as u64;
            for (i, &a) in doc.iter().enumerate() {
                unigram[a as usize] += 1;
                let end = (i + 1 + config.window).min(doc.len());
                for &b in &doc[i + 1..end] {
                    if a == b {
                        continue;
                    }
                    let key = if a < b { (a, b) } else { (b, a) };
                    *pair.entry(key).or_insert(0) += 1;
                }
            }
        }
        let total = total_tokens.max(1) as f64;
        let mut neighbors: Vec<Vec<(TermId, f64)>> = vec![Vec::new(); vocab_size];
        for (&(a, b), &count) in &pair {
            if count < config.min_count {
                continue;
            }
            let pa = unigram[a as usize] as f64 / total;
            let pb = unigram[b as usize] as f64 / total;
            // Window-pair probability, normalized by the pair opportunity
            // count (approximately window * total).
            let pab = count as f64 / (total * config.window as f64);
            let pmi = (pab / (pa * pb)).ln();
            if pmi <= 0.0 {
                continue;
            }
            neighbors[a as usize].push((b, pmi));
            neighbors[b as usize].push((a, pmi));
        }
        for list in &mut neighbors {
            list.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite pmi"));
            list.truncate(config.top_k);
        }
        Thesaurus { neighbors }
    }

    /// Top associated terms of `term`, descending by PMI.
    pub fn neighbors(&self, term: TermId) -> &[(TermId, f64)] {
        &self.neighbors[term as usize]
    }

    /// PMI between two terms (0 if not associated).
    pub fn association(&self, a: TermId, b: TermId) -> f64 {
        self.neighbors[a as usize]
            .iter()
            .find(|&&(t, _)| t == b)
            .map(|&(_, pmi)| pmi)
            .unwrap_or(0.0)
    }

    /// Number of terms covered.
    pub fn vocab_size(&self) -> usize {
        self.neighbors.len()
    }

    /// Mean neighbor-list length (diagnostics).
    pub fn mean_degree(&self) -> f64 {
        if self.neighbors.is_empty() {
            return 0.0;
        }
        self.neighbors.iter().map(Vec::len).sum::<usize>() as f64 / self.neighbors.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Docs where words 0,1,2 always co-occur and 3,4,5 always co-occur.
    fn block_docs() -> Vec<Vec<TermId>> {
        let mut docs = Vec::new();
        for d in 0..60 {
            if d % 2 == 0 {
                docs.push(vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
            } else {
                docs.push(vec![3, 4, 5, 3, 4, 5, 3, 4, 5]);
            }
        }
        docs
    }

    fn build() -> Thesaurus {
        let docs = block_docs();
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        Thesaurus::build(&refs, 6, ThesaurusConfig::default())
    }

    #[test]
    fn within_block_terms_are_associated() {
        let t = build();
        assert!(t.association(0, 1) > 0.0);
        assert!(t.association(0, 2) > 0.0);
        assert!(t.association(3, 4) > 0.0);
    }

    #[test]
    fn cross_block_terms_are_not_associated() {
        let t = build();
        assert_eq!(t.association(0, 3), 0.0);
        assert_eq!(t.association(2, 5), 0.0);
    }

    #[test]
    fn neighbors_sorted_and_bounded() {
        let docs = block_docs();
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        let t = Thesaurus::build(
            &refs,
            6,
            ThesaurusConfig {
                top_k: 1,
                ..ThesaurusConfig::default()
            },
        );
        for term in 0..6u32 {
            assert!(t.neighbors(term).len() <= 1);
        }
        let full = build();
        for term in 0..6u32 {
            let n = full.neighbors(term);
            for pair in n.windows(2) {
                assert!(pair[0].1 >= pair[1].1);
            }
        }
        assert!(full.mean_degree() > 0.0);
        assert_eq!(full.vocab_size(), 6);
    }

    #[test]
    fn min_count_filters_rare_pairs() {
        let docs = [vec![0u32, 1]]; // single co-occurrence
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        let t = Thesaurus::build(
            &refs,
            2,
            ThesaurusConfig {
                min_count: 2,
                ..ThesaurusConfig::default()
            },
        );
        assert_eq!(t.association(0, 1), 0.0);
    }
}
