//! The evaluation metrics of Section V-A: exposure, mask level, and the
//! rank statistics of Figures 3(e)/3(f).

use serde::{Deserialize, Serialize};

/// Exposure: `max_{t∈U} B(t|C)` — how visible the intention still is.
/// Returns 0 for an empty intention.
pub fn exposure(cycle_boosts: &[f64], intention: &[usize]) -> f64 {
    intention
        .iter()
        .map(|&t| cycle_boosts[t])
        .fold(f64::NEG_INFINITY, f64::max)
        .max(if intention.is_empty() {
            0.0
        } else {
            f64::NEG_INFINITY
        })
}

/// Mask level: `max_{t∈T\U} B(t|C)` — how prominent the decoy topics are.
/// Returns 0 when every topic is in the intention.
pub fn mask_level(cycle_boosts: &[f64], intention: &[usize]) -> f64 {
    let in_u = |t: usize| intention.contains(&t);
    let mut best = f64::NEG_INFINITY;
    let mut any = false;
    for (t, &b) in cycle_boosts.iter().enumerate() {
        if !in_u(t) {
            any = true;
            best = best.max(b);
        }
    }
    if any {
        best
    } else {
        0.0
    }
}

/// Ranks of the intention topics when all topics are sorted by descending
/// `B(t|C)` (rank 1 = highest boost). Figure 3(f) reports the max.
pub fn intention_ranks(cycle_boosts: &[f64], intention: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..cycle_boosts.len()).collect();
    order.sort_by(|&a, &b| {
        cycle_boosts[b]
            .partial_cmp(&cycle_boosts[a])
            .expect("finite boosts")
            .then(a.cmp(&b))
    });
    let mut rank_of = vec![0usize; cycle_boosts.len()];
    for (rank, &t) in order.iter().enumerate() {
        rank_of[t] = rank + 1;
    }
    intention.iter().map(|&t| rank_of[t]).collect()
}

/// The maximum (worst, i.e. most visible = numerically smallest value is
/// best hidden? No: rank 1 is most exposed, so the *minimum* rank is the
/// most visible topic; the paper reports the highest rank attained by any
/// intention topic, i.e. the best-ranked one). Following Figure 3(f) we
/// report the best (smallest-numbered) rank among intention topics.
pub fn max_rank_of_intention(cycle_boosts: &[f64], intention: &[usize]) -> Option<usize> {
    intention_ranks(cycle_boosts, intention).into_iter().min()
}

/// Semantic coherence of a query under a topic model (Definition 3): the
/// geometric-mean probability of the query's words under their single best
/// topic. Queries whose words all describe one topic score high; random
/// word jumbles (TrackMeNot-style ghosts) score near the uniform floor.
pub fn semantic_coherence(model: &tsearch_lda::LdaModel, tokens: &[tsearch_text::TermId]) -> f64 {
    if tokens.is_empty() {
        return 0.0;
    }
    let k = model.num_topics();
    let mut best = f64::NEG_INFINITY;
    for t in 0..k {
        let log_sum: f64 = tokens
            .iter()
            .map(|&w| model.phi(t, w).max(f64::MIN_POSITIVE).ln())
            .sum();
        best = best.max(log_sum / tokens.len() as f64);
    }
    best.exp()
}

/// Recomputes a cycle's boost vector after one member's posterior is
/// replaced, in O(K) instead of a full re-inference of the cycle.
///
/// The cycle boost is `B(t|C) = mean_q P(t|q) − P(t)` (Equation 1 over
/// the cycle), so swapping one member's posterior `p_old` for `p_new`
/// shifts every topic's boost by exactly `(p_new[t] − p_old[t]) / υ`.
/// The cross-session planner uses this to re-certify a cycle after
/// substituting a ghost member with another tenant's already-planned
/// submission — the result is bit-for-bit what a full recomputation
/// over the substituted cycle would produce (up to float associativity).
pub fn substitute_in_cycle_boosts(
    cycle_boosts: &[f64],
    old_posterior: &[f64],
    new_posterior: &[f64],
    cycle_len: usize,
) -> Vec<f64> {
    assert!(cycle_len > 0, "empty cycle has no boosts to substitute");
    let n = cycle_len as f64;
    cycle_boosts
        .iter()
        .zip(old_posterior)
        .zip(new_posterior)
        .map(|((&b, &p_old), &p_new)| b + (p_new - p_old) / n)
        .collect()
}

/// A bundle of per-query privacy metrics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PrivacyMetrics {
    /// `max_{t∈U} B(t|C)`.
    pub exposure: f64,
    /// `max_{t∈T\U} B(t|C)`.
    pub mask_level: f64,
    /// `|U|`.
    pub num_relevant: usize,
    /// Best rank attained by any intention topic (1 = top), 0 if `U` empty.
    pub best_intention_rank: usize,
    /// Cycle length υ.
    pub cycle_len: usize,
    /// Ghost generation wall time in seconds.
    pub generation_secs: f64,
}

impl PrivacyMetrics {
    /// Computes the boost-based metrics (cycle length and timing are filled
    /// in by the caller).
    pub fn from_boosts(cycle_boosts: &[f64], intention: &[usize]) -> Self {
        PrivacyMetrics {
            exposure: exposure(cycle_boosts, intention),
            mask_level: mask_level(cycle_boosts, intention),
            num_relevant: intention.len(),
            best_intention_rank: max_rank_of_intention(cycle_boosts, intention).unwrap_or(0),
            cycle_len: 0,
            generation_secs: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposure_and_mask() {
        let boosts = vec![0.10, -0.02, 0.30, 0.01];
        let intention = vec![0, 2];
        assert!((exposure(&boosts, &intention) - 0.30).abs() < 1e-12);
        assert!((mask_level(&boosts, &intention) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn empty_intention() {
        let boosts = vec![0.5, 0.1];
        assert_eq!(exposure(&boosts, &[]), 0.0);
        assert!((mask_level(&boosts, &[]) - 0.5).abs() < 1e-12);
        assert_eq!(max_rank_of_intention(&boosts, &[]), None);
    }

    #[test]
    fn full_intention_mask_is_zero() {
        let boosts = vec![0.5, 0.1];
        assert_eq!(mask_level(&boosts, &[0, 1]), 0.0);
    }

    #[test]
    fn ranks() {
        let boosts = vec![0.10, 0.40, 0.30, -0.1];
        // Descending: t1 (rank 1), t2 (2), t0 (3), t3 (4).
        assert_eq!(intention_ranks(&boosts, &[0, 2]), vec![3, 2]);
        assert_eq!(max_rank_of_intention(&boosts, &[0, 2]), Some(2));
        assert_eq!(max_rank_of_intention(&boosts, &[3]), Some(4));
    }

    #[test]
    fn coherence_separates_topical_from_random() {
        // 2 topics over 6 words: words 0-2 topic 0, words 3-5 topic 1.
        let phi = vec![
            0.30, 0.03, // w0
            0.30, 0.03, // w1
            0.30, 0.03, // w2
            0.03, 0.30, // w3
            0.03, 0.30, // w4
            0.04, 0.31, // w5
        ];
        let theta = vec![0.5, 0.5];
        let model = tsearch_lda::LdaModel::from_parts(2, 6, 1.0, 0.1, phi, theta);
        let coherent = semantic_coherence(&model, &[0, 1, 2]);
        let mixed = semantic_coherence(&model, &[0, 3, 1]);
        assert!(coherent > mixed, "coherent {coherent} vs mixed {mixed}");
        assert_eq!(semantic_coherence(&model, &[]), 0.0);
    }

    #[test]
    fn substitution_matches_full_recompute() {
        // Three members over four topics; boosts are mean posterior −
        // prior. Replacing member 1's posterior via the O(K) update must
        // equal recomputing the mean from scratch.
        let prior = [0.25, 0.25, 0.3, 0.2];
        let members = [
            vec![0.7, 0.1, 0.1, 0.1],
            vec![0.2, 0.5, 0.2, 0.1],
            vec![0.1, 0.1, 0.6, 0.2],
        ];
        let boosts_of = |ms: &[Vec<f64>]| -> Vec<f64> {
            (0..prior.len())
                .map(|t| ms.iter().map(|p| p[t]).sum::<f64>() / ms.len() as f64 - prior[t])
                .collect()
        };
        let old_boosts = boosts_of(&members);
        let replacement = vec![0.05, 0.05, 0.05, 0.85];
        let fast =
            substitute_in_cycle_boosts(&old_boosts, &members[1], &replacement, members.len());
        let mut substituted = members.to_vec();
        substituted[1] = replacement;
        let slow = boosts_of(&substituted);
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() < 1e-12, "fast {f} vs slow {s}");
        }
    }

    #[test]
    fn substitution_with_identical_posterior_is_identity() {
        let boosts = vec![0.1, -0.05, 0.2];
        let p = vec![0.3, 0.3, 0.4];
        let out = substitute_in_cycle_boosts(&boosts, &p, &p, 5);
        for (a, b) in out.iter().zip(&boosts) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn metrics_bundle() {
        let boosts = vec![0.10, 0.40, 0.005, -0.1];
        let m = PrivacyMetrics::from_boosts(&boosts, &[2]);
        assert!((m.exposure - 0.005).abs() < 1e-12);
        assert!((m.mask_level - 0.40).abs() < 1e-12);
        assert_eq!(m.num_relevant, 1);
        assert_eq!(m.best_intention_rank, 3);
    }
}
