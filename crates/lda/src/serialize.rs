//! Compact binary serialization of LDA models.
//!
//! JSON is impractical for the `Pr(w|t)` matrix (hundreds of megabytes of
//! decimal text for paper-scale models), so models are persisted in a small
//! versioned binary format: probabilities are stored in single precision,
//! matching both GibbsLDA++'s on-disk footprint and the ~140 MB the paper
//! reports for its LDA200 model.

use crate::model::LdaModel;
use bytes::{Buf, BufMut};

const MAGIC: &[u8; 4] = b"LDAB";
const VERSION: u32 = 1;

/// Serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input is not an LDAB blob.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// Input ended early or sizes are inconsistent.
    Truncated,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not an LDAB model blob"),
            CodecError::BadVersion(v) => write!(f, "unsupported LDAB version {v}"),
            CodecError::Truncated => write!(f, "LDAB blob truncated"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes a model to bytes.
pub fn encode(model: &LdaModel) -> Vec<u8> {
    let k = model.num_topics();
    let v = model.vocab_size();
    let d = model.num_docs();
    let mut out = Vec::with_capacity(16 + 4 * (k * v + d * k) + 8 * k + 32);
    out.put_slice(MAGIC);
    out.put_u32_le(VERSION);
    out.put_u32_le(k as u32);
    out.put_u32_le(v as u32);
    out.put_u32_le(d as u32);
    out.put_f64_le(model.alpha());
    out.put_f64_le(model.beta());
    for w in 0..v {
        for &p in model.word_topics(w as u32) {
            out.put_f32_le(p as f32);
        }
    }
    for doc in 0..d {
        for &p in model.doc_topics(doc) {
            out.put_f32_le(p as f32);
        }
    }
    out
}

/// Deserializes a model from bytes.
pub fn decode(mut bytes: &[u8]) -> Result<LdaModel, CodecError> {
    if bytes.remaining() < 4 || &bytes[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    bytes.advance(4);
    if bytes.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let version = bytes.get_u32_le();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    if bytes.remaining() < 12 + 16 {
        return Err(CodecError::Truncated);
    }
    let k = bytes.get_u32_le() as usize;
    let v = bytes.get_u32_le() as usize;
    let d = bytes.get_u32_le() as usize;
    let alpha = bytes.get_f64_le();
    let beta = bytes.get_f64_le();
    let phi_len = k.checked_mul(v).ok_or(CodecError::Truncated)?;
    let theta_len = d.checked_mul(k).ok_or(CodecError::Truncated)?;
    if bytes.remaining() < 4 * (phi_len + theta_len) {
        return Err(CodecError::Truncated);
    }
    let mut phi = Vec::with_capacity(phi_len);
    for _ in 0..phi_len {
        phi.push(bytes.get_f32_le() as f64);
    }
    let mut theta = Vec::with_capacity(theta_len);
    for _ in 0..theta_len {
        theta.push(bytes.get_f32_le() as f64);
    }
    Ok(LdaModel::from_parts(k, v, alpha, beta, phi, theta))
}

/// Serializes a model to a file.
pub fn save(model: &LdaModel, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode(model))
}

/// Loads a model from a file.
pub fn load(path: &std::path::Path) -> std::io::Result<LdaModel> {
    let bytes = std::fs::read(path)?;
    decode(&bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> LdaModel {
        let phi = vec![0.7, 0.1, 0.2, 0.3, 0.1, 0.6];
        let theta = vec![0.9, 0.1, 0.3, 0.7];
        LdaModel::from_parts(2, 3, 25.0, 0.1, phi, theta)
    }

    #[test]
    fn roundtrip() {
        let model = toy();
        let bytes = encode(&model);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.num_topics(), 2);
        assert_eq!(back.vocab_size(), 3);
        assert_eq!(back.num_docs(), 2);
        assert_eq!(back.alpha(), 25.0);
        for w in 0..3u32 {
            for t in 0..2 {
                assert!((back.phi(t, w) - model.phi(t, w)).abs() < 1e-6);
            }
        }
        for d in 0..2 {
            for t in 0..2 {
                assert!((back.theta(d, t) - model.theta(d, t)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn encoded_size_matches_breakdown() {
        let model = toy();
        let bytes = encode(&model);
        // magic(4) + version(4) + k/v/d (12) + alpha/beta (16) + floats.
        let expected = 4 + 4 + 12 + 16 + 4 * (6 + 4);
        assert_eq!(bytes.len(), expected);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode(b"nope").unwrap_err(), CodecError::BadMagic);
        assert_eq!(decode(b"").unwrap_err(), CodecError::BadMagic);
        let mut bytes = encode(&toy());
        bytes.truncate(bytes.len() - 3);
        assert_eq!(decode(&bytes).unwrap_err(), CodecError::Truncated);
        // Corrupt the version field.
        let mut bytes = encode(&toy());
        bytes[4] = 99;
        assert!(matches!(decode(&bytes), Err(CodecError::BadVersion(_))));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("toppriv-lda-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.ldab");
        save(&toy(), &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.num_topics(), 2);
        std::fs::remove_file(&path).ok();
    }
}
