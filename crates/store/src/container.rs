//! The checksummed container framing every stored artifact.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "TPS1"
//! 4       4     format version (1)
//! 8       4     artifact kind tag (caller-defined)
//! 12      8     payload length in bytes
//! 20      4     CRC-32 of the payload
//! 24      n     payload
//! ```
//!
//! The header carries the checksum so a reader can detect truncation
//! (declared length vs bytes present) and corruption (CRC mismatch)
//! before handing the payload to a deserializer.

use crate::crc32::crc32;

/// File magic.
pub const MAGIC: &[u8; 4] = b"TPS1";
/// Current container version.
pub const VERSION: u32 = 1;
/// Header size in bytes.
pub const HEADER_LEN: usize = 24;

/// Artifact kind tags used across the workspace. Callers may define
/// their own tags; these are the reserved ones.
pub mod kind {
    /// A serialized LDA model (LDAB payload).
    pub const LDA_MODEL: u32 = 1;
    /// A serialized inverted index.
    pub const INVERTED_INDEX: u32 = 2;
    /// A vocabulary table.
    pub const VOCABULARY: u32 = 3;
    /// A reduced-model vocabulary map.
    pub const VOCAB_MAP: u32 = 4;
    /// Benchmark/result cache entries.
    pub const RESULT_CACHE: u32 = 5;
    /// A spilled per-session service state (posteriors, exposure
    /// accounting, pacing position) for crash recovery.
    pub const SESSION_STATE: u32 = 6;
    /// A spilled per-shard query log for post-crash replay.
    pub const QUERY_LOG: u32 = 7;
    /// A spilled privacy-audit journal (breach/warning evidence that
    /// must survive restarts).
    pub const AUDIT_JOURNAL: u32 = 8;
}

/// Container decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Input does not start with the container magic.
    BadMagic,
    /// Unsupported container version.
    BadVersion(u32),
    /// The artifact kind differs from what the caller expected.
    KindMismatch {
        /// Tag the caller expected.
        expected: u32,
        /// Tag found in the header.
        found: u32,
    },
    /// Fewer bytes present than the header declares.
    Truncated {
        /// Bytes the header promises.
        declared: u64,
        /// Payload bytes actually present.
        present: u64,
    },
    /// Payload bytes do not match the stored checksum.
    ChecksumMismatch {
        /// Checksum in the header.
        stored: u32,
        /// Checksum of the bytes read.
        computed: u32,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BadMagic => write!(f, "not a TPS1 container"),
            StoreError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            StoreError::KindMismatch { expected, found } => {
                write!(
                    f,
                    "artifact kind mismatch: expected {expected}, found {found}"
                )
            }
            StoreError::Truncated { declared, present } => {
                write!(
                    f,
                    "container truncated: {present} of {declared} payload bytes"
                )
            }
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "payload checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Frames `payload` into a container blob.
pub fn seal(kind_tag: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&kind_tag.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verifies a container blob and returns `(kind, payload)`.
pub fn unseal(bytes: &[u8]) -> Result<(u32, &[u8]), StoreError> {
    if bytes.len() < HEADER_LEN || &bytes[0..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(StoreError::BadVersion(version));
    }
    let kind_tag = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let declared = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let stored = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let present = (bytes.len() - HEADER_LEN) as u64;
    if present < declared {
        return Err(StoreError::Truncated { declared, present });
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + declared as usize];
    let computed = crc32(payload);
    if computed != stored {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    Ok((kind_tag, payload))
}

/// [`unseal`] with a kind expectation.
pub fn unseal_kind(bytes: &[u8], expected: u32) -> Result<&[u8], StoreError> {
    let (found, payload) = unseal(bytes)?;
    if found != expected {
        return Err(StoreError::KindMismatch { expected, found });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let payload = b"hello artifacts";
        let blob = seal(kind::LDA_MODEL, payload);
        let (k, p) = unseal(&blob).unwrap();
        assert_eq!(k, kind::LDA_MODEL);
        assert_eq!(p, payload);
        assert_eq!(unseal_kind(&blob, kind::LDA_MODEL).unwrap(), payload);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let blob = seal(7, b"");
        let (k, p) = unseal(&blob).unwrap();
        assert_eq!(k, 7);
        assert!(p.is_empty());
    }

    #[test]
    fn rejects_foreign_bytes() {
        assert_eq!(
            unseal(b"not a container at all").unwrap_err(),
            StoreError::BadMagic
        );
        assert_eq!(unseal(b"").unwrap_err(), StoreError::BadMagic);
    }

    #[test]
    fn rejects_version_bump() {
        let mut blob = seal(1, b"x");
        blob[4] = 9;
        assert_eq!(unseal(&blob).unwrap_err(), StoreError::BadVersion(9));
    }

    #[test]
    fn rejects_kind_mismatch() {
        let blob = seal(kind::VOCABULARY, b"x");
        assert!(matches!(
            unseal_kind(&blob, kind::LDA_MODEL).unwrap_err(),
            StoreError::KindMismatch {
                expected: 1,
                found: 3
            }
        ));
    }

    #[test]
    fn detects_truncation() {
        let blob = seal(1, b"0123456789");
        let cut = &blob[..blob.len() - 3];
        assert!(matches!(
            unseal(cut).unwrap_err(),
            StoreError::Truncated {
                declared: 10,
                present: 7
            }
        ));
    }

    #[test]
    fn detects_payload_corruption() {
        let mut blob = seal(1, b"0123456789");
        let last = blob.len() - 1;
        blob[last] ^= 0x40;
        assert!(matches!(
            unseal(&blob).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn tolerates_trailing_garbage() {
        // Extra bytes after the declared payload are ignored (e.g. a
        // pre-allocated file): the declared length wins.
        let mut blob = seal(2, b"payload");
        blob.extend_from_slice(b"JUNKJUNK");
        let (k, p) = unseal(&blob).unwrap();
        assert_eq!(k, 2);
        assert_eq!(p, b"payload");
    }
}
