//! Adversary collusion at scale: all shards of the term-sharded tier
//! collude, merge their query logs after a churn storm over ≥64
//! sessions, and train a supervised naive-Bayes classifier on the
//! ground-truth document taxonomy. Even with the complete merged trace
//! and ground-truth training data, the classifier must stay within the
//! paper's `(ε1, ε2)` story:
//!
//! - picking the genuine query out of a cycle is no better than chance
//!   plus ε1 (the decoys are statistically indistinguishable);
//! - recovering the true topic from the pooled cycle bag is far below
//!   the unprotected-query oracle (the cycle actually masks);
//! - the merged log is complete — every drained submission is visible
//!   to the colluding shards, so the attack is evaluated at full
//!   adversary strength, not against a lossy trace.

use std::sync::Arc;
use toppriv_adversary::{merge_shard_logs, run_classifier_attack, NaiveBayes};
use toppriv_bench::scenarios::churn::{run_fleet, ChurnConfig};
use toppriv_core::PrivacyRequirement;
use toppriv_service::{SearchTier, SessionManager};
use tsearch_corpus::{generate_workload, CorpusConfig, SyntheticCorpus, WorkloadConfig};
use tsearch_lda::{LdaConfig, LdaTrainer};
use tsearch_search::{ScoringModel, ShardedEngine};
use tsearch_text::Analyzer;

#[test]
fn colluding_shards_stay_within_epsilon_bounds_at_scale() {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: 300,
        num_topics: 8,
        terms_per_topic: 60,
        ..CorpusConfig::default()
    });
    let docs = corpus.token_docs();
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let engine = Arc::new(ShardedEngine::build(
        &docs,
        &texts,
        Analyzer::new(),
        corpus.vocab.clone(),
        ScoringModel::TfIdfCosine,
        4,
    ));
    let model = Arc::new(LdaTrainer::train(
        &docs,
        corpus.vocab.len(),
        LdaConfig {
            iterations: 25,
            ..LdaConfig::with_topics(16)
        },
    ));
    let manager = Arc::new(
        SessionManager::with_tier(SearchTier::Sharded(engine), model)
            .with_cache(4096)
            .with_fleet_seed(0xC0111D0),
    );
    let queries = generate_workload(
        &corpus,
        &WorkloadConfig {
            num_queries: 48,
            ..WorkloadConfig::default()
        },
    );

    // A churn storm with ≥64 distinct sessions joining over its course.
    let cfg = ChurnConfig {
        join_per_wave: 24,
        waves: 3,
        cycles_per_session: 1,
    };
    let art = run_fleet(manager, &queries, &cfg);
    assert!(art.joined >= 64, "storm opened {} sessions", art.joined);
    assert!(
        art.invariants.pass,
        "churn invariants must hold at scale: {:?}",
        art.invariants
            .checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| format!("{}: {}", c.name, c.detail))
            .collect::<Vec<_>>()
    );

    // The colluding shards reassemble the global trace; every drained
    // submission must be visible in the merged view.
    let tier = art.manager.tier();
    let shard_logs = tier.as_sharded().expect("sharded tier").shard_logs();
    let merged = merge_shard_logs(&shard_logs);
    // Cache-served submissions never reach the engine (the cache is
    // itself a fleet-level suppressor); everything else must be visible.
    let cache_hits = art
        .manager
        .metrics_registry()
        .registry()
        .counter_total(toppriv_service::metrics::M_CACHE_HITS) as usize;
    assert_eq!(
        merged.len() + cache_hits,
        art.drained,
        "merged log + cache hits must cover every drained submission"
    );
    assert!(!merged.is_empty(), "colluding shards saw the trace");

    // The strongest classifier the enterprise can field: trained on the
    // ground-truth dominant topic of every document it hosts.
    let labeled: Vec<(&[u32], usize)> = corpus
        .docs
        .iter()
        .map(|d| {
            let label = d
                .mixture
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weight"))
                .map(|&(t, _)| t)
                .expect("non-empty mixture");
            (d.tokens.as_slice(), label)
        })
        .collect();
    let nb = NaiveBayes::train(&labeled, corpus.num_topics(), corpus.vocab.len(), 1.0);
    let report = run_classifier_attack(&nb, &art.cycles, &art.truths);
    assert!(
        report.cycles >= 64,
        "attack evaluated {} cycles",
        report.cycles
    );

    // The oracle must be strong, otherwise the attack is a straw man.
    assert!(
        report.unprotected_recovery > 2.0 * report.topic_chance,
        "unprotected recovery {:.3} should beat chance {:.3} clearly",
        report.unprotected_recovery,
        report.topic_chance
    );
    // ε1 bound: the genuine query hides among the decoys.
    let eps1 = PrivacyRequirement::paper_default().eps1;
    assert!(
        report.genuine_identification <= report.genuine_chance + eps1,
        "genuine identification {:.3} exceeds chance {:.3} + ε1 {eps1}",
        report.genuine_identification,
        report.genuine_chance
    );
    // The pooled cycle must not leak the topic like the raw query does.
    assert!(
        report.cycle_recovery < report.unprotected_recovery,
        "cycle recovery {:.3} should be damped below the oracle {:.3}",
        report.cycle_recovery,
        report.unprotected_recovery
    );
}
