//! Index statistics, including the PIR-padding thought experiment from the
//! paper's related-work section: to host inverted lists in a PIR server,
//! every list must be padded to the maximum length, which the paper reports
//! blows the WSJ index up from 259 MB to 178 GB.

use crate::index::InvertedIndex;
use serde::{Deserialize, Serialize};

/// Bytes per `<p_ij, d_j>` pair in the uncompressed/PIR representation
/// (4-byte doc id + 4-byte impact value).
pub const PIR_PAIR_BYTES: usize = 8;

/// Aggregate statistics of an inverted index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexStats {
    /// Number of terms with non-empty postings.
    pub non_empty_lists: usize,
    /// Mean postings-list length over non-empty lists (the paper's WSJ
    /// value is 186.7 pairs).
    pub avg_list_len: f64,
    /// Maximum postings-list length (127,848 for WSJ).
    pub max_list_len: usize,
    /// Actual compressed index size in bytes.
    pub actual_bytes: usize,
    /// Size if every non-empty list were padded to the maximum length at
    /// [`PIR_PAIR_BYTES`] per pair, as PIR hosting requires.
    pub pir_padded_bytes: u64,
}

impl IndexStats {
    /// Computes statistics for `index`.
    pub fn compute(index: &InvertedIndex) -> Self {
        let mut non_empty = 0usize;
        let mut total_len = 0u64;
        let mut max_len = 0usize;
        for term in 0..index.num_terms() as u32 {
            let len = index.doc_freq(term);
            if len > 0 {
                non_empty += 1;
                total_len += len as u64;
                max_len = max_len.max(len);
            }
        }
        IndexStats {
            non_empty_lists: non_empty,
            avg_list_len: if non_empty == 0 {
                0.0
            } else {
                total_len as f64 / non_empty as f64
            },
            max_list_len: max_len,
            actual_bytes: index.size_breakdown().total(),
            pir_padded_bytes: non_empty as u64 * max_len as u64 * PIR_PAIR_BYTES as u64,
        }
    }

    /// Blowup factor of PIR padding over the actual index.
    pub fn pir_blowup(&self) -> f64 {
        if self.actual_bytes == 0 {
            0.0
        } else {
            self.pir_padded_bytes as f64 / self.actual_bytes as f64
        }
    }
}

impl std::fmt::Display for IndexStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "non-empty lists : {}", self.non_empty_lists)?;
        writeln!(f, "avg list length : {:.1}", self.avg_list_len)?;
        writeln!(f, "max list length : {}", self.max_list_len)?;
        writeln!(f, "actual bytes    : {}", self.actual_bytes)?;
        writeln!(f, "PIR-padded bytes: {}", self.pir_padded_bytes)?;
        writeln!(f, "PIR blowup      : {:.1}x", self.pir_blowup())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsearch_text::TermId;

    #[test]
    fn stats_on_skewed_lists() {
        // Term 0 occurs in all 100 docs, terms 1..=10 in one each.
        let docs: Vec<Vec<TermId>> = (0..100u32)
            .map(|d| {
                let mut v = vec![0u32];
                if (1..=10).contains(&d) {
                    v.push(d);
                }
                v
            })
            .collect();
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        let idx = InvertedIndex::build(&refs, 11);
        let stats = IndexStats::compute(&idx);
        assert_eq!(stats.non_empty_lists, 11);
        assert_eq!(stats.max_list_len, 100);
        assert!((stats.avg_list_len - (100.0 + 10.0) / 11.0).abs() < 1e-9);
        // PIR padding is dramatically larger than the actual encoded size.
        assert_eq!(stats.pir_padded_bytes, 11 * 100 * 8);
        assert!(stats.pir_blowup() > 1.0);
        let _ = format!("{stats}");
    }

    #[test]
    fn empty_index() {
        let idx = InvertedIndex::build(&[], 0);
        let stats = IndexStats::compute(&idx);
        assert_eq!(stats.non_empty_lists, 0);
        assert_eq!(stats.avg_list_len, 0.0);
        assert_eq!(stats.pir_padded_bytes, 0);
    }
}
