//! Retrieval effectiveness metrics.
//!
//! Used to verify the headline usability property of TopPriv: because ghost
//! queries are separate queries whose results are discarded, precision and
//! recall of the genuine query are untouched (unlike the canonical-query
//! substitution of Murugesan & Clifton, which the paper criticizes).

use crate::topk::SearchHit;
use std::collections::HashSet;

/// Precision@k: fraction of the top-k results that are relevant.
pub fn precision_at_k(hits: &[SearchHit], relevant: &HashSet<u32>, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let considered = hits.iter().take(k).count();
    if considered == 0 {
        return 0.0;
    }
    let good = hits
        .iter()
        .take(k)
        .filter(|h| relevant.contains(&h.doc_id))
        .count();
    good as f64 / considered as f64
}

/// Recall@k: fraction of relevant documents retrieved in the top k.
pub fn recall_at_k(hits: &[SearchHit], relevant: &HashSet<u32>, k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let good = hits
        .iter()
        .take(k)
        .filter(|h| relevant.contains(&h.doc_id))
        .count();
    good as f64 / relevant.len() as f64
}

/// Average precision over the full ranked list.
pub fn average_precision(hits: &[SearchHit], relevant: &HashSet<u32>) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut good = 0usize;
    let mut sum = 0.0;
    for (i, h) in hits.iter().enumerate() {
        if relevant.contains(&h.doc_id) {
            good += 1;
            sum += good as f64 / (i + 1) as f64;
        }
    }
    sum / relevant.len() as f64
}

/// Whether two ranked lists are identical (ids and order). The TopPriv
/// usability invariant is that filtered-cycle results equal solo-query
/// results exactly.
pub fn result_lists_identical(a: &[SearchHit], b: &[SearchHit]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.doc_id == y.doc_id && (x.score - y.score).abs() < 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(ids: &[u32]) -> Vec<SearchHit> {
        ids.iter()
            .enumerate()
            .map(|(i, &doc_id)| SearchHit {
                doc_id,
                score: 1.0 - i as f64 * 0.1,
            })
            .collect()
    }

    #[test]
    fn precision_and_recall() {
        let h = hits(&[1, 2, 3, 4]);
        let rel: HashSet<u32> = [1, 3, 9].into_iter().collect();
        assert!((precision_at_k(&h, &rel, 2) - 0.5).abs() < 1e-12);
        assert!((precision_at_k(&h, &rel, 4) - 0.5).abs() < 1e-12);
        assert!((recall_at_k(&h, &rel, 4) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(precision_at_k(&h, &rel, 0), 0.0);
    }

    #[test]
    fn average_precision_example() {
        let h = hits(&[1, 5, 3]);
        let rel: HashSet<u32> = [1, 3].into_iter().collect();
        // AP = (1/1 + 2/3) / 2
        assert!((average_precision(&h, &rel) - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_relevance() {
        let h = hits(&[1]);
        let rel = HashSet::new();
        assert_eq!(recall_at_k(&h, &rel, 1), 0.0);
        assert_eq!(average_precision(&h, &rel), 0.0);
    }

    #[test]
    fn identical_lists() {
        let a = hits(&[1, 2]);
        let b = hits(&[1, 2]);
        let c = hits(&[2, 1]);
        assert!(result_lists_identical(&a, &b));
        assert!(!result_lists_identical(&a, &c));
        assert!(!result_lists_identical(&a, &hits(&[1])));
    }
}
