//! # tsearch-search
//!
//! The similarity search engine substrate — the paper's *unmodified*
//! enterprise server. Supports TF-IDF cosine (default) and BM25 scoring
//! over the `tsearch-index` inverted index, exposes the server-side query
//! log that the curious adversary analyzes, and provides retrieval metrics
//! used to verify that TopPriv leaves result quality untouched.
//!
//! ## Example
//!
//! ```
//! use tsearch_search::{ScoringModel, SearchEngine};
//! use tsearch_text::{Analyzer, Vocabulary};
//!
//! let analyzer = Analyzer::new();
//! let mut vocab = Vocabulary::new();
//! let texts = vec!["apache helicopter army".to_string(), "stock market shares".to_string()];
//! let docs: Vec<Vec<u32>> = texts.iter().map(|t| analyzer.analyze_into(t, &mut vocab)).collect();
//! for d in &docs { vocab.observe_document(d); }
//! let refs: Vec<&[u32]> = docs.iter().map(|d| d.as_slice()).collect();
//! let engine = SearchEngine::build(&refs, &texts, analyzer, vocab, ScoringModel::TfIdfCosine);
//!
//! let hits = engine.search("apache helicopter", 10);
//! assert_eq!(hits[0].doc_id, 0);
//! assert_eq!(engine.query_log().len(), 1); // the server saw the query
//! ```

#![warn(missing_docs)]

pub mod boolean;
pub mod engine;
pub mod eval;
pub mod log;
pub mod query;
pub mod score;
pub mod sharded;
pub mod topk;

pub use boolean::{evaluate_boolean, gallop_intersect, BooleanQuery};
pub use engine::{SearchEngine, M_EVAL_US};
pub use eval::{average_precision, precision_at_k, recall_at_k, result_lists_identical};
pub use log::{LoggedQuery, QueryLog};
pub use query::Query;
pub use score::ScoringModel;
pub use sharded::{ShardedEngine, M_GATHER_US, M_SHARD_EVAL_US};
pub use topk::{SearchHit, TopK};
