//! Store-fault injection on the two durable containers: session spills
//! and the audit journal. A scheduled `StoreWrite` fails a spill before
//! any bytes move (the previous container stays valid), a corrupted
//! container is rejected by the CRC seal before any session state is
//! touched, and a failed periodic journal spill leaves **no gap** — the
//! next spill seals every event including those from before the
//! failure.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use toppriv_service::auditor::{AuditConfig, PrivacyAuditor};
use toppriv_service::{
    unseal_audit_journal, FaultKind, FaultPlane, FaultSpec, ServiceError, SessionManager,
    SessionMetrics,
};
use tsearch_corpus::{
    generate_workload, BenchmarkQuery, CorpusConfig, SyntheticCorpus, WorkloadConfig,
};
use tsearch_lda::{LdaConfig, LdaModel, LdaTrainer};
use tsearch_search::{ScoringModel, SearchEngine};
use tsearch_text::Analyzer;

struct Stack {
    engine: Arc<SearchEngine>,
    model: Arc<LdaModel>,
    queries: Vec<BenchmarkQuery>,
}

fn stack() -> &'static Stack {
    static STACK: OnceLock<Stack> = OnceLock::new();
    STACK.get_or_init(|| {
        let corpus = SyntheticCorpus::generate(CorpusConfig {
            num_docs: 140,
            num_topics: 4,
            terms_per_topic: 40,
            seed: 0x57F4,
            ..CorpusConfig::default()
        });
        let docs = corpus.token_docs();
        let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
        let engine = Arc::new(SearchEngine::build(
            &docs,
            &texts,
            Analyzer::new(),
            corpus.vocab.clone(),
            ScoringModel::TfIdfCosine,
        ));
        let model = Arc::new(LdaTrainer::train(
            &docs,
            corpus.vocab.len(),
            LdaConfig {
                iterations: 10,
                ..LdaConfig::with_topics(4)
            },
        ));
        let queries = generate_workload(
            &corpus,
            &WorkloadConfig {
                num_queries: 6,
                seed: 0x57F4 ^ 0x9E37,
                ..WorkloadConfig::default()
            },
        );
        Stack {
            engine,
            model,
            queries,
        }
    })
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("toppriv_store_faults_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn bit_identical(a: &SessionMetrics, b: &SessionMetrics) -> bool {
    a.cycles == b.cycles
        && a.queries_emitted == b.queries_emitted
        && a.mean_exposure.to_bits() == b.mean_exposure.to_bits()
        && a.worst_exposure.to_bits() == b.worst_exposure.to_bits()
        && a.trace_exposure.to_bits() == b.trace_exposure.to_bits()
}

#[test]
fn injected_enospc_fails_spill_but_next_succeeds() {
    let s = stack();
    let plane = Arc::new(FaultPlane::new(11).with_spec(FaultSpec::once(FaultKind::StoreWrite)));
    let manager = SessionManager::new(s.engine.clone(), s.model.clone())
        .with_fleet_seed(0x5CE7A210)
        .with_fault_plane(plane.clone());
    manager.open_session("alice").unwrap();
    manager
        .search_tokens("alice", &s.queries[0].tokens, 10)
        .unwrap();
    let path = scratch("alice_spill.bin");
    let _ = std::fs::remove_file(&path);
    // First spill: the one-shot StoreWrite fires before any bytes move.
    let err = manager.spill_session("alice", &path).unwrap_err();
    assert!(
        matches!(err, ServiceError::Unavailable(_)),
        "injected write fault must surface as transient unavailability, got {err}"
    );
    assert!(!path.exists(), "a failed spill leaves nothing on disk");
    assert_eq!(plane.fired(FaultKind::StoreWrite), 1);
    // Next spill: budget exhausted, the periodic spill path recovers.
    manager.spill_session("alice", &path).unwrap();
    assert!(path.exists());
    let at_spill = manager.session_metrics("alice").unwrap();
    // The sealed container round-trips bit-identically on a clean fleet.
    let restored =
        SessionManager::new(s.engine.clone(), s.model.clone()).with_fleet_seed(0x5CE7A210);
    let id = restored.load_session(&path).unwrap();
    assert_eq!(id, "alice");
    let m = restored.session_metrics("alice").unwrap();
    assert!(bit_identical(&at_spill, &m), "restore must be bit-exact");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_spill_is_rejected_before_restore() {
    let s = stack();
    let manager =
        SessionManager::new(s.engine.clone(), s.model.clone()).with_fleet_seed(0x5CE7A210);
    manager.open_session("bob").unwrap();
    manager
        .search_tokens("bob", &s.queries[1].tokens, 10)
        .unwrap();
    let path = scratch("bob_spill.bin");
    manager.spill_session("bob", &path).unwrap();

    let restored =
        SessionManager::new(s.engine.clone(), s.model.clone()).with_fleet_seed(0x5CE7A210);
    // Torn write: truncate the container mid-payload.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let err = restored.load_session(&path).unwrap_err();
    assert!(
        matches!(&err, ServiceError::BadRequest(m) if m.contains("corrupt session container")),
        "truncated container must be rejected, got {err}"
    );
    // Short read / bit rot: flip one payload byte, keep the length.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();
    let err = restored.load_session(&path).unwrap_err();
    assert!(
        matches!(&err, ServiceError::BadRequest(m) if m.contains("corrupt session container")),
        "bit-rotted container must be rejected, got {err}"
    );
    assert_eq!(restored.session_count(), 0, "no half-restored session");
    // The undamaged bytes still load: rejection was the seal, not luck.
    std::fs::write(&path, &bytes).unwrap();
    restored.load_session(&path).unwrap();
    assert_eq!(restored.session_count(), 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn injected_read_fault_is_transient() {
    let s = stack();
    let manager =
        SessionManager::new(s.engine.clone(), s.model.clone()).with_fleet_seed(0x5CE7A210);
    manager.open_session("carol").unwrap();
    manager
        .search_tokens("carol", &s.queries[2].tokens, 10)
        .unwrap();
    let path = scratch("carol_spill.bin");
    manager.spill_session("carol", &path).unwrap();

    let restored = SessionManager::new(s.engine.clone(), s.model.clone())
        .with_fleet_seed(0x5CE7A210)
        .with_fault_plane(Arc::new(
            FaultPlane::new(23).with_spec(FaultSpec::once(FaultKind::StoreRead)),
        ));
    let err = restored.load_session(&path).unwrap_err();
    assert!(matches!(err, ServiceError::Unavailable(_)), "got {err}");
    assert_eq!(restored.session_count(), 0);
    // The retry reads clean — the fault was the I/O, not the container.
    restored.load_session(&path).unwrap();
    assert_eq!(restored.session_count(), 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn failed_journal_spill_leaves_no_gap() {
    use toppriv_core::PrivacyMetrics;
    let path = scratch("audit_journal.bin");
    let _ = std::fs::remove_file(&path);
    let registry = Arc::new(toppriv_obs::MetricsRegistry::new());
    let auditor = PrivacyAuditor::new(
        registry,
        AuditConfig {
            spill_every_cycles: 1,
            spill_path: Some(path.clone()),
            ..AuditConfig::default()
        },
    );
    auditor.attach_fault_plane(Arc::new(
        FaultPlane::new(31).with_spec(FaultSpec::once(FaultKind::StoreWrite)),
    ));
    let breach = PrivacyMetrics {
        exposure: 0.5,
        mask_level: 0.0,
        num_relevant: 1,
        best_intention_rank: 0,
        cycle_len: 4,
        generation_secs: 0.0,
    };
    // Cycle 0 breaches (journaled pre-failure), then the periodic spill
    // fails on the injected ENOSPC — surfaced as a spill_failed warning,
    // nothing on disk, ring journal intact.
    auditor.register_cycle("t", 0, &breach, 0.01, 0.5, 0.5);
    auditor.on_outcome("t", 0);
    auditor.finish_drain();
    assert!(!path.exists(), "failed spill must not leave a container");
    let codes: Vec<String> = auditor.tail(16).iter().map(|e| e.code.clone()).collect();
    assert!(codes.contains(&"eps2_breach".to_string()));
    assert!(codes.contains(&"spill_failed".to_string()));
    // Cycle 1 audits clean; the next periodic spill succeeds and seals
    // the *whole* journal — the pre-failure breach included. No gap.
    let clean = PrivacyMetrics {
        exposure: 0.002,
        mask_level: 0.05,
        ..breach
    };
    auditor.register_cycle("t", 1, &clean, 0.01, 0.001, 0.002);
    auditor.on_outcome("t", 1);
    auditor.finish_drain();
    assert!(path.exists(), "next periodic spill must succeed");
    let events = unseal_audit_journal(&std::fs::read(&path).unwrap()).unwrap();
    let sealed_codes: Vec<&str> = events.iter().map(|e| e.code.as_str()).collect();
    assert!(
        sealed_codes.contains(&"eps2_breach"),
        "pre-failure events must survive into the next spill, got {sealed_codes:?}"
    );
    assert!(sealed_codes.contains(&"spill_failed"));
    // Sequence numbers are contiguous: no journal gap.
    for w in events.windows(2) {
        assert_eq!(w[1].seq, w[0].seq + 1, "journal gap at seq {}", w[0].seq);
    }
    let _ = std::fs::remove_file(&path);
}
