//! Integration tests: the privacy auditor under a concurrent drain.
//!
//! A rigged ε2 breach must surface as **exactly one** journal event no
//! matter how many drain workers race on the cycle's submissions, the
//! per-tenant gauges must reflect the manager's exposure accounting in
//! micro-units, and a later drain must not re-emit the breach.

use std::sync::Arc;
use toppriv_service::auditor::{
    to_micro, M_AUDIT_CYCLES, M_AUDIT_EVENTS, M_TENANT_BURN_CYCLES, M_TENANT_HEADROOM,
    M_TENANT_TRACE_EXPOSURE, M_TENANT_WORST_EXPOSURE,
};
use toppriv_service::{AuditConfig, CycleScheduler, PlannedQuery, SessionManager};
use tsearch_corpus::{generate_workload, CorpusConfig, SyntheticCorpus, WorkloadConfig};
use tsearch_lda::{LdaConfig, LdaModel, LdaTrainer};
use tsearch_search::{ScoringModel, ShardedEngine};
use tsearch_text::Analyzer;

const SESSIONS: usize = 4;
const SHARDS: usize = 4;
const WORKERS: usize = 4;

struct Stack {
    corpus: SyntheticCorpus,
    engine: Arc<ShardedEngine>,
    model: Arc<LdaModel>,
}

/// A small sharded stack: the rigged cycle's submissions spread across
/// shards, so several drain workers genuinely race on its audit.
fn stack() -> Stack {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: 300,
        num_topics: 8,
        terms_per_topic: 60,
        ..CorpusConfig::default()
    });
    let docs = corpus.token_docs();
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let engine = Arc::new(ShardedEngine::build(
        &docs,
        &texts,
        Analyzer::new(),
        corpus.vocab.clone(),
        ScoringModel::TfIdfCosine,
        SHARDS,
    ));
    let model = Arc::new(LdaTrainer::train(
        &docs,
        corpus.vocab.len(),
        LdaConfig {
            iterations: 25,
            ..LdaConfig::with_topics(16)
        },
    ));
    Stack {
        corpus,
        engine,
        model,
    }
}

fn audited_manager(stack: &Stack) -> Arc<SessionManager> {
    let manager = SessionManager::new_sharded(stack.engine.clone(), stack.model.clone())
        .with_cache(2048)
        .with_fleet_seed(7)
        .with_auditor(AuditConfig::default());
    for s in 0..SESSIONS {
        manager.open_session(&format!("t{s}")).unwrap();
    }
    Arc::new(manager)
}

/// Plans `per_session` cycles for every session, starting at workload
/// query offset `offset`.
fn plan_wave(
    manager: &SessionManager,
    stack: &Stack,
    per_session: usize,
    offset: usize,
) -> Vec<Vec<PlannedQuery>> {
    let queries = generate_workload(
        &stack.corpus,
        &WorkloadConfig {
            num_queries: 16,
            ..WorkloadConfig::default()
        },
    );
    let mut plans = Vec::new();
    for (s, id) in manager.session_ids().iter().enumerate() {
        for q in 0..per_session {
            plans.push(
                manager
                    .plan_cycle(
                        id,
                        &queries[(offset + s + q * 3) % queries.len()].tokens,
                        10,
                    )
                    .unwrap(),
            );
        }
    }
    plans
}

#[test]
fn rigged_breach_emits_exactly_once_across_drain_workers() {
    let stack = stack();
    let manager = audited_manager(&stack);
    let auditor = manager.auditor().expect("auditor attached").clone();
    let registry = manager.metrics_registry().registry().clone();

    let plans = plan_wave(&manager, &stack, 2, 0);
    let expected: usize = plans.iter().map(|p| p.len()).sum();
    // Rig one planned cycle with an unmasked exposure far above both its
    // decoys and ε2: the very next drain must surface the breach.
    let rigged = plans[0][0].clone();
    auditor.rig_cycle(&rigged.session, rigged.scheduled.cycle_id, 0.5, 0.0);

    let scheduler = CycleScheduler::for_manager(&manager, WORKERS);
    let outcomes = scheduler.run(plans);
    assert_eq!(outcomes.len(), expected, "every submission drained");

    // Exactly one breach in the journal, attributed to the rigged cycle.
    assert_eq!(auditor.log().breaches(), 1, "exactly-once breach emission");
    let breaches: Vec<_> = auditor
        .log()
        .events()
        .into_iter()
        .filter(|e| e.code == "eps2_breach")
        .collect();
    assert_eq!(breaches.len(), 1);
    assert_eq!(breaches[0].tenant, rigged.session);
    assert_eq!(breaches[0].cycle, rigged.scheduled.cycle_id as u64);

    // The counters agree with the journal: one breach-severity event,
    // and the per-cycle audit counter matches the auditor's own count.
    assert_eq!(
        registry
            .counter(M_AUDIT_EVENTS, &[("severity", "breach")])
            .get(),
        1
    );
    assert_eq!(
        registry.counter_total(M_AUDIT_CYCLES),
        auditor.cycles_audited()
    );
    assert_eq!(
        auditor.cycles_audited(),
        (SESSIONS * 2) as u64,
        "each planned cycle audited once (the rig overwrites, not adds)"
    );

    let health = auditor.health();
    assert!(!health.healthy, "a breach degrades the audit verdict");
    assert_eq!(health.breaches, 1);
    assert_eq!(health.tenants, SESSIONS);

    // A later clean drain must not re-emit the pruned rigged cycle.
    let more = plan_wave(&manager, &stack, 1, 5);
    let expected: usize = more.iter().map(|p| p.len()).sum();
    let outcomes = scheduler.run(more);
    assert_eq!(outcomes.len(), expected);
    assert_eq!(auditor.log().breaches(), 1, "breach not re-emitted");
    assert_eq!(
        registry
            .counter(M_AUDIT_EVENTS, &[("severity", "breach")])
            .get(),
        1
    );
}

#[test]
fn tenant_gauges_mirror_exposure_accounting_in_micro_units() {
    let stack = stack();
    let manager = audited_manager(&stack);
    let registry = manager.metrics_registry().registry().clone();

    let plans = plan_wave(&manager, &stack, 2, 0);
    let scheduler = CycleScheduler::for_manager(&manager, WORKERS);
    scheduler.run(plans);

    let eps2 = toppriv_core::PrivacyRequirement::paper_default().eps2;
    let snapshot = manager.metrics();
    assert_eq!(snapshot.sessions.len(), SESSIONS);
    for m in &snapshot.sessions {
        let labels = [("tenant", m.session.as_str())];
        let trace = registry.gauge(M_TENANT_TRACE_EXPOSURE, &labels).get();
        let worst = registry.gauge(M_TENANT_WORST_EXPOSURE, &labels).get();
        let headroom = registry.gauge(M_TENANT_HEADROOM, &labels).get();
        assert_eq!(
            trace,
            to_micro(m.trace_exposure),
            "{}: trace gauge mirrors the manager's Equation-2 accounting",
            m.session
        );
        assert_eq!(worst, to_micro(m.worst_exposure), "{}", m.session);
        // headroom = ε2 − trace; independent micro-roundings may differ
        // by one unit.
        assert!(
            (headroom - (to_micro(eps2) - trace)).abs() <= 1,
            "{}: headroom {headroom} vs ε2 {} − trace {trace}",
            m.session,
            to_micro(eps2)
        );
        let burn = registry.gauge(M_TENANT_BURN_CYCLES, &labels).get();
        assert!(
            burn >= -1,
            "{}: burn estimate is −1 or a cycle count",
            m.session
        );
    }

    // Departing tenants zero their gauges.
    let gone = snapshot.sessions[0].session.clone();
    manager.close_session(&gone).unwrap();
    let labels = [("tenant", gone.as_str())];
    assert_eq!(registry.gauge(M_TENANT_TRACE_EXPOSURE, &labels).get(), 0);
    assert_eq!(registry.gauge(M_TENANT_HEADROOM, &labels).get(), 0);
    assert_eq!(registry.gauge(M_TENANT_BURN_CYCLES, &labels).get(), -1);
    let health = manager.auditor().unwrap().health();
    assert_eq!(health.tenants, SESSIONS - 1);
    assert!(health.healthy, "clean workload audits clean");
}
