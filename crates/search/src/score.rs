//! Relevance scoring models.
//!
//! The paper's engine uses the classical vector space model; we provide
//! TF-IDF cosine (lnc.ltc) as the default and Okapi BM25 as an alternative,
//! both over the same inverted index.

use serde::{Deserialize, Serialize};

/// Scoring model selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ScoringModel {
    /// TF-IDF with log tf weighting and cosine normalization (lnc.ltc).
    #[default]
    TfIdfCosine,
    /// Okapi BM25 with the given parameters.
    Bm25 {
        /// Term-frequency saturation (typical 1.2).
        k1: f64,
        /// Length normalization (typical 0.75).
        b: f64,
    },
}

impl ScoringModel {
    /// Default BM25 parameters.
    pub fn bm25_default() -> Self {
        ScoringModel::Bm25 { k1: 1.2, b: 0.75 }
    }

    /// Document-side term weight before normalization.
    pub fn doc_weight(&self, tf: u32, doc_len: u32, avg_doc_len: f64) -> f64 {
        debug_assert!(tf > 0);
        match *self {
            ScoringModel::TfIdfCosine => 1.0 + (tf as f64).ln(),
            ScoringModel::Bm25 { k1, b } => {
                let tf = tf as f64;
                let norm = 1.0 - b + b * (doc_len as f64 / avg_doc_len.max(1e-9));
                tf * (k1 + 1.0) / (tf + k1 * norm)
            }
        }
    }

    /// Query-side term weight.
    pub fn query_weight(&self, query_tf: u32, idf: f64) -> f64 {
        match *self {
            ScoringModel::TfIdfCosine => (1.0 + (query_tf as f64).ln()) * idf,
            // BM25 folds idf into the query side and ignores query tf
            // saturation for short queries.
            ScoringModel::Bm25 { .. } => query_tf as f64 * idf,
        }
    }

    /// Whether document scores must be divided by the document's vector
    /// norm (cosine normalization).
    pub fn needs_cosine_norm(&self) -> bool {
        matches!(self, ScoringModel::TfIdfCosine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tfidf_doc_weight_is_sublinear() {
        let m = ScoringModel::TfIdfCosine;
        let w1 = m.doc_weight(1, 100, 100.0);
        let w10 = m.doc_weight(10, 100, 100.0);
        let w19 = m.doc_weight(19, 100, 100.0);
        assert!(w10 > w1);
        assert!(w19 - w10 < w10 - w1, "log growth is concave in tf");
    }

    #[test]
    fn bm25_saturates() {
        let m = ScoringModel::bm25_default();
        let w1 = m.doc_weight(1, 100, 100.0);
        let w50 = m.doc_weight(50, 100, 100.0);
        let w500 = m.doc_weight(500, 100, 100.0);
        assert!(w50 > w1);
        assert!(w500 < 2.2 * 1.01, "bm25 bounded by k1+1");
        assert!(w500 - w50 < 0.2, "saturation");
    }

    #[test]
    fn bm25_penalizes_long_docs() {
        let m = ScoringModel::bm25_default();
        let short = m.doc_weight(3, 50, 100.0);
        let long = m.doc_weight(3, 400, 100.0);
        assert!(short > long);
    }

    #[test]
    fn query_weight_scales_with_idf() {
        for m in [ScoringModel::TfIdfCosine, ScoringModel::bm25_default()] {
            assert!(m.query_weight(1, 3.0) > m.query_weight(1, 1.0));
        }
    }

    #[test]
    fn norm_flag() {
        assert!(ScoringModel::TfIdfCosine.needs_cosine_norm());
        assert!(!ScoringModel::bm25_default().needs_cosine_norm());
    }
}
