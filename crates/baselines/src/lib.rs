//! # toppriv-baselines
//!
//! The comparison schemes of the paper's evaluation:
//!
//! - [`PdxEmbellisher`]: the PDX query-embellishment baseline of
//!   reference \[11\] (decoy terms matched on specificity and thesaurus
//!   association), used in Figures 4 and 5;
//! - [`Thesaurus`]: the PMI co-occurrence thesaurus PDX draws decoys from;
//! - [`TrackMeNot`]: uniform-random ghost queries (reference \[9\]), the
//!   incoherent strawman of the introduction;
//! - [`SpaceComparison`]: the naive download-the-index alternative of
//!   Section V-D / Figure 6;
//! - [`McScheme`]: the Murugesan & Clifton plausibly-deniable-search
//!   baseline of reference \[10\] (LSI factor space + kd-tree canonical
//!   queries + cover groups), whose result distortion experiment `mc1`
//!   quantifies.
//!
//! All baselines operate on the same analyzed token streams as TopPriv, so
//! exposure comparisons are apples-to-apples under the same LDA models.

pub mod kdtree;
pub mod lsi;
pub mod mc;
pub mod naive;
pub mod pdx;
pub mod thesaurus;
pub mod trackmenot;

pub use kdtree::KdTree;
pub use lsi::{cosine, LsiConfig, LsiModel};
pub use mc::{CanonicalQuery, McConfig, McScheme, Substitution};
pub use naive::SpaceComparison;
pub use pdx::{EmbellishedQuery, PdxConfig, PdxEmbellisher};
pub use thesaurus::{Thesaurus, ThesaurusConfig};
pub use trackmenot::{TrackMeNot, TrackMeNotConfig};
