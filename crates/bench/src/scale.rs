//! Experiment scale presets.
//!
//! The paper's setup (172,890 WSJ articles, LDA up to K=300, 150 TREC
//! queries) is scaled to laptop-sized synthetic equivalents. Two presets:
//! `quick` for smoke tests and CI, `standard` for the full reproduction
//! runs recorded in EXPERIMENTS.md.

use serde::{Deserialize, Serialize};
use tsearch_corpus::{CorpusConfig, WorkloadConfig};

/// All knobs of a reproduction run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scale {
    /// Preset name (used in cache file names).
    pub name: String,
    /// Corpus generation config.
    pub corpus: CorpusConfig,
    /// Workload generation config.
    pub workload: WorkloadConfig,
    /// LDA topic counts to train (the paper's LDA050..LDA300).
    pub topic_counts: Vec<usize>,
    /// The default model's K (the paper's LDA200).
    pub default_k: usize,
    /// Gibbs iterations for training.
    pub lda_iterations: usize,
    /// Threshold grid (fractions) for the ε sweeps of Figures 2–4.
    pub eps_grid: Vec<f64>,
    /// PDX expansion factors (Figure 4).
    pub expansion_factors: Vec<usize>,
    /// Cycle lengths υ for the TopPriv-vs-PDX ratio (Figure 5).
    pub cycle_lengths: Vec<usize>,
    /// Corpus sizes for the space-growth sweep (Figure 6).
    pub fig6_doc_counts: Vec<usize>,
    /// Queries evaluated per sweep point (≤ workload size).
    pub queries_per_setting: usize,
    /// Queries used for the adversary experiment.
    pub adversary_queries: usize,
}

impl Scale {
    /// Tiny preset for tests: seconds, not minutes.
    pub fn quick() -> Self {
        Scale {
            name: "quick".into(),
            corpus: CorpusConfig {
                num_docs: 400,
                num_topics: 10,
                terms_per_topic: 60,
                shared_pool_terms: 60,
                background_terms: 150,
                doc_len_mean: 80.0,
                min_doc_len: 20,
                max_doc_len: 250,
                ..CorpusConfig::default()
            },
            workload: WorkloadConfig {
                num_queries: 24,
                ..WorkloadConfig::default()
            },
            topic_counts: vec![10, 20, 40],
            default_k: 20,
            lda_iterations: 30,
            eps_grid: vec![0.01, 0.02, 0.03, 0.05],
            expansion_factors: vec![2, 4, 8],
            cycle_lengths: vec![2, 4],
            fig6_doc_counts: vec![200, 400, 800],
            queries_per_setting: 10,
            adversary_queries: 8,
        }
    }

    /// The full reproduction preset.
    pub fn standard() -> Self {
        Scale {
            name: "standard".into(),
            corpus: CorpusConfig::default(), // 4000 docs, 40 topics, ~11k vocab
            workload: WorkloadConfig::default(), // 150 queries, 2-20 terms
            topic_counts: vec![50, 100, 150, 200, 250, 300],
            default_k: 200,
            lda_iterations: 60,
            eps_grid: vec![
                0.005, 0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04, 0.045, 0.05,
            ],
            expansion_factors: vec![2, 4, 8, 12, 16],
            cycle_lengths: vec![2, 4, 8, 12],
            fig6_doc_counts: vec![500, 1000, 2000, 4000, 8000, 16000],
            queries_per_setting: 60,
            adversary_queries: 40,
        }
    }

    /// Parses a preset by name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "quick" => Some(Self::quick()),
            "standard" => Some(Self::standard()),
            _ => None,
        }
    }

    /// Model label in the paper's style (`LDA050`, `LDA200`, ...).
    pub fn model_label(k: usize) -> String {
        format!("LDA{k:03}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for scale in [Scale::quick(), Scale::standard()] {
            scale.corpus.validate().unwrap();
            assert!(scale.topic_counts.contains(&scale.default_k));
            assert!(scale.queries_per_setting <= scale.workload.num_queries);
            assert!(scale.adversary_queries <= scale.workload.num_queries);
            assert!(scale.eps_grid.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn by_name() {
        assert_eq!(Scale::by_name("quick").unwrap().name, "quick");
        assert_eq!(Scale::by_name("standard").unwrap().name, "standard");
        assert!(Scale::by_name("nope").is_none());
    }

    #[test]
    fn labels() {
        assert_eq!(Scale::model_label(50), "LDA050");
        assert_eq!(Scale::model_label(300), "LDA300");
    }
}
