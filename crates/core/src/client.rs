//! The trusted client module (Figure 1 of the paper).
//!
//! Sits between the user and the unmodified search engine: it formulates
//! the cycle (user query + ghosts), submits every query in the cycle,
//! discards the ghost results, and returns only the genuine result — so
//! the ghosts are completely transparent to the user and the engine sees
//! a mixed trace.

use crate::belief::BeliefEngine;
use crate::ghost::{CycleResult, GhostConfig, GhostGenerator};
use crate::privacy::PrivacyRequirement;
use std::sync::Arc;
use tsearch_search::{SearchEngine, SearchHit};
use tsearch_text::TermId;

/// Result of one private search.
#[derive(Debug, Clone)]
pub struct PrivateSearchResult {
    /// The genuine query's hits — exactly what an unprotected search would
    /// have returned.
    pub hits: Vec<SearchHit>,
    /// The cycle and its privacy accounting.
    pub report: CycleResult,
}

/// The trusted client.
pub struct TrustedClient {
    engine: Arc<SearchEngine>,
    generator: GhostGenerator,
}

impl TrustedClient {
    /// Builds a client around an engine and a ghost generator.
    pub fn new(engine: Arc<SearchEngine>, generator: GhostGenerator) -> Self {
        Self { engine, generator }
    }

    /// Convenience constructor from the parts.
    pub fn with_parts(
        engine: Arc<SearchEngine>,
        belief: BeliefEngine,
        requirement: PrivacyRequirement,
        config: GhostConfig,
    ) -> Self {
        Self::new(engine, GhostGenerator::new(belief, requirement, config))
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &SearchEngine {
        &self.engine
    }

    /// The ghost generator.
    pub fn generator(&self) -> &GhostGenerator {
        &self.generator
    }

    /// Steps 1–5 of the paper's search process: formulate the cycle, submit
    /// every query, filter ghost results, return the genuine result.
    pub fn search(&self, text: &str, k: usize) -> PrivateSearchResult {
        let tokens = self
            .engine
            .analyzer()
            .analyze_frozen(text, self.engine.vocab());
        self.search_tokens(&tokens, k)
    }

    /// Token-level variant of [`TrustedClient::search`].
    pub fn search_tokens(&self, tokens: &[TermId], k: usize) -> PrivateSearchResult {
        let report = self.generator.generate(tokens);
        let mut genuine_hits = Vec::new();
        for query in &report.cycle {
            let hits = self.engine.search_tokens(&query.tokens, k);
            if query.is_genuine {
                genuine_hits = hits;
            }
            // Ghost results are dropped on the floor (Step 4).
        }
        PrivateSearchResult {
            hits: genuine_hits,
            report,
        }
    }

    /// Reference search without privacy protection, for verifying that the
    /// filtered result is identical to the unprotected one. Does not log.
    pub fn unprotected_search(&self, tokens: &[TermId], k: usize) -> Vec<SearchHit> {
        let query = tsearch_search::Query::from_tokens(tokens);
        self.engine.evaluate(&query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privacy::PrivacyRequirement;
    use tsearch_lda::{LdaConfig, LdaModel, LdaTrainer};
    use tsearch_search::{result_lists_identical, ScoringModel};
    use tsearch_text::{Analyzer, Vocabulary};

    struct Fixture {
        engine: Arc<SearchEngine>,
        model: Arc<LdaModel>,
    }

    /// Corpus of 4 topical word blocks, 8 words each, plus engine + model.
    fn fixture() -> Fixture {
        let mut vocab = Vocabulary::new();
        let words: Vec<String> = (0..32).map(|i| format!("term{i:02}x")).collect();
        for w in &words {
            vocab.intern(w);
        }
        let mut docs: Vec<Vec<TermId>> = Vec::new();
        let mut texts: Vec<String> = Vec::new();
        for d in 0..120u32 {
            let base = (d % 4) * 8;
            let tokens: Vec<TermId> = (0..40).map(|i| base + (i % 8)).collect();
            let text = tokens
                .iter()
                .map(|&t| words[t as usize].as_str())
                .collect::<Vec<_>>()
                .join(" ");
            docs.push(tokens);
            texts.push(text);
        }
        for d in &docs {
            vocab.observe_document(d);
        }
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        let model = Arc::new(LdaTrainer::train(
            &refs,
            32,
            LdaConfig {
                iterations: 80,
                alpha: Some(0.3),
                ..LdaConfig::with_topics(4)
            },
        ));
        let engine = Arc::new(SearchEngine::build(
            &refs,
            &texts,
            Analyzer::new(),
            vocab,
            ScoringModel::TfIdfCosine,
        ));
        Fixture { engine, model }
    }

    fn client(fx: &Fixture) -> TrustedClient {
        TrustedClient::with_parts(
            fx.engine.clone(),
            BeliefEngine::new(fx.model.clone()),
            PrivacyRequirement::new(0.10, 0.05).unwrap(),
            GhostConfig::default(),
        )
    }

    #[test]
    fn filtered_results_equal_unprotected_results() {
        let fx = fixture();
        let c = client(&fx);
        let user: Vec<TermId> = vec![0, 1, 2];
        let private = c.search_tokens(&user, 10);
        // The genuine tokens get sorted inside the cycle; sorting does not
        // change a bag-of-words query, so results must be identical.
        let plain = c.unprotected_search(&user, 10);
        assert!(
            result_lists_identical(&private.hits, &plain),
            "TopPriv must not change the genuine result list"
        );
        assert!(!private.hits.is_empty());
    }

    #[test]
    fn server_sees_the_whole_cycle() {
        let fx = fixture();
        let c = client(&fx);
        fx.engine.clear_query_log();
        let result = c.search_tokens(&[0, 1, 2], 5);
        let log = fx.engine.query_log();
        assert_eq!(log.len(), result.report.cycle_len());
        // The log order matches the shuffled cycle order, and the genuine
        // query is somewhere inside.
        let genuine_tokens = &result.report.genuine().tokens;
        assert!(log.iter().any(|q| &q.tokens == genuine_tokens));
    }

    #[test]
    fn text_interface_works() {
        let fx = fixture();
        let c = client(&fx);
        let result = c.search("term00x term01x term02x", 5);
        assert!(!result.hits.is_empty());
        assert_eq!(
            result.report.genuine().tokens,
            vec![0, 1, 2],
            "text should analyze to the expected tokens"
        );
    }

    #[test]
    fn ghost_results_are_discarded() {
        let fx = fixture();
        let c = client(&fx);
        let result = c.search_tokens(&[8, 9, 10], 5);
        // Every returned hit must be a doc matching the *genuine* query's
        // block (docs with base 8 are topic block 1: doc ids ≡ 1 mod 4).
        for hit in &result.hits {
            assert_eq!(hit.doc_id % 4, 1, "hit {} from wrong block", hit.doc_id);
        }
    }
}
