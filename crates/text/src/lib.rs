//! # tsearch-text
//!
//! Text analysis substrate for the TopPriv reproduction: tokenizer,
//! stopword filtering, a full Porter stemmer, and vocabulary interning.
//!
//! All downstream components (the inverted index in `tsearch-index`, the
//! search engine in `tsearch-search`, and the LDA topic model in
//! `tsearch-lda`) share one [`Analyzer`] and one [`Vocabulary`] so that
//! index-time and query-time token streams are identical — a prerequisite
//! for the belief computations of the privacy layer to be consistent with
//! what the search engine observes.
//!
//! ## Example
//!
//! ```
//! use tsearch_text::{Analyzer, Vocabulary};
//!
//! let analyzer = Analyzer::new();
//! let mut vocab = Vocabulary::new();
//! let ids = analyzer.analyze_into("the AH-64 Apache helicopter", &mut vocab);
//! vocab.observe_document(&ids);
//! assert_eq!(ids.len(), 3); // "the" and "and" removed, rest interned
//! assert_eq!(vocab.term(ids[0]), "ah64");
//! ```

pub mod stem;
pub mod stopwords;
pub mod token;
pub mod vocab;

pub use stem::PorterStemmer;
pub use stopwords::{StopwordList, DEFAULT_STOPWORDS};
pub use token::{Analyzer, AnalyzerConfig, Tokenizer};
pub use vocab::{TermId, Vocabulary};
