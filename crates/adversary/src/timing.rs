//! The timing side-channel adversary — an attack the paper does not
//! consider, targeting *when* queries arrive rather than what they say.
//!
//! The `(ε1, ε2)` guarantee assumes the adversary weighs all υ queries of
//! a cycle equally (Equation 2). The engine's log, however, is a timed
//! stream. This adversary:
//!
//! 1. **segments** the stream into candidate cycles by thresholding
//!    inter-arrival gaps ([`segment_by_gap`]) — bursts are trivially
//!    separable from think-time between user actions; and
//! 2. **picks the genuine query** inside each candidate cycle with a
//!    timing heuristic ([`TimingHeuristic`]) — e.g. "first of the burst",
//!    which defeats a naive client that submits the user's query before
//!    generating ghosts.
//!
//! The defense is the pacing scheduler of `toppriv-core::pacing`;
//! experiment `pacing` quantifies attack success against each strategy.

use serde::{Deserialize, Serialize};
use toppriv_core::ScheduledQuery;

/// Which query of a reconstructed cluster the adversary calls genuine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimingHeuristic {
    /// The earliest query of the cluster (a naive client submits the
    /// genuine query first — the user is waiting).
    First,
    /// The latest query of the cluster.
    Last,
    /// The query preceded by the largest gap — machine-generated ghosts
    /// arrive at regular gaps, a human-triggered query does not.
    MaxGapBefore,
}

/// Segments a time-sorted log into clusters: a new cluster starts whenever
/// the gap to the previous query exceeds `gap_threshold_secs`. Returns
/// index clusters into `log`.
pub fn segment_by_gap(log: &[ScheduledQuery], gap_threshold_secs: f64) -> Vec<Vec<usize>> {
    assert!(gap_threshold_secs > 0.0, "threshold must be positive");
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for (i, q) in log.iter().enumerate() {
        let new_cluster = match i.checked_sub(1).map(|p| &log[p]) {
            Some(prev) => q.time_secs - prev.time_secs > gap_threshold_secs,
            None => true,
        };
        if new_cluster {
            clusters.push(vec![i]);
        } else {
            clusters.last_mut().expect("cluster exists").push(i);
        }
    }
    clusters
}

/// Applies a [`TimingHeuristic`] to one cluster; returns the chosen index
/// into `log`.
pub fn guess_genuine(
    log: &[ScheduledQuery],
    cluster: &[usize],
    heuristic: TimingHeuristic,
) -> usize {
    debug_assert!(!cluster.is_empty(), "clusters are non-empty");
    match heuristic {
        TimingHeuristic::First => cluster[0],
        TimingHeuristic::Last => *cluster.last().expect("non-empty"),
        TimingHeuristic::MaxGapBefore => {
            // Only *in-cluster* gaps count: the cluster opener's preceding
            // pause is what triggered the segmentation split and carries no
            // extra signal. The heuristic targets a client that streams
            // ghosts at machine-regular gaps and injects the genuine query
            // whenever the human acts — the irregular gap betrays it.
            let mut best = cluster[0];
            let mut best_gap = 0.0f64;
            for w in cluster.windows(2) {
                let gap = log[w[1]].time_secs - log[w[0]].time_secs;
                if gap > best_gap {
                    best_gap = gap;
                    best = w[1];
                }
            }
            best
        }
    }
}

/// Outcome of a timing attack over a whole log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingAttackReport {
    /// Fraction of true cycles whose genuine query the heuristic found.
    pub identification_rate: f64,
    /// Expected rate of a random guess (mean of 1/|cluster| over the
    /// clusters the heuristic actually guessed from).
    pub chance_rate: f64,
    /// Pairwise clustering precision: of query pairs placed in one
    /// cluster, the fraction truly from the same cycle.
    pub pair_precision: f64,
    /// Pairwise clustering recall: of query pairs truly from the same
    /// cycle, the fraction placed in one cluster.
    pub pair_recall: f64,
    /// Number of clusters the segmentation produced.
    pub num_clusters: usize,
    /// Number of true cycles in the log.
    pub num_cycles: usize,
}

impl TimingAttackReport {
    /// Attack advantage over chance.
    pub fn advantage(&self) -> f64 {
        self.identification_rate - self.chance_rate
    }
}

/// Runs segmentation + identification against a time-sorted log with
/// ground-truth labels and scores the result.
pub fn run_timing_attack(
    log: &[ScheduledQuery],
    gap_threshold_secs: f64,
    heuristic: TimingHeuristic,
) -> TimingAttackReport {
    let clusters = segment_by_gap(log, gap_threshold_secs);
    // Identification: a true cycle is "found" if the heuristic's pick, in
    // the cluster holding the majority of that cycle's queries, is its
    // genuine query.
    let num_cycles = log
        .iter()
        .map(|q| q.cycle_id)
        .collect::<std::collections::HashSet<_>>()
        .len();
    let mut hits = 0usize;
    let mut chance = 0.0f64;
    let mut guessed = 0usize;
    for cluster in &clusters {
        let pick = guess_genuine(log, cluster, heuristic);
        chance += 1.0 / cluster.len() as f64;
        guessed += 1;
        if log[pick].is_genuine {
            hits += 1;
        }
    }
    // Pairwise precision/recall of the segmentation itself.
    let mut same_pred_same_true = 0u64;
    let mut same_pred = 0u64;
    for cluster in &clusters {
        for (a_pos, &a) in cluster.iter().enumerate() {
            for &b in &cluster[a_pos + 1..] {
                same_pred += 1;
                if log[a].cycle_id == log[b].cycle_id {
                    same_pred_same_true += 1;
                }
            }
        }
    }
    let mut same_true = 0u64;
    let mut counts: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
    for q in log {
        *counts.entry(q.cycle_id).or_insert(0) += 1;
    }
    for &n in counts.values() {
        same_true += n * (n - 1) / 2;
    }
    TimingAttackReport {
        identification_rate: hits as f64 / num_cycles.max(1) as f64,
        chance_rate: chance / guessed.max(1) as f64,
        pair_precision: if same_pred == 0 {
            1.0
        } else {
            same_pred_same_true as f64 / same_pred as f64
        },
        pair_recall: if same_true == 0 {
            1.0
        } else {
            same_pred_same_true as f64 / same_true as f64
        },
        num_clusters: clusters.len(),
        num_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(time_secs: f64, cycle_id: usize, is_genuine: bool) -> ScheduledQuery {
        ScheduledQuery {
            time_secs,
            tokens: vec![0],
            is_genuine,
            cycle_id,
        }
    }

    /// Two clean bursts 60s apart, genuine first in each.
    fn two_bursts() -> Vec<ScheduledQuery> {
        vec![
            q(0.0, 0, true),
            q(0.05, 0, false),
            q(0.10, 0, false),
            q(60.0, 1, true),
            q(60.05, 1, false),
            q(60.10, 1, false),
        ]
    }

    #[test]
    fn segmentation_splits_on_large_gaps() {
        let log = two_bursts();
        let clusters = segment_by_gap(&log, 1.0);
        assert_eq!(clusters, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn segmentation_degenerates_with_tiny_threshold() {
        let log = two_bursts();
        let clusters = segment_by_gap(&log, 0.01);
        assert_eq!(clusters.len(), 6, "every query becomes its own cluster");
    }

    #[test]
    fn segmentation_handles_empty_log() {
        assert!(segment_by_gap(&[], 1.0).is_empty());
    }

    #[test]
    fn first_heuristic_beats_naive_client() {
        let log = two_bursts();
        let report = run_timing_attack(&log, 1.0, TimingHeuristic::First);
        assert_eq!(report.identification_rate, 1.0);
        assert!((report.chance_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!(report.advantage() > 0.6);
        assert_eq!(report.pair_precision, 1.0);
        assert_eq!(report.pair_recall, 1.0);
    }

    #[test]
    fn last_heuristic_fails_on_naive_client() {
        let log = two_bursts();
        let report = run_timing_attack(&log, 1.0, TimingHeuristic::Last);
        assert_eq!(report.identification_rate, 0.0);
    }

    #[test]
    fn max_gap_before_finds_post_pause_query() {
        // Ghosts trail at 0.05s; the genuine query of cycle 1 arrives
        // after a 60s think-time pause but within the cluster threshold
        // used by the adversary? No — here the genuine query follows a
        // 2s in-cluster pause while ghosts hum at 0.05s.
        let log = vec![
            q(0.0, 0, false),
            q(0.05, 0, false),
            q(2.05, 0, true),
            q(2.10, 0, false),
        ];
        let report = run_timing_attack(&log, 5.0, TimingHeuristic::MaxGapBefore);
        assert_eq!(report.identification_rate, 1.0);
    }

    #[test]
    fn merged_cycles_hurt_precision() {
        // Two cycles interleaved within one burst window: segmentation
        // cannot split them, so pairwise precision drops below 1.
        let log = vec![
            q(0.0, 0, true),
            q(0.02, 1, true),
            q(0.04, 0, false),
            q(0.06, 1, false),
        ];
        let report = run_timing_attack(&log, 1.0, TimingHeuristic::First);
        assert_eq!(report.num_clusters, 1);
        assert!(report.pair_precision < 0.5);
        assert_eq!(report.pair_recall, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_threshold() {
        segment_by_gap(&[], 0.0);
    }
}
