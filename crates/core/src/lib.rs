//! # toppriv-core
//!
//! The paper's primary contribution: the `(ε1, ε2)`-privacy model for
//! topical intention in text search, and the TopPriv algorithm that
//! enforces it by injecting semantically coherent ghost queries — all
//! purely client-side, with no changes to the search engine.
//!
//! ## Components
//!
//! - [`BeliefEngine`]: prior `Pr(t)`, posterior `Pr(t|q)`, and boost
//!   `B(t|q) = Pr(t|q) − Pr(t)` computations (Section IV-A/B).
//! - [`PrivacyRequirement`]: the `(ε1, ε2)` model (Definitions 1–4).
//! - [`GhostGenerator`]: topic-cognizant ghost query generation
//!   (Section IV-C).
//! - [`TrustedClient`]: the client module of Figure 1 — mixes the cycle,
//!   submits it, filters ghost results.
//! - [`metrics`]: exposure / mask-level / rank metrics of Section V-A.
//!
//! ## Example
//!
//! ```no_run
//! use toppriv_core::{BeliefEngine, GhostConfig, GhostGenerator, PrivacyRequirement};
//! # let model: std::sync::Arc<tsearch_lda::LdaModel> = unimplemented!();
//!
//! let generator = GhostGenerator::new(
//!     BeliefEngine::new(model.clone()),
//!     PrivacyRequirement::paper_default(), // ε1 = 5%, ε2 = 1%
//!     GhostConfig::default(),
//! );
//! let result = generator.generate(&[17, 42, 256]);
//! assert!(result.metrics.exposure <= result.metrics.mask_level);
//! ```

pub mod belief;
pub mod client;
pub mod ghost;
pub mod history;
pub mod metrics;
pub mod oblivious;
pub mod pacing;
pub mod privacy;

pub use belief::BeliefEngine;
pub use client::{PrivateSearchResult, TrustedClient};
pub use ghost::{CycleQuery, CycleResult, GhostConfig, GhostGenerator, TermSelection};
pub use history::{SessionTracker, TraceReport};
pub use metrics::{
    exposure, intention_ranks, mask_level, max_rank_of_intention, semantic_coherence,
    substitute_in_cycle_boosts, PrivacyMetrics,
};
pub use oblivious::{oblivious_fetch, CommutativeKey, ObliviousClient, ObliviousServer};
pub use pacing::{
    merge_schedules, PacingConfig, PacingScheduler, PacingStrategy, ScheduledQuery,
    M_PACING_GAP_US, M_PACING_GENUINE_DELAY_US,
};
pub use privacy::{PrivacyCertificate, PrivacyModelError, PrivacyRequirement};
