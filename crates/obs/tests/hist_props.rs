//! Property tests: histogram percentiles track exact sorted-sample
//! percentiles within the documented relative error.

use proptest::prelude::*;
use toppriv_obs::{Histogram, RELATIVE_ERROR};

/// Exact nearest-rank percentile over a sorted copy of `values`.
fn exact_percentile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let rank = ((n as f64 * q).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// The histogram reports the representative of the bucket holding the
/// exact value, so it must sit within one bucket width of it.
fn assert_within_bound(approx: u64, exact: u64, q: f64) {
    let bound = (exact as f64 * RELATIVE_ERROR).max(1.0);
    let err = approx.abs_diff(exact) as f64;
    assert!(
        err <= bound,
        "q={q}: histogram {approx} vs exact {exact} (err {err} > bound {bound})"
    );
}

proptest! {
    #[test]
    fn percentiles_match_exact_small_values(
        values in proptest::collection::vec(0u64..256, 1..400)
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
            assert_within_bound(h.percentile(q), exact_percentile(&values, q), q);
        }
    }

    #[test]
    fn percentiles_match_exact_wide_range(
        values in proptest::collection::vec(0u64..10_000_000, 1..400)
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        for q in [0.05, 0.50, 0.95, 0.99] {
            assert_within_bound(h.percentile(q), exact_percentile(&values, q), q);
        }
    }

    #[test]
    fn percentiles_match_exact_heavy_tail(
        small in proptest::collection::vec(1u64..100, 1..200),
        large in proptest::collection::vec(1_000_000u64..1_000_000_000, 1..20)
    ) {
        let mut values = small.clone();
        values.extend(&large);
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        for q in [0.50, 0.90, 0.99, 1.0] {
            assert_within_bound(h.percentile(q), exact_percentile(&values, q), q);
        }
    }

    #[test]
    fn count_sum_min_max_are_exact(
        values in proptest::collection::vec(0u64..1_000_000, 1..300)
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
    }

    #[test]
    fn merge_equals_recording_union(
        a in proptest::collection::vec(0u64..1_000_000, 1..150),
        b in proptest::collection::vec(0u64..1_000_000, 1..150)
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hu = Histogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.sum(), hu.sum());
        for q in [0.25, 0.50, 0.75, 0.99] {
            prop_assert_eq!(ha.percentile(q), hu.percentile(q));
        }
    }
}
