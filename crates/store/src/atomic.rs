//! Crash-safe file replacement: write-to-temp, fsync, rename.
//!
//! A reader never observes a half-written artifact: either the old file
//! (or nothing) or the complete new file is visible. Stale temp files
//! from interrupted writers are ignored by readers (they never match the
//! final name) and reclaimed by [`sweep_temp_files`].

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Suffix marking in-flight writes.
const TMP_SUFFIX: &str = ".tps-tmp";

/// Atomically replaces `path` with `bytes`.
///
/// The data is written to a sibling temp file, flushed and fsynced, then
/// renamed over `path` (atomic on POSIX within one filesystem). The
/// containing directory is fsynced afterwards so the rename itself
/// survives a crash.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir)?;
    }
    let tmp = temp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    match fs::rename(&tmp, path) {
        Ok(()) => {}
        Err(e) => {
            // Do not leave the temp file behind on failure.
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
    }
    if let Some(dir) = dir {
        // Persist the directory entry; best-effort on filesystems that
        // do not support directory fsync.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The temp-file name used for `path`.
fn temp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".{}{}", std::process::id(), TMP_SUFFIX));
    path.with_file_name(name)
}

/// Removes leftover temp files (interrupted writers) under `dir`.
/// Returns how many were removed. Non-recursive.
pub fn sweep_temp_files(dir: &Path) -> io::Result<usize> {
    let mut removed = 0;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if name.to_string_lossy().ends_with(TMP_SUFFIX) && entry.file_type()?.is_file() {
            fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsearch-store-test-{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_read() {
        let dir = scratch("write");
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"abc").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"abc");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replaces_existing_content() {
        let dir = scratch("replace");
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"old contents here").unwrap();
        atomic_write(&path, b"new").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn creates_missing_directories() {
        let dir = scratch("mkdirs");
        let path = dir.join("a/b/c/artifact.bin");
        atomic_write(&path, b"x").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"x");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_temp_residue_after_success() {
        let dir = scratch("residue");
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"x").unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(TMP_SUFFIX))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_removes_stale_temp_files() {
        let dir = scratch("sweep");
        fs::write(dir.join(format!("orphan.{}{}", 12345, TMP_SUFFIX)), b"junk").unwrap();
        fs::write(dir.join("keep.bin"), b"data").unwrap();
        let removed = sweep_temp_files(&dir).unwrap();
        assert_eq!(removed, 1);
        assert!(dir.join("keep.bin").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
