//! The newline-delimited JSON protocol of `toppriv-serve`.
//!
//! One request per line in, one response per line out, over stdin/stdout
//! or a TCP connection. Shapes (externally tagged on `op` / `status`):
//!
//! ```json
//! {"op":{"Open":{"session":"alice","eps1":0.05,"eps2":0.01}}}
//! {"op":{"Search":{"session":"alice","query":"apache helicopter","k":10}}}
//! {"op":"Metrics"}
//! {"op":"MetricsNdjson"}
//! {"op":"MetricsProm"}
//! {"op":"Health"}
//! {"op":{"AuditTail":{"limit":16}}}
//! {"op":{"Close":{"session":"alice"}}}
//! ```
//!
//! `Metrics` returns the structured [`MetricsSnapshot`] (unchanged since
//! PR 1, so existing clients keep working); `MetricsNdjson` and
//! `MetricsProm` render the manager's full metrics *registry* — every
//! named counter/gauge/histogram, per-shard labels included — as NDJSON
//! lines and Prometheus text respectively.

use crate::metrics::{MetricsSnapshot, SessionMetrics};
use serde::{Deserialize, Serialize};

/// A client request line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// The operation to perform.
    pub op: Op,
}

/// Protocol operations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Op {
    /// Opens a session, optionally with explicit `(ε1, ε2)` thresholds.
    Open {
        /// Session id (tenant-chosen).
        session: String,
        /// Relevance threshold ε1 (default: the paper's 5%).
        eps1: Option<f64>,
        /// Exposure threshold ε2 (default: the paper's 1%).
        eps2: Option<f64>,
    },
    /// Runs one private search in a session.
    Search {
        /// Session id.
        session: String,
        /// Query text.
        query: String,
        /// Results wanted. Omitted or `0` both mean "use the session's
        /// configured `top_k`" — `0` is a sentinel, not a request for
        /// zero results.
        k: Option<usize>,
    },
    /// Reads the full metrics snapshot.
    Metrics,
    /// Dumps the metrics registry as NDJSON lines (one serialized
    /// metric per line).
    MetricsNdjson,
    /// Dumps the metrics registry in the Prometheus text format.
    MetricsProm,
    /// Reads the privacy-audit plane's aggregated health verdict
    /// (requires an attached auditor; errors otherwise).
    Health,
    /// Reads the most recent privacy-audit journal events.
    AuditTail {
        /// Maximum events to return (omitted means 32).
        limit: Option<usize>,
    },
    /// Closes a session, returning its final metrics.
    Close {
        /// Session id.
        session: String,
    },
}

/// One result hit on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HitDto {
    /// Document id.
    pub doc_id: u32,
    /// Relevance score.
    pub score: f64,
}

/// Privacy accounting of one answered search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchReportDto {
    /// Cycle length υ (genuine + ghosts).
    pub cycle_len: usize,
    /// `max_{t∈U} B(t|C)`.
    pub exposure: f64,
    /// `max_{t∈T\U} B(t|C)`.
    pub mask_level: f64,
    /// Whether the `(ε1, ε2)` requirement held.
    pub satisfied: bool,
    /// Protected intention topics.
    pub intention: Vec<usize>,
    /// Cycle members served from the result cache.
    pub cache_hits: usize,
}

/// A server response line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Session opened.
    Opened {
        /// Session id.
        session: String,
    },
    /// Search answered.
    Results {
        /// Genuine hits (ghost results never leave the service).
        hits: Vec<HitDto>,
        /// Privacy accounting.
        report: SearchReportDto,
    },
    /// Metrics snapshot.
    Metrics(MetricsSnapshot),
    /// Registry dump, one JSON-encoded metric per element (each element
    /// parses as a `toppriv_obs::MetricSnapshot`).
    MetricsNdjson {
        /// The NDJSON lines.
        lines: Vec<String>,
    },
    /// Registry dump in Prometheus text form.
    MetricsProm {
        /// The exposition text.
        text: String,
    },
    /// Audit-plane health verdict.
    Health(toppriv_obs::HealthReport),
    /// Most recent audit-journal events, oldest first.
    AuditTail {
        /// The journal tail.
        events: Vec<toppriv_obs::AuditEvent>,
    },
    /// Session closed; final per-session metrics.
    Closed(SessionMetrics),
    /// Any failure.
    Error {
        /// Human-readable cause.
        message: String,
    },
}
