//! Attack evaluation: runs attacks over a batch of protected cycles and
//! aggregates success rates against ground truth.

use crate::attacks::{CoherenceAttack, ExposureRankAttack, ProbingAttack, TermEliminationAttack};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use toppriv_core::CycleResult;
use tsearch_lda::LdaModel;
use tsearch_text::TermId;

/// Aggregated outcome of one attack over many cycles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackReport {
    /// Attack name.
    pub attack: String,
    /// Fraction of trials where the attack succeeded (meaning depends on
    /// the attack; see each runner).
    pub success_rate: f64,
    /// Expected success rate of uninformed guessing.
    pub chance_rate: f64,
    /// Number of cycles evaluated.
    pub trials: usize,
}

impl AttackReport {
    /// The attack's advantage over guessing (≤ 0 means no advantage).
    pub fn advantage(&self) -> f64 {
        self.success_rate - self.chance_rate
    }
}

/// Jaccard similarity of two topic sets.
pub fn jaccard(a: &[usize], b: &[usize]) -> f64 {
    let sa: std::collections::HashSet<usize> = a.iter().copied().collect();
    let sb: std::collections::HashSet<usize> = b.iter().copied().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    if union == 0.0 {
        1.0 // both empty: identical
    } else {
        inter / union
    }
}

/// Runs the coherence attack over cycles: success = genuine query
/// identified exactly. Chance = mean 1/υ.
pub fn run_coherence_attack(model: &Arc<LdaModel>, cycles: &[CycleResult]) -> AttackReport {
    let attack = CoherenceAttack::new(model.clone());
    let mut hits = 0usize;
    let mut chance = 0.0;
    for c in cycles {
        let tokens = c.cycle_tokens();
        if attack.guess_genuine(&tokens) == c.genuine_index {
            hits += 1;
        }
        chance += 1.0 / c.cycle_len() as f64;
    }
    AttackReport {
        attack: "coherence (discount ghost queries)".into(),
        success_rate: rate(hits, cycles.len()),
        chance_rate: chance / cycles.len().max(1) as f64,
        trials: cycles.len(),
    }
}

/// Runs the exposure-rank attack: success = the guessed top-m topic set
/// contains *all* genuine intention topics. Chance = probability of that
/// under uniform topic guessing.
pub fn run_exposure_attack(
    model: &Arc<LdaModel>,
    cycles: &[CycleResult],
    guess_m: usize,
) -> AttackReport {
    let attack = ExposureRankAttack::new(model.clone(), guess_m);
    let k = model.num_topics();
    let mut hits = 0usize;
    let mut chance_sum = 0.0;
    let mut scored = 0usize;
    for c in cycles {
        if c.intention.is_empty() {
            continue;
        }
        scored += 1;
        let guess = attack.guess_intention(&c.cycle_tokens());
        if c.intention.iter().all(|t| guess.contains(t)) {
            hits += 1;
        }
        // Chance of covering |U| specific topics when picking m of K
        // uniformly: C(K-|U|, m-|U|) / C(K, m).
        chance_sum += hypergeom_cover(k, c.intention.len(), guess_m);
    }
    AttackReport {
        attack: format!("exposure rank (top-{guess_m} topics)"),
        success_rate: rate(hits, scored),
        chance_rate: chance_sum / scored.max(1) as f64,
        trials: scored,
    }
}

/// Runs the term-elimination attack: success measured as Jaccard overlap
/// between the recovered intention and the true one (averaged). Chance is
/// the expected Jaccard of a random same-size guess (approximated as
/// |U| / K for small sets).
pub fn run_term_elimination_attack(
    model: &Arc<LdaModel>,
    cycles: &[CycleResult],
    topics_to_discount: usize,
    word_pool: usize,
    eps1_guess: f64,
) -> AttackReport {
    let attack =
        TermEliminationAttack::new(model.clone(), topics_to_discount, word_pool, eps1_guess);
    let mut total = 0.0;
    let mut scored = 0usize;
    let mut chance = 0.0;
    for c in cycles {
        if c.intention.is_empty() {
            continue;
        }
        scored += 1;
        let recovered = attack.recover_intention(&c.cycle_tokens());
        total += jaccard(&recovered, &c.intention);
        chance += c.intention.len() as f64 / model.num_topics() as f64;
    }
    AttackReport {
        attack: "term elimination".into(),
        success_rate: total / scored.max(1) as f64,
        chance_rate: chance / scored.max(1) as f64,
        trials: scored,
    }
}

/// Runs the probing/replay attack: success = genuine query identified.
pub fn run_probing_attack(
    model: &Arc<LdaModel>,
    cycles: &[CycleResult],
    requirement: toppriv_core::PrivacyRequirement,
    replays: usize,
) -> AttackReport {
    let attack = ProbingAttack::new(model.clone(), requirement, replays);
    let mut hits = 0usize;
    let mut chance = 0.0;
    for c in cycles {
        let tokens: Vec<&[TermId]> = c.cycle_tokens();
        if attack.guess_genuine(&tokens) == c.genuine_index {
            hits += 1;
        }
        chance += 1.0 / c.cycle_len() as f64;
    }
    AttackReport {
        attack: "probing (replay ghost generation)".into(),
        success_rate: rate(hits, cycles.len()),
        chance_rate: chance / cycles.len().max(1) as f64,
        trials: cycles.len(),
    }
}

fn rate(hits: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Probability that a uniform m-subset of K topics covers a fixed u-subset.
fn hypergeom_cover(k: usize, u: usize, m: usize) -> f64 {
    if u > m || u > k {
        return 0.0;
    }
    // C(K-u, m-u) / C(K, m) = prod_{i=0..u-1} (m-i)/(K-i)
    let mut p = 1.0;
    for i in 0..u {
        p *= (m - i) as f64 / (k - i) as f64;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(jaccard(&[1], &[2]), 0.0);
        assert!((jaccard(&[1, 2], &[2, 3]) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn hypergeom_cover_sane() {
        assert_eq!(hypergeom_cover(10, 0, 3), 1.0);
        assert!((hypergeom_cover(10, 1, 3) - 0.3).abs() < 1e-12);
        assert_eq!(hypergeom_cover(10, 4, 3), 0.0);
        // u=2, m=3, K=4: 3/4 * 2/3 = 1/2.
        assert!((hypergeom_cover(4, 2, 3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn report_advantage() {
        let r = AttackReport {
            attack: "x".into(),
            success_rate: 0.4,
            chance_rate: 0.25,
            trials: 100,
        };
        assert!((r.advantage() - 0.15).abs() < 1e-12);
    }
}
