//! Microbenchmarks of the baselines: PDX embellishment (per query, by
//! expansion factor), TrackMeNot ghost generation, and thesaurus build.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use toppriv_baselines::{
    PdxConfig, PdxEmbellisher, Thesaurus, ThesaurusConfig, TrackMeNot, TrackMeNotConfig,
};
use toppriv_bench::Scale;
use tsearch_corpus::{generate_workload, SyntheticCorpus, WorkloadConfig};

fn fixture() -> (SyntheticCorpus, Vec<Vec<u32>>, Thesaurus, Vec<f64>) {
    let corpus = SyntheticCorpus::generate(Scale::quick().corpus);
    let queries: Vec<Vec<u32>> = generate_workload(
        &corpus,
        &WorkloadConfig {
            num_queries: 32,
            ..WorkloadConfig::default()
        },
    )
    .into_iter()
    .map(|q| q.tokens)
    .collect();
    let docs = corpus.token_docs();
    let thesaurus = Thesaurus::build(&docs, corpus.vocab.len(), ThesaurusConfig::default());
    let num_docs = corpus.num_docs();
    let idfs: Vec<f64> = (0..corpus.vocab.len() as u32)
        .map(|t| corpus.vocab.idf(t, num_docs))
        .collect();
    (corpus, queries, thesaurus, idfs)
}

fn bench_pdx(c: &mut Criterion) {
    let (_corpus, queries, thesaurus, idfs) = fixture();
    let mut group = c.benchmark_group("pdx_embellish");
    for &factor in &[2usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, &f| {
            let pdx = PdxEmbellisher::new(
                &thesaurus,
                idfs.clone(),
                PdxConfig {
                    expansion_factor: f,
                    ..PdxConfig::default()
                },
            );
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(pdx.embellish(q))
            })
        });
    }
    group.finish();
}

fn bench_trackmenot(c: &mut Criterion) {
    let (corpus, queries, _thesaurus, _idfs) = fixture();
    c.bench_function("trackmenot_cycle", |b| {
        let tmn = TrackMeNot::new(corpus.vocab.len(), TrackMeNotConfig::default());
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(tmn.cycle(q))
        })
    });
}

fn bench_thesaurus_build(c: &mut Criterion) {
    let corpus = SyntheticCorpus::generate(Scale::quick().corpus);
    let docs = corpus.token_docs();
    let mut group = c.benchmark_group("thesaurus_build");
    group.sample_size(10);
    group.bench_function("quick_corpus", |b| {
        b.iter(|| {
            black_box(Thesaurus::build(
                &docs,
                corpus.vocab.len(),
                ThesaurusConfig::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pdx, bench_trackmenot, bench_thesaurus_build);
criterion_main!(benches);
