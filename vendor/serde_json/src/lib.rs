//! Offline stand-in for `serde_json`: prints and parses the [`serde`]
//! stand-in's [`Value`] tree as JSON. Provides the call surface this
//! workspace uses: `to_string[_pretty]`, `to_vec[_pretty]`, `from_str`,
//! `from_slice`, and a `json-error`-compatible [`Error`] type.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Serialization/parse failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serializes to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats distinguishable as floats.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                // JSON has no Inf/NaN; serde_json writes null.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Seq(items) => write_block(out, indent, level, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, level + 1);
        }),
        Value::Map(entries) => {
            write_block(out, indent, level, '{', '}', entries.len(), |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, level + 1);
            })
        }
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        item(out, i);
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Parses a type from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_complete(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses a type from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

/// Parses a raw [`Value`] from a JSON string.
pub fn value_from_str(s: &str) -> Result<Value> {
    parse_value_complete(s)
}

fn parse_value_complete(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => expect_literal(b, pos, "null").map(|_| Value::Null),
        Some(b't') => expect_literal(b, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => expect_literal(b, pos, "false").map(|_| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn expect_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<()> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("digits are UTF-8");
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error(format!("invalid number '{text}' at byte {start}")))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let first = parse_hex4(b, pos)?;
                        let c = if (0xD800..0xDC00).contains(&first) {
                            // Surrogate pair: expect \uXXXX low half.
                            if b.get(*pos + 1) != Some(&b'\\') || b.get(*pos + 2) != Some(&b'u') {
                                return Err(Error("lone high surrogate".into()));
                            }
                            *pos += 2;
                            let second = parse_hex4(b, pos)?;
                            let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| Error("bad surrogate pair".into()))?
                        } else {
                            char::from_u32(first)
                                .ok_or_else(|| Error("bad unicode escape".into()))?
                        };
                        out.push(c);
                    }
                    _ => return Err(Error(format!("bad escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| Error(e.to_string()))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parses the 4 hex digits after `\u`; leaves `pos` on the last digit.
fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32> {
    let start = *pos + 1;
    let end = start + 4;
    if end > b.len() {
        return Err(Error("truncated unicode escape".into()));
    }
    let hex = std::str::from_utf8(&b[start..end]).map_err(|e| Error(e.to_string()))?;
    let v = u32::from_str_radix(hex, 16).map_err(|_| Error("bad hex escape".into()))?;
    *pos = end - 1;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::Map(vec![
            ("name".into(), Value::String("ghost \"q\"\n".into())),
            ("count".into(), Value::UInt(42)),
            ("neg".into(), Value::Int(-7)),
            ("score".into(), Value::Float(0.25)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "items".into(),
                Value::Seq(vec![Value::UInt(1), Value::UInt(2)]),
            ),
        ]);
        let compact = {
            let mut s = String::new();
            super::write_value(&mut s, &v, None, 0);
            s
        };
        assert_eq!(value_from_str(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            super::write_value(&mut s, &v, Some(2), 0);
            s
        };
        assert_eq!(value_from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn typed_roundtrip() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        m.insert("a".into(), vec![1, 2, 3]);
        m.insert("b".into(), vec![]);
        let bytes = to_vec_pretty(&m).unwrap();
        let back: BTreeMap<String, Vec<u32>> = from_slice(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("12 trailing").is_err());
        assert!(from_str::<u32>("\"unterminated").is_err());
        assert!(from_str::<u32>("-1").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "é😀");
    }
}
