//! Session-level (trace-wide) privacy — an extension beyond the paper.
//!
//! The paper certifies each query's cycle in isolation. An adversary who
//! aggregates belief **across a whole session** (Equation 2 applied to the
//! full query log) can still accumulate evidence when the user keeps
//! querying the same topic: every cycle adds `Pr(t|qu)/υ` of fresh mass on
//! the genuine topic, while each cycle's masking topics are freshly
//! random and average out.
//!
//! [`SessionTracker`] implements that aggregating adversary, and
//! [`GhostGenerator::generate_with_history`] extends the TopPriv loop to
//! certify `B(t | history ∪ C) ≤ ε2` — i.e. `(ε1, ε2)`-privacy over the
//! entire trace rather than per cycle.

use crate::belief::BeliefEngine;
use crate::ghost::{CycleResult, GhostGenerator};
use crate::metrics::exposure;
use serde::{Deserialize, Serialize};
use tsearch_text::TermId;

/// The aggregating adversary's view of one user's whole trace.
#[derive(Debug, Clone, Default)]
pub struct SessionTracker {
    /// Per-query posteriors of every query the engine has seen from this
    /// user, in arrival order (ghosts included — the adversary cannot
    /// tell them apart).
    posteriors: Vec<Vec<f64>>,
    /// Ground truth: indices in `posteriors` that were genuine (for
    /// evaluation only).
    genuine: Vec<usize>,
}

/// Summary of trace-level leakage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceReport {
    /// `B(t | whole trace)` for every topic.
    pub trace_boosts: Vec<f64>,
    /// `max_{t∈U} B(t|trace)` for the union of all genuine intentions.
    pub trace_exposure: f64,
    /// Number of queries observed.
    pub queries_seen: usize,
}

impl SessionTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a tracker from previously spilled parts (see
    /// [`SessionTracker::posteriors`] and [`SessionTracker::genuine`]).
    /// Genuine indices outside `posteriors` are rejected as corrupt.
    pub fn from_parts(posteriors: Vec<Vec<f64>>, genuine: Vec<usize>) -> Option<Self> {
        if genuine.iter().any(|&g| g >= posteriors.len()) {
            return None;
        }
        Some(Self {
            posteriors,
            genuine,
        })
    }

    /// Ground-truth genuine indices into [`SessionTracker::posteriors`]
    /// (evaluation and spill/restore only — a real adversary never sees
    /// these).
    pub fn genuine(&self) -> &[usize] {
        &self.genuine
    }

    /// Records one protected cycle (in its shuffled submission order).
    pub fn record_cycle(&mut self, belief: &BeliefEngine, result: &CycleResult) {
        for (i, q) in result.cycle.iter().enumerate() {
            if q.is_genuine {
                self.genuine.push(self.posteriors.len() + i);
            }
        }
        for q in &result.cycle {
            self.posteriors.push(belief.posterior(&q.tokens));
        }
    }

    /// Records one protected cycle from **already-inferred** per-member
    /// posteriors (aligned with `result.cycle`). Equivalent to
    /// [`SessionTracker::record_cycle`] when the posteriors came from the
    /// same belief engine — inference is deterministic — but lets callers
    /// that already hold the posteriors (the service's plan/commit split,
    /// or a planner that substituted members with cross-tenant donors)
    /// account the cycle without inferring every member a second time.
    pub fn record_cycle_posteriors(&mut self, result: &CycleResult, posteriors: &[Vec<f64>]) {
        assert_eq!(
            result.cycle.len(),
            posteriors.len(),
            "posteriors must align with the cycle members"
        );
        for (i, q) in result.cycle.iter().enumerate() {
            if q.is_genuine {
                self.genuine.push(self.posteriors.len() + i);
            }
        }
        self.posteriors.extend(posteriors.iter().cloned());
    }

    /// Records a single unprotected query.
    pub fn record_plain(&mut self, belief: &BeliefEngine, tokens: &[TermId]) {
        self.genuine.push(self.posteriors.len());
        self.posteriors.push(belief.posterior(tokens));
    }

    /// Number of queries observed so far.
    pub fn len(&self) -> usize {
        self.posteriors.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.posteriors.is_empty()
    }

    /// The per-query posteriors accumulated so far (the adversary's raw
    /// material; also what history-aware generation consumes).
    pub fn posteriors(&self) -> &[Vec<f64>] {
        &self.posteriors
    }

    /// Trace-level boosts `B(t | q1..qn)` per Equation (2) over the whole
    /// log.
    pub fn trace_boosts(&self, belief: &BeliefEngine) -> Vec<f64> {
        if self.posteriors.is_empty() {
            return vec![0.0; belief.num_topics()];
        }
        belief.cycle_boost(&self.posteriors)
    }

    /// Full trace report against a set of intention topics.
    pub fn report(&self, belief: &BeliefEngine, intention: &[usize]) -> TraceReport {
        let trace_boosts = self.trace_boosts(belief);
        TraceReport {
            trace_exposure: exposure(&trace_boosts, intention),
            queries_seen: self.posteriors.len(),
            trace_boosts,
        }
    }
}

impl GhostGenerator {
    /// Session-aware variant of [`GhostGenerator::generate`]: the
    /// stopping rule certifies `B(t | history ∪ C) ≤ ε2` for all
    /// `t ∈ U`, so the *whole trace* (as aggregated by Equation 2) stays
    /// innocuous, not just the current cycle.
    ///
    /// Implementation note: the trace posterior is the mean over
    /// `history ∪ C`; the loop re-evaluates it after each candidate ghost
    /// exactly like the per-cycle algorithm.
    pub fn generate_with_history(
        &self,
        user_tokens: &[TermId],
        history: &[Vec<f64>],
    ) -> CycleResult {
        // Reuse the per-cycle machinery, then extend with history-aware
        // ghosts if the trace condition is still violated.
        let mut result = self.generate(user_tokens);
        if history.is_empty() {
            return result;
        }
        let belief = self.belief();
        let requirement = self.requirement();
        // Posteriors of the current cycle.
        let mut combined: Vec<Vec<f64>> = history.to_vec();
        for q in &result.cycle {
            combined.push(belief.posterior(&q.tokens));
        }
        let mut trace_boosts = belief.cycle_boost(&combined);
        if requirement.is_satisfied(&trace_boosts, &result.intention) {
            result.cycle_boosts = trace_boosts;
            result.metrics.exposure = exposure(&result.cycle_boosts, &result.intention);
            return result;
        }
        // Keep adding ghosts (fixed-target mode, one at a time) until the
        // trace condition holds or the cycle cap is reached.
        let cap = 64usize;
        while result.cycle_len() < cap {
            let target = result.cycle_len() + 1;
            let extended = self.generate_with_target(user_tokens, target);
            if extended.cycle_len() <= result.cycle_len() {
                break; // cannot grow further
            }
            result = extended;
            combined = history.to_vec();
            for q in &result.cycle {
                combined.push(belief.posterior(&q.tokens));
            }
            trace_boosts = belief.cycle_boost(&combined);
            if requirement.is_satisfied(&trace_boosts, &result.intention) {
                break;
            }
        }
        result.satisfied = requirement.is_satisfied(&trace_boosts, &result.intention);
        result.cycle_boosts = trace_boosts;
        result.metrics.exposure = exposure(&result.cycle_boosts, &result.intention);
        result.metrics.cycle_len = result.cycle_len();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghost::GhostConfig;
    use crate::privacy::PrivacyRequirement;
    use tsearch_lda::{LdaConfig, LdaModel, LdaTrainer};

    fn trained_model() -> std::sync::Arc<LdaModel> {
        let mut docs = Vec::new();
        for d in 0..120u32 {
            let base = (d % 4) * 8;
            docs.push((0..40).map(|i| base + (i % 8)).collect::<Vec<TermId>>());
        }
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        std::sync::Arc::new(LdaTrainer::train(
            &refs,
            32,
            LdaConfig {
                iterations: 80,
                alpha: Some(0.3),
                ..LdaConfig::with_topics(4)
            },
        ))
    }

    #[test]
    fn unprotected_trace_accumulates_exposure() {
        let model = trained_model();
        let belief = BeliefEngine::new(model.clone());
        let mut tracker = SessionTracker::new();
        let intention: Vec<usize> = {
            let boosts = belief.boost(&[0, 1, 2, 3]);
            (0..4).filter(|&t| boosts[t] > 0.1).collect()
        };
        let mut prev = 0.0;
        for _ in 0..5 {
            tracker.record_plain(&belief, &[0, 1, 2, 3]);
            let r = tracker.report(&belief, &intention);
            assert!(r.trace_exposure >= prev - 1e-9, "exposure never drops");
            prev = r.trace_exposure;
        }
        assert!(prev > 0.05, "repeated same-topic queries leak: {prev}");
    }

    #[test]
    fn per_cycle_protection_still_leaks_over_a_session() {
        // Protect each query per-cycle, then aggregate: the trace exposure
        // typically sits above a freshly certified single cycle because
        // genuine mass accumulates while masks rotate.
        let model = trained_model();
        let belief = BeliefEngine::new(model.clone());
        let requirement = PrivacyRequirement::new(0.10, 0.02).unwrap();
        let generator = GhostGenerator::new(
            BeliefEngine::new(model.clone()),
            requirement,
            GhostConfig::default(),
        );
        let mut protected = SessionTracker::new();
        let mut unprotected = SessionTracker::new();
        let mut intention = Vec::new();
        for i in 0..6 {
            // Slight per-query variation, same topic block.
            let q: Vec<TermId> = vec![i % 8, (i + 1) % 8, (i + 2) % 8, (i + 3) % 8];
            let result = generator.generate(&q);
            if i == 0 {
                intention = result.intention.clone();
            }
            protected.record_cycle(&belief, &result);
            unprotected.record_plain(&belief, &q);
        }
        let protected_report = protected.report(&belief, &intention);
        let unprotected_report = unprotected.report(&belief, &intention);
        assert_eq!(protected_report.queries_seen, protected.len());
        // Protection must reduce trace-level exposure dramatically; the
        // unprotected same-topic session leaks heavily.
        assert!(
            protected_report.trace_exposure < unprotected_report.trace_exposure,
            "protected {} vs unprotected {}",
            protected_report.trace_exposure,
            unprotected_report.trace_exposure
        );
        assert!(unprotected_report.trace_exposure > 0.05);
    }

    #[test]
    fn history_aware_generation_caps_trace_exposure() {
        let model = trained_model();
        let belief = BeliefEngine::new(model.clone());
        let requirement = PrivacyRequirement::new(0.10, 0.03).unwrap();
        let generator = GhostGenerator::new(
            BeliefEngine::new(model.clone()),
            requirement,
            GhostConfig::default(),
        );
        let mut tracker = SessionTracker::new();
        let mut all_satisfied = true;
        for i in 0..5 {
            let q: Vec<TermId> = vec![i % 8, (i + 1) % 8, (i + 2) % 8];
            let result = generator.generate_with_history(&q, tracker.posteriors());
            all_satisfied &= result.satisfied;
            tracker.record_cycle(&belief, &result);
            if result.satisfied && !result.intention.is_empty() {
                // The reported boosts ARE the trace boosts; check against
                // the tracker's own aggregation.
                let trace = tracker.trace_boosts(&belief);
                let e = exposure(&trace, &result.intention);
                assert!(
                    e <= requirement.eps2 + 1e-9,
                    "step {i}: trace exposure {e} above eps2"
                );
            }
        }
        assert!(all_satisfied, "history-aware mode should keep satisfying");
    }

    #[test]
    fn empty_history_is_equivalent_to_plain_generate() {
        let model = trained_model();
        let generator = GhostGenerator::new(
            BeliefEngine::new(model.clone()),
            PrivacyRequirement::new(0.10, 0.05).unwrap(),
            GhostConfig::default(),
        );
        let a = generator.generate(&[0, 1, 2]);
        let b = generator.generate_with_history(&[0, 1, 2], &[]);
        assert_eq!(a.cycle_len(), b.cycle_len());
        for (qa, qb) in a.cycle.iter().zip(&b.cycle) {
            assert_eq!(qa.tokens, qb.tokens);
        }
    }

    #[test]
    fn tracker_bookkeeping() {
        let model = trained_model();
        let belief = BeliefEngine::new(model.clone());
        let mut tracker = SessionTracker::new();
        assert!(tracker.is_empty());
        tracker.record_plain(&belief, &[0, 1]);
        assert_eq!(tracker.len(), 1);
        let boosts = tracker.trace_boosts(&belief);
        assert_eq!(boosts.len(), 4);
        let sum: f64 = boosts.iter().sum();
        assert!(sum.abs() < 1e-9);
    }

    #[test]
    fn record_cycle_posteriors_matches_record_cycle() {
        // Recording from pre-inferred posteriors must produce exactly the
        // state record_cycle builds by inferring each member itself.
        let model = trained_model();
        let belief = BeliefEngine::new(model.clone());
        let generator = GhostGenerator::new(
            BeliefEngine::new(model.clone()),
            PrivacyRequirement::new(0.10, 0.03).unwrap(),
            GhostConfig::default(),
        );
        let result = generator.generate(&[0, 1, 2]);
        let posteriors: Vec<Vec<f64>> = result
            .cycle
            .iter()
            .map(|q| belief.posterior(&q.tokens))
            .collect();
        let mut inferred = SessionTracker::new();
        inferred.record_cycle(&belief, &result);
        let mut precomputed = SessionTracker::new();
        precomputed.record_cycle_posteriors(&result, &posteriors);
        assert_eq!(inferred.genuine(), precomputed.genuine());
        assert_eq!(inferred.posteriors(), precomputed.posteriors());
    }
}
