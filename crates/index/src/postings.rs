//! Compressed postings lists.
//!
//! Each term's postings are a sequence of `(doc_id, term_frequency)` pairs,
//! doc-id sorted, stored as delta + varint encoded bytes. This matches the
//! `<p_ij, d_j>` pairs of the paper's inverted lists, and the encoded byte
//! size is what Figure 6 accounts as "inverted index size".

use crate::varint::{decode_u32, encode_u32};
use serde::{Deserialize, Serialize};

/// One posting: a document id and the term's frequency in that document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// Document id.
    pub doc_id: u32,
    /// Term frequency in the document.
    pub tf: u32,
}

/// An immutable, compressed postings list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PostingsList {
    /// Number of postings (the term's document frequency).
    len: u32,
    /// Delta+varint encoded `(doc_gap, tf)` pairs.
    bytes: Vec<u8>,
}

impl PostingsList {
    /// Builds a postings list from doc-id-sorted postings.
    ///
    /// # Panics
    /// Panics if doc ids are not strictly increasing or a tf is zero.
    pub fn from_postings(postings: &[Posting]) -> Self {
        let mut bytes = Vec::with_capacity(postings.len() * 2);
        let mut prev: Option<u32> = None;
        for p in postings {
            assert!(p.tf > 0, "term frequency must be positive");
            let gap = match prev {
                None => p.doc_id,
                Some(prev_id) => {
                    assert!(p.doc_id > prev_id, "doc ids must be strictly increasing");
                    p.doc_id - prev_id - 1
                }
            };
            encode_u32(&mut bytes, gap);
            encode_u32(&mut bytes, p.tf - 1);
            prev = Some(p.doc_id);
        }
        PostingsList {
            len: postings.len() as u32,
            bytes,
        }
    }

    /// Number of postings (document frequency of the term).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Encoded size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Iterates over the postings, decoding lazily.
    pub fn iter(&self) -> PostingsIter<'_> {
        PostingsIter {
            remaining: self.len,
            cursor: self.bytes.as_slice(),
            prev: None,
        }
    }

    /// Decodes all postings into a vector (mostly for tests and scoring
    /// paths that want a slice).
    pub fn to_vec(&self) -> Vec<Posting> {
        self.iter().collect()
    }

    /// The raw encoded representation `(len, encoded bytes)` — consumed
    /// by the index serializer, which stores the compressed bytes
    /// verbatim.
    pub fn raw_parts(&self) -> (u32, &[u8]) {
        (self.len, &self.bytes)
    }

    /// Rebuilds a list from its raw representation, validating that the
    /// bytes decode to exactly `len` postings and are fully consumed.
    /// Returns `None` for malformed input (truncated varints, wrong
    /// count, trailing bytes).
    pub fn from_raw_parts(len: u32, bytes: Vec<u8>) -> Option<Self> {
        let candidate = PostingsList { len, bytes };
        let mut iter = candidate.iter();
        let mut decoded = 0u32;
        for _ in 0..len {
            iter.next()?;
            decoded += 1;
        }
        if decoded != len || !iter.cursor.is_empty() {
            return None;
        }
        Some(candidate)
    }
}

/// Lazy decoding iterator over a [`PostingsList`].
pub struct PostingsIter<'a> {
    remaining: u32,
    cursor: &'a [u8],
    prev: Option<u32>,
}

impl Iterator for PostingsIter<'_> {
    type Item = Posting;

    fn next(&mut self) -> Option<Posting> {
        if self.remaining == 0 {
            return None;
        }
        let gap = decode_u32(&mut self.cursor)?;
        let tf = decode_u32(&mut self.cursor)? + 1;
        let doc_id = match self.prev {
            None => gap,
            Some(prev) => prev + gap + 1,
        };
        self.prev = Some(doc_id);
        self.remaining -= 1;
        Some(Posting { doc_id, tf })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for PostingsIter<'_> {}

/// Incremental builder used by the index builder: postings are appended in
/// doc-id order as documents stream in.
#[derive(Debug, Clone, Default)]
pub struct PostingsBuilder {
    postings: Vec<Posting>,
}

impl PostingsBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a posting; doc ids must arrive in nondecreasing order, and a
    /// repeated doc id accumulates term frequency.
    pub fn push(&mut self, doc_id: u32, tf: u32) {
        if let Some(last) = self.postings.last_mut() {
            assert!(doc_id >= last.doc_id, "postings must arrive doc-ordered");
            if last.doc_id == doc_id {
                last.tf += tf;
                return;
            }
        }
        self.postings.push(Posting { doc_id, tf });
    }

    /// Current number of distinct documents.
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// Whether nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Finalizes into a compressed list.
    pub fn build(self) -> PostingsList {
        PostingsList::from_postings(&self.postings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Posting> {
        vec![
            Posting { doc_id: 0, tf: 3 },
            Posting { doc_id: 1, tf: 1 },
            Posting { doc_id: 7, tf: 2 },
            Posting {
                doc_id: 1000,
                tf: 9,
            },
            Posting {
                doc_id: 1_000_000,
                tf: 1,
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let list = PostingsList::from_postings(&sample());
        assert_eq!(list.len(), 5);
        assert_eq!(list.to_vec(), sample());
    }

    #[test]
    fn empty_list() {
        let list = PostingsList::from_postings(&[]);
        assert!(list.is_empty());
        assert_eq!(list.iter().count(), 0);
        assert_eq!(list.size_bytes(), 0);
    }

    #[test]
    fn compression_beats_raw() {
        // Dense small gaps compress far below 8 bytes per posting.
        let postings: Vec<Posting> = (0..10_000).map(|i| Posting { doc_id: i, tf: 1 }).collect();
        let list = PostingsList::from_postings(&postings);
        assert_eq!(list.size_bytes(), (2 * 10_000)); // 1 byte gap + 1 byte tf
        assert!(list.size_bytes() < postings.len() * 8);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_rejected() {
        PostingsList::from_postings(&[Posting { doc_id: 5, tf: 1 }, Posting { doc_id: 5, tf: 1 }]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tf_rejected() {
        PostingsList::from_postings(&[Posting { doc_id: 0, tf: 0 }]);
    }

    #[test]
    fn builder_accumulates_repeats() {
        let mut b = PostingsBuilder::new();
        b.push(2, 1);
        b.push(2, 4);
        b.push(9, 1);
        let list = b.build();
        assert_eq!(
            list.to_vec(),
            vec![Posting { doc_id: 2, tf: 5 }, Posting { doc_id: 9, tf: 1 }]
        );
    }

    #[test]
    fn iterator_size_hint() {
        let list = PostingsList::from_postings(&sample());
        let mut it = list.iter();
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
    }
}
