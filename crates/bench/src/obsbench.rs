//! Bridge from experiments to the `toppriv-obs` bench trail.
//!
//! The `service`, `sharding`, and `staleness` experiments call
//! [`emit_bench`] after their measured runs, landing a machine-readable
//! `BENCH_<experiment>.json` (host core count, qps, per-stage p50/p99,
//! cache hit rate, per-shard imbalance) next to the human tables. The
//! per-stage numbers are read straight out of the run's
//! `MetricsRegistry` — the same registry `toppriv-serve` exposes — so
//! the bench trail and the live metrics endpoint can never disagree.

use toppriv_obs::{write_bench_snapshot, BenchSnapshot, MetricsRegistry, StageStats};

/// Stage names the service-layer bench snapshots use.
pub const STAGES: [&str; 5] = [
    "queue_wait",
    "shard_service",
    "gather",
    "cache_lookup",
    "submit",
];

/// Clears the process-global engine-layer histograms (`engine_gather_us`
/// and friends) so a measured run starts from a clean slate. Call
/// immediately before the timed section.
pub fn reset_engine_stages() {
    let global = toppriv_obs::global();
    global.histogram(tsearch_search::M_GATHER_US, &[]).clear();
    global.histogram(tsearch_search::M_EVAL_US, &[]).clear();
    for snap in global.snapshot() {
        if snap.name == tsearch_search::M_SHARD_EVAL_US {
            let labels: Vec<(&str, &str)> = snap
                .labels
                .iter()
                .map(|l| (l.key.as_str(), l.value.as_str()))
                .collect();
            global
                .histogram(tsearch_search::M_SHARD_EVAL_US, &labels)
                .clear();
        }
    }
}

/// Builds the per-stage latency breakdown of one service-layer run:
/// queue wait, shard service time, and cache lookup from the manager's
/// registry; engine gather from the process-global registry (the engine
/// layer records there regardless of which manager drove it).
pub fn service_stage_stats(registry: &MetricsRegistry) -> Vec<StageStats> {
    let mut stages = Vec::new();
    for (stage, name) in [
        ("queue_wait", toppriv_service::scheduler::M_QUEUE_WAIT_US),
        ("shard_service", toppriv_service::scheduler::M_SERVICE_US),
        ("cache_lookup", toppriv_service::cache::M_CACHE_LOOKUP_US),
        ("submit", toppriv_service::metrics::M_SUBMIT_US),
    ] {
        if let Some(h) = registry.merged_histogram(name) {
            stages.push(StageStats::from_histogram(stage, &h));
        }
    }
    if let Some(h) = toppriv_obs::global().merged_histogram(tsearch_search::M_GATHER_US) {
        stages.push(StageStats::from_histogram("gather", &h));
    }
    stages
}

/// Assembles a [`BenchSnapshot`] for a service-layer run from its
/// metrics registry: stages via [`service_stage_stats`], cache hit rate
/// from the per-shard cache counters, and shard imbalance from the
/// per-shard scheduler submit counters.
pub fn service_bench_snapshot(
    experiment: &str,
    registry: &MetricsRegistry,
    qps: f64,
    notes: impl Into<String>,
) -> BenchSnapshot {
    let mut snap = BenchSnapshot::new(experiment);
    snap.qps = qps;
    snap.notes = notes.into();
    snap.stages = service_stage_stats(registry);
    let hits = registry.counter_total(toppriv_service::metrics::M_CACHE_HITS);
    let misses = registry.counter_total(toppriv_service::metrics::M_CACHE_MISSES);
    if hits + misses > 0 {
        snap.cache_hit_rate = hits as f64 / (hits + misses) as f64;
    }
    let per_shard: Vec<u64> = registry
        .counter_values(toppriv_service::scheduler::M_SHARD_SUBMITS)
        .into_iter()
        .map(|(_, v)| v)
        .collect();
    snap.shard_imbalance = toppriv_obs::imbalance(&per_shard);
    snap
}

/// Writes `snapshot` as `BENCH_<experiment>.json` (honouring
/// `$TOPPRIV_BENCH_DIR`) and logs the path; emission failure is reported
/// but never fails the experiment.
pub fn emit_bench(snapshot: &BenchSnapshot) {
    match write_bench_snapshot(snapshot) {
        Ok(path) => println!("[bench] wrote {}", path.display()),
        Err(e) => eprintln!(
            "[bench] could not write BENCH_{}.json: {e}",
            snapshot.experiment
        ),
    }
}
