//! Microbenchmarks of the multi-tenant service layer: synchronous
//! private-search throughput vs session count, with and without the
//! shared result cache, plus the cache and scheduler in isolation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use toppriv_bench::Scale;
use toppriv_service::{CycleScheduler, ResultCache, SessionManager};
use tsearch_corpus::{generate_workload, BenchmarkQuery, SyntheticCorpus, WorkloadConfig};
use tsearch_lda::{LdaConfig, LdaModel, LdaTrainer};
use tsearch_search::{ScoringModel, SearchEngine};
use tsearch_text::Analyzer;

struct Stack {
    engine: Arc<SearchEngine>,
    model: Arc<LdaModel>,
    queries: Vec<BenchmarkQuery>,
}

fn stack() -> Stack {
    let corpus = SyntheticCorpus::generate(Scale::quick().corpus);
    let docs = corpus.token_docs();
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let engine = Arc::new(SearchEngine::build(
        &docs,
        &texts,
        Analyzer::new(),
        corpus.vocab.clone(),
        ScoringModel::TfIdfCosine,
    ));
    let model = Arc::new(LdaTrainer::train(
        &docs,
        corpus.vocab.len(),
        LdaConfig {
            iterations: 15,
            ..LdaConfig::with_topics(20)
        },
    ));
    let queries = generate_workload(
        &corpus,
        &WorkloadConfig {
            num_queries: 32,
            ..WorkloadConfig::default()
        },
    );
    Stack {
        engine,
        model,
        queries,
    }
}

/// One full multi-tenant pass: every session runs one synchronous private
/// search drawn from the shared pool. Measures end-to-end service
/// throughput (ghost generation + cache/engine resolution).
fn bench_search_vs_sessions(c: &mut Criterion) {
    let stack = stack();
    let mut group = c.benchmark_group("service_search");
    group.sample_size(10);
    for &sessions in &[1usize, 8, 64] {
        for cached in [false, true] {
            let mut manager = SessionManager::new(stack.engine.clone(), stack.model.clone());
            if cached {
                manager = manager.with_cache(8192);
            }
            for s in 0..sessions {
                manager.open_session(&format!("s{s}")).unwrap();
            }
            let ids = manager.session_ids();
            group.throughput(Throughput::Elements(sessions as u64));
            group.bench_with_input(
                BenchmarkId::new(if cached { "cached" } else { "uncached" }, sessions),
                &sessions,
                |b, _| {
                    let mut round = 0usize;
                    b.iter(|| {
                        round += 1;
                        for (s, id) in ids.iter().enumerate() {
                            let q = &stack.queries[(s + round) % stack.queries.len()];
                            black_box(manager.search_tokens(id, &q.tokens, 10).unwrap());
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

/// The paced path: merge + drain of a pre-planned multi-tenant queue on
/// the scheduler's worker pool (isolates submission cost from ghost
/// generation).
fn bench_scheduler_drain(c: &mut Criterion) {
    let stack = stack();
    let mut group = c.benchmark_group("service_scheduler_drain");
    group.sample_size(10);
    for cached in [false, true] {
        let mut manager = SessionManager::new(stack.engine.clone(), stack.model.clone());
        if cached {
            manager = manager.with_cache(8192);
        }
        let manager = Arc::new(manager);
        for s in 0..8 {
            manager.open_session(&format!("s{s}")).unwrap();
        }
        let mut plans = Vec::new();
        for (s, id) in manager.session_ids().iter().enumerate() {
            for q in 0..4 {
                let query = &stack.queries[(s + q) % stack.queries.len()];
                plans.push(manager.plan_cycle(id, &query.tokens, 10).unwrap());
            }
        }
        let queue = CycleScheduler::merge(plans);
        let scheduler = CycleScheduler::for_manager(&manager, 4);
        group.throughput(Throughput::Elements(queue.len() as u64));
        group.bench_function(
            BenchmarkId::from_parameter(if cached { "cached" } else { "uncached" }),
            |b| b.iter(|| black_box(scheduler.drain(queue.clone()))),
        );
    }
    group.finish();
}

/// Raw cache operations.
fn bench_cache_ops(c: &mut Criterion) {
    let cache = ResultCache::new(4096);
    let hits = vec![tsearch_search::SearchHit {
        doc_id: 1,
        score: 1.0,
    }];
    for i in 0..4096u32 {
        cache.insert(&[i, i + 1, i + 2], 10, hits.clone());
    }
    let mut group = c.benchmark_group("service_cache");
    group.sample_size(20);
    group.bench_function("hit", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 4096;
            black_box(cache.get(&[i, i + 1, i + 2], 10))
        })
    });
    group.bench_function("miss", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 4096;
            black_box(cache.get(&[100_000 + i, 7], 10))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_search_vs_sessions,
    bench_scheduler_drain,
    bench_cache_ops
);
criterion_main!(benches);
