//! A complete implementation of the Porter stemming algorithm.
//!
//! The algorithm is described in M. F. Porter, "An algorithm for suffix
//! stripping", *Program* 14(3), 1980. It reduces English words to their
//! stems in five ordered steps of suffix rewrites, each guarded by a
//! *measure* condition on the remaining stem.
//!
//! This implementation operates on ASCII lowercase input (the tokenizer
//! guarantees that) and is allocation-free for words that are not stemmed.

/// The Porter stemmer.
///
/// The stemmer itself is stateless; a value exists so callers can hold it as
/// a component of an analysis pipeline and so alternative stemmers can be
/// swapped in behind the same interface later.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PorterStemmer;

impl PorterStemmer {
    /// Creates a new stemmer.
    pub fn new() -> Self {
        PorterStemmer
    }

    /// Stems `word`, returning the stem as an owned string.
    ///
    /// Words shorter than 3 characters are returned unchanged, per the
    /// original algorithm's guidance.
    pub fn stem(&self, word: &str) -> String {
        if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
            return word.to_string();
        }
        let mut buf: Vec<u8> = word.as_bytes().to_vec();
        let mut end = buf.len();
        end = step1a(&mut buf, end);
        end = step1b(&mut buf, end);
        end = step1c(&mut buf, end);
        end = step2(&mut buf, end);
        end = step3(&mut buf, end);
        end = step4(&mut buf, end);
        end = step5a(&mut buf, end);
        end = step5b(&buf, end);
        buf.truncate(end);
        // Safety of from_utf8: we only ever keep ASCII lowercase bytes.
        String::from_utf8(buf).expect("stemmer output is ASCII")
    }
}

/// Returns true if `buf[i]` is a consonant in the Porter sense, considering
/// context for the letter `y`.
fn is_consonant(buf: &[u8], i: usize) -> bool {
    match buf[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                !is_consonant(buf, i - 1)
            }
        }
        _ => true,
    }
}

/// Computes the Porter measure m of `buf[..end]`: the number of VC
/// (vowel-sequence followed by consonant-sequence) transitions.
fn measure(buf: &[u8], end: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < end && is_consonant(buf, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < end && !is_consonant(buf, i) {
            i += 1;
        }
        if i >= end {
            return m;
        }
        m += 1;
        // Skip consonants.
        while i < end && is_consonant(buf, i) {
            i += 1;
        }
        if i >= end {
            return m;
        }
    }
}

/// Whether `buf[..end]` contains a vowel.
fn has_vowel(buf: &[u8], end: usize) -> bool {
    (0..end).any(|i| !is_consonant(buf, i))
}

/// Whether `buf[..end]` ends with a double consonant.
fn ends_double_consonant(buf: &[u8], end: usize) -> bool {
    end >= 2 && buf[end - 1] == buf[end - 2] && is_consonant(buf, end - 1)
}

/// Whether `buf[..end]` ends consonant-vowel-consonant, where the final
/// consonant is not w, x or y. Used to restore a trailing `e` (e.g. -ate).
fn ends_cvc(buf: &[u8], end: usize) -> bool {
    if end < 3 {
        return false;
    }
    let (a, b, c) = (end - 3, end - 2, end - 1);
    is_consonant(buf, a)
        && !is_consonant(buf, b)
        && is_consonant(buf, c)
        && !matches!(buf[c], b'w' | b'x' | b'y')
}

/// Whether `buf[..end]` ends with `suffix`.
fn ends_with(buf: &[u8], end: usize, suffix: &[u8]) -> bool {
    end >= suffix.len() && &buf[end - suffix.len()..end] == suffix
}

/// Replaces the trailing `suffix` (assumed present) with `replacement`,
/// returning the new logical end.
fn set_suffix(buf: &mut Vec<u8>, end: usize, suffix: &[u8], replacement: &[u8]) -> usize {
    let stem_end = end - suffix.len();
    buf.truncate(stem_end);
    buf.extend_from_slice(replacement);
    stem_end + replacement.len()
}

/// Step 1a: plural reductions (sses->ss, ies->i, ss->ss, s->"").
fn step1a(buf: &mut Vec<u8>, end: usize) -> usize {
    if ends_with(buf, end, b"sses") {
        set_suffix(buf, end, b"sses", b"ss")
    } else if ends_with(buf, end, b"ies") {
        set_suffix(buf, end, b"ies", b"i")
    } else if ends_with(buf, end, b"ss") {
        end
    } else if ends_with(buf, end, b"s") {
        set_suffix(buf, end, b"s", b"")
    } else {
        end
    }
}

/// Post-processing shared by the -ed / -ing branches of step 1b.
fn step1b_fixup(buf: &mut Vec<u8>, end: usize) -> usize {
    if ends_with(buf, end, b"at") {
        set_suffix(buf, end, b"at", b"ate")
    } else if ends_with(buf, end, b"bl") {
        set_suffix(buf, end, b"bl", b"ble")
    } else if ends_with(buf, end, b"iz") {
        set_suffix(buf, end, b"iz", b"ize")
    } else if ends_double_consonant(buf, end) && !matches!(buf[end - 1], b'l' | b's' | b'z') {
        end - 1
    } else if measure(buf, end) == 1 && ends_cvc(buf, end) {
        set_suffix(buf, end, b"", b"e")
    } else {
        end
    }
}

/// Step 1b: -eed, -ed, -ing.
fn step1b(buf: &mut Vec<u8>, end: usize) -> usize {
    if ends_with(buf, end, b"eed") {
        if measure(buf, end - 3) > 0 {
            return set_suffix(buf, end, b"eed", b"ee");
        }
        return end;
    }
    if ends_with(buf, end, b"ed") && has_vowel(buf, end - 2) {
        let end = set_suffix(buf, end, b"ed", b"");
        return step1b_fixup(buf, end);
    }
    if ends_with(buf, end, b"ing") && has_vowel(buf, end - 3) {
        let end = set_suffix(buf, end, b"ing", b"");
        return step1b_fixup(buf, end);
    }
    end
}

/// Step 1c: terminal y -> i when the stem contains a vowel.
fn step1c(buf: &mut [u8], end: usize) -> usize {
    if ends_with(buf, end, b"y") && has_vowel(buf, end - 1) {
        buf[end - 1] = b'i';
    }
    end
}

/// Applies the first matching (suffix, replacement) rule whose stem measure
/// exceeds `min_measure`.
fn apply_rules(
    buf: &mut Vec<u8>,
    end: usize,
    rules: &[(&[u8], &[u8])],
    min_measure: usize,
) -> usize {
    for &(suffix, replacement) in rules {
        if ends_with(buf, end, suffix) {
            if measure(buf, end - suffix.len()) > min_measure {
                return set_suffix(buf, end, suffix, replacement);
            }
            return end;
        }
    }
    end
}

/// Step 2: double-suffix reductions for m > 0 (e.g. -ational -> -ate).
fn step2(buf: &mut Vec<u8>, end: usize) -> usize {
    const RULES: &[(&[u8], &[u8])] = &[
        (b"ational", b"ate"),
        (b"tional", b"tion"),
        (b"enci", b"ence"),
        (b"anci", b"ance"),
        (b"izer", b"ize"),
        (b"abli", b"able"),
        (b"alli", b"al"),
        (b"entli", b"ent"),
        (b"eli", b"e"),
        (b"ousli", b"ous"),
        (b"ization", b"ize"),
        (b"ation", b"ate"),
        (b"ator", b"ate"),
        (b"alism", b"al"),
        (b"iveness", b"ive"),
        (b"fulness", b"ful"),
        (b"ousness", b"ous"),
        (b"aliti", b"al"),
        (b"iviti", b"ive"),
        (b"biliti", b"ble"),
    ];
    apply_rules(buf, end, RULES, 0)
}

/// Step 3: -icate, -ative, etc. for m > 0.
fn step3(buf: &mut Vec<u8>, end: usize) -> usize {
    const RULES: &[(&[u8], &[u8])] = &[
        (b"icate", b"ic"),
        (b"ative", b""),
        (b"alize", b"al"),
        (b"iciti", b"ic"),
        (b"ical", b"ic"),
        (b"ful", b""),
        (b"ness", b""),
    ];
    apply_rules(buf, end, RULES, 0)
}

/// Step 4: strip residual suffixes for m > 1. The -ion rule additionally
/// requires the stem to end in s or t.
fn step4(buf: &mut Vec<u8>, end: usize) -> usize {
    const RULES: &[&[u8]] = &[
        b"al", b"ance", b"ence", b"er", b"ic", b"able", b"ible", b"ant", b"ement", b"ment", b"ent",
        b"ou", b"ism", b"ate", b"iti", b"ous", b"ive", b"ize",
    ];
    // -ion needs special stem-final-letter handling and must be checked in
    // correct longest-match order relative to -ement/-ment/-ent.
    if ends_with(buf, end, b"ion") {
        let stem_end = end - 3;
        if stem_end > 0 && matches!(buf[stem_end - 1], b's' | b't') && measure(buf, stem_end) > 1 {
            return set_suffix(buf, end, b"ion", b"");
        }
        // -ion matched but condition failed: but a longer suffix like
        // -ation was already handled in step 2; nothing more to do.
        return end;
    }
    // Longest-match: sort by trying longer suffixes first where they overlap.
    let mut ordered: Vec<&[u8]> = RULES.to_vec();
    ordered.sort_by_key(|s| std::cmp::Reverse(s.len()));
    for suffix in ordered {
        if ends_with(buf, end, suffix) {
            if measure(buf, end - suffix.len()) > 1 {
                return set_suffix(buf, end, suffix, b"");
            }
            return end;
        }
    }
    end
}

/// Step 5a: drop terminal e for m > 1, or m == 1 when not CVC.
fn step5a(buf: &mut [u8], end: usize) -> usize {
    if ends_with(buf, end, b"e") {
        let m = measure(buf, end - 1);
        if m > 1 || (m == 1 && !ends_cvc(buf, end - 1)) {
            return end - 1;
        }
    }
    end
}

/// Step 5b: -ll -> -l for m > 1.
fn step5b(buf: &[u8], end: usize) -> usize {
    if end >= 2 && buf[end - 1] == b'l' && ends_double_consonant(buf, end) && measure(buf, end) > 1
    {
        end - 1
    } else {
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(word: &str) -> String {
        PorterStemmer::new().stem(word)
    }

    #[test]
    fn classic_examples() {
        assert_eq!(s("caresses"), "caress");
        assert_eq!(s("ponies"), "poni");
        assert_eq!(s("ties"), "ti");
        assert_eq!(s("caress"), "caress");
        assert_eq!(s("cats"), "cat");
        assert_eq!(s("feed"), "feed");
        assert_eq!(s("agreed"), "agre");
        assert_eq!(s("plastered"), "plaster");
        assert_eq!(s("bled"), "bled");
        assert_eq!(s("motoring"), "motor");
        assert_eq!(s("sing"), "sing");
    }

    #[test]
    fn step1b_fixups() {
        assert_eq!(s("conflated"), "conflat");
        assert_eq!(s("troubled"), "troubl");
        assert_eq!(s("sized"), "size");
        assert_eq!(s("hopping"), "hop");
        assert_eq!(s("tanned"), "tan");
        assert_eq!(s("falling"), "fall");
        assert_eq!(s("hissing"), "hiss");
        assert_eq!(s("fizzed"), "fizz");
        assert_eq!(s("failing"), "fail");
        assert_eq!(s("filing"), "file");
    }

    #[test]
    fn terminal_y() {
        assert_eq!(s("happy"), "happi");
        assert_eq!(s("sky"), "sky");
    }

    #[test]
    fn step2_suffixes() {
        assert_eq!(s("relational"), "relat");
        assert_eq!(s("conditional"), "condit");
        assert_eq!(s("rational"), "ration");
        assert_eq!(s("valenci"), "valenc");
        assert_eq!(s("hesitanci"), "hesit");
        assert_eq!(s("digitizer"), "digit");
        assert_eq!(s("conformabli"), "conform");
        assert_eq!(s("radicalli"), "radic");
        assert_eq!(s("differentli"), "differ");
        assert_eq!(s("vileli"), "vile");
        assert_eq!(s("analogousli"), "analog");
        assert_eq!(s("vietnamization"), "vietnam");
        assert_eq!(s("predication"), "predic");
        assert_eq!(s("operator"), "oper");
        assert_eq!(s("feudalism"), "feudal");
        assert_eq!(s("decisiveness"), "decis");
        assert_eq!(s("hopefulness"), "hope");
        assert_eq!(s("callousness"), "callous");
        assert_eq!(s("formaliti"), "formal");
        assert_eq!(s("sensitiviti"), "sensit");
        assert_eq!(s("sensibiliti"), "sensibl");
    }

    #[test]
    fn step3_suffixes() {
        assert_eq!(s("triplicate"), "triplic");
        assert_eq!(s("formative"), "form");
        assert_eq!(s("formalize"), "formal");
        assert_eq!(s("electriciti"), "electr");
        assert_eq!(s("electrical"), "electr");
        assert_eq!(s("hopeful"), "hope");
        assert_eq!(s("goodness"), "good");
    }

    #[test]
    fn step4_suffixes() {
        assert_eq!(s("revival"), "reviv");
        assert_eq!(s("allowance"), "allow");
        assert_eq!(s("inference"), "infer");
        assert_eq!(s("airliner"), "airlin");
        assert_eq!(s("gyroscopic"), "gyroscop");
        assert_eq!(s("adjustable"), "adjust");
        assert_eq!(s("defensible"), "defens");
        assert_eq!(s("irritant"), "irrit");
        assert_eq!(s("replacement"), "replac");
        assert_eq!(s("adjustment"), "adjust");
        assert_eq!(s("dependent"), "depend");
        assert_eq!(s("adoption"), "adopt");
        assert_eq!(s("homologou"), "homolog");
        assert_eq!(s("communism"), "commun");
        assert_eq!(s("activate"), "activ");
        assert_eq!(s("angulariti"), "angular");
        assert_eq!(s("homologous"), "homolog");
        assert_eq!(s("effective"), "effect");
        assert_eq!(s("bowdlerize"), "bowdler");
    }

    #[test]
    fn step5_suffixes() {
        assert_eq!(s("probate"), "probat");
        assert_eq!(s("rate"), "rate");
        assert_eq!(s("cease"), "ceas");
        assert_eq!(s("controll"), "control");
        assert_eq!(s("roll"), "roll");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(s("a"), "a");
        assert_eq!(s("is"), "is");
        assert_eq!(s("be"), "be");
    }

    #[test]
    fn non_lowercase_untouched() {
        assert_eq!(s("Apple"), "Apple");
        assert_eq!(s("item42"), "item42");
    }

    #[test]
    fn idempotent_on_common_words() {
        let stemmer = PorterStemmer::new();
        for word in [
            "helicopter",
            "compression",
            "education",
            "technology",
            "investors",
            "searching",
            "queries",
        ] {
            let once = stemmer.stem(word);
            let twice = stemmer.stem(&once);
            // Porter is not idempotent for all English, but it is for these
            // and the property test in the tokenizer module covers the
            // pipeline-level contract (stemming an already-stemmed token is
            // what the index effectively relies on).
            assert_eq!(once, twice, "word {word}");
        }
    }
}
