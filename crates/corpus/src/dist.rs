//! Sampling distributions used by the generative corpus model.
//!
//! Only `rand`'s uniform primitives are taken as given; Gamma (and hence
//! Dirichlet), log-normal, and Zipf sampling are implemented here so the
//! workspace has no dependency on `rand_distr`.

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples from LogNormal(mu, sigma) (parameters of the underlying normal).
pub fn sample_log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * sample_standard_normal(rng)).exp()
}

/// Samples from Gamma(shape, 1) using the Marsaglia–Tsang squeeze method,
/// with the standard boost for shape < 1.
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Gamma(a) = Gamma(a + 1) * U^(1/a)
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let x2 = x * x;
        if u < 1.0 - 0.0331 * x2 * x2 {
            return d * v;
        }
        if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Samples a probability vector from a symmetric Dirichlet(alpha) of the
/// given dimension.
pub fn sample_dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: f64, dim: usize) -> Vec<f64> {
    assert!(dim > 0, "dirichlet dimension must be positive");
    let mut draws: Vec<f64> = (0..dim).map(|_| sample_gamma(rng, alpha)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        // Degenerate draw (can happen for very small alpha): fall back to a
        // one-hot vector on a uniformly chosen coordinate.
        let hot = rng.gen_range(0..dim);
        draws.iter_mut().for_each(|x| *x = 0.0);
        draws[hot] = 1.0;
        return draws;
    }
    draws.iter_mut().for_each(|x| *x /= sum);
    draws
}

/// A categorical distribution over `0..n` with O(log n) sampling via a
/// precomputed cumulative table.
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Builds from non-negative weights (not necessarily normalized).
    ///
    /// Returns `None` if the weights are empty or sum to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and >= 0");
            acc += w;
            cumulative.push(acc);
        }
        if acc <= 0.0 {
            return None;
        }
        Some(Self { cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether there are zero categories (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen::<f64>() * total;
        match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Probability of index `i` (normalized).
    pub fn probability(&self, i: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let lo = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - lo) / total
    }
}

/// Zipf-distributed ranks: weight of rank r (1-based) is r^-exponent.
///
/// Backed by a [`Categorical`] over the n ranks, which is exact and fast for
/// the vocabulary sizes used here.
#[derive(Debug, Clone)]
pub struct Zipf {
    categorical: Categorical,
}

impl Zipf {
    /// Builds a Zipf distribution over `n` ranks with the given exponent.
    pub fn new(n: usize, exponent: f64) -> Option<Self> {
        if n == 0 {
            return None;
        }
        let weights: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-exponent)).collect();
        Categorical::new(&weights).map(|categorical| Self { categorical })
    }

    /// Samples a 0-based rank (0 is the most probable).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.categorical.sample(rng)
    }

    /// Normalized probability of 0-based rank `i`.
    pub fn probability(&self, i: usize) -> f64 {
        self.categorical.probability(i)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.categorical.len()
    }

    /// Never empty for constructed values.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut r = rng();
        for shape in [0.3, 1.0, 2.5, 10.0] {
            let n = 20_000;
            let mean = (0..n).map(|_| sample_gamma(&mut r, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape} mean {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut r = rng();
        for alpha in [0.05, 0.5, 5.0] {
            let v = sample_dirichlet(&mut r, alpha, 17);
            let sum: f64 = v.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn dirichlet_small_alpha_is_sparse() {
        // Any single Dir(0.02) draw can fail to concentrate; assert the
        // property over a batch so the test is robust to the RNG stream.
        let mut r = rng();
        let concentrated = (0..20)
            .filter(|_| {
                let v = sample_dirichlet(&mut r, 0.02, 50);
                v.iter().cloned().fold(0.0, f64::max) > 0.5
            })
            .count();
        assert!(
            concentrated >= 14,
            "small alpha should concentrate mass in most draws, got {concentrated}/20"
        );
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng();
        let c = Categorical::new(&[1.0, 0.0, 3.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[c.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
        assert!((c.probability(2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn categorical_rejects_degenerate() {
        assert!(Categorical::new(&[]).is_none());
        assert!(Categorical::new(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut r = rng();
        let z = Zipf::new(100, 1.1).unwrap();
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[50]);
        let p0 = z.probability(0);
        let p9 = z.probability(9);
        assert!((p0 / p9 - 10f64.powf(1.1)).abs() < 1e-9);
    }

    #[test]
    fn log_normal_median() {
        let mut r = rng();
        let n = 20_000;
        let mut samples: Vec<f64> = (0..n)
            .map(|_| sample_log_normal(&mut r, (120f64).ln(), 0.4))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 120.0).abs() < 8.0, "median {median}");
    }
}
