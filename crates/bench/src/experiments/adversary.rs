//! Experiment `adv1`: empirical resilience against the Section IV-D
//! attacks on cycles produced at the default `(ε1, ε2)` setting.

use crate::context::ExperimentContext;
use crate::table::{f3, ResultTable};
use toppriv_adversary::{
    run_coherence_attack, run_exposure_attack, run_probing_attack, run_term_elimination_attack,
};
use toppriv_core::{BeliefEngine, CycleResult, GhostConfig, GhostGenerator, PrivacyRequirement};

/// Replays per probing-attack candidate (kept small: the attack is O(υ ·
/// replays · ghost generation)).
pub const PROBING_REPLAYS: usize = 2;

/// Runs the four attacks and reports success vs chance.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let model = ctx.default_model();
    let requirement = PrivacyRequirement::paper_default();
    let generator = GhostGenerator::new(
        BeliefEngine::new(model.clone()),
        requirement,
        GhostConfig::default(),
    );
    let n = ctx.scale.adversary_queries.min(ctx.queries.len());
    let cycles: Vec<CycleResult> = ctx.queries[..n]
        .iter()
        .map(|q| generator.generate(&q.tokens))
        .collect();

    // Attacks with more than one trivially-satisfied cycle are meaningless;
    // keep only cycles that actually contain ghosts.
    let contested: Vec<CycleResult> = cycles.into_iter().filter(|c| c.cycle_len() > 1).collect();

    let reports = vec![
        run_coherence_attack(model, &contested),
        run_exposure_attack(model, &contested, 3),
        run_exposure_attack(model, &contested, 10.min(model.num_topics())),
        run_term_elimination_attack(model, &contested, 2, 20, requirement.eps1),
        run_probing_attack(model, &contested, requirement, PROBING_REPLAYS),
    ];

    let mut table = ResultTable::new(
        "adv1_attacks",
        "Section IV-D attack success on protected cycles (advantage <= ~0 means resilient)",
        vec![
            "attack".into(),
            "success".into(),
            "chance".into(),
            "advantage".into(),
            "trials".into(),
        ],
    );
    for r in &reports {
        table.push_row(vec![
            r.attack.clone(),
            f3(r.success_rate),
            f3(r.chance_rate),
            f3(r.advantage()),
            r.trials.to_string(),
        ]);
    }
    vec![table]
}
