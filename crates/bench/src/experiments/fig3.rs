//! Figure 3: TopPriv with ε1 = ε2, varying both together.
//!
//! Panels (a)–(d) mirror Figure 2; panels (e) |U| and (f) the best rank
//! attained by any relevant topic expose how deeply the intention is
//! buried among irrelevant topics.

use super::{eps_sweep, sweep_table};
use crate::context::ExperimentContext;
use crate::table::{f3, pct, ResultTable};
use toppriv_core::PrivacyRequirement;

/// Runs the Figure 3 sweep and renders its six panels.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let sweep = eps_sweep(ctx, |eps| {
        PrivacyRequirement::new(eps, eps).expect("valid grid")
    });
    vec![
        sweep_table(
            "fig3a_exposure",
            "Exposure max B(t|C) over t in U (%), eps1=eps2",
            "eps_pct",
            &sweep,
            |c| c.exposure,
            pct,
        ),
        sweep_table(
            "fig3b_mask",
            "Mask level max B(t|C) over t notin U (%), eps1=eps2",
            "eps_pct",
            &sweep,
            |c| c.mask,
            pct,
        ),
        sweep_table(
            "fig3c_cycle_length",
            "Cycle length (queries per cycle), eps1=eps2",
            "eps_pct",
            &sweep,
            |c| c.cycle_len,
            f3,
        ),
        sweep_table(
            "fig3d_generation_time",
            "Ghost generation time (seconds), eps1=eps2",
            "eps_pct",
            &sweep,
            |c| c.gen_secs,
            |x| format!("{x:.4}"),
        ),
        sweep_table(
            "fig3e_num_relevant",
            "Number of relevant topics |U|, eps1=eps2",
            "eps_pct",
            &sweep,
            |c| c.num_relevant,
            f3,
        ),
        sweep_table(
            "fig3f_max_rank",
            "Best rank (by B(t|C)) attained by any relevant topic, eps1=eps2",
            "eps_pct",
            &sweep,
            |c| c.best_rank,
            f3,
        ),
    ]
}
