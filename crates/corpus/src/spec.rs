//! Configuration and ground-truth types for the synthetic corpus.

use serde::{Deserialize, Serialize};
use tsearch_text::TermId;

/// Configuration of the generative corpus model.
///
/// The generator follows the LDA generative story: each ground-truth topic
/// owns a block of core terms with Zipf-distributed weights, plus a small
/// amount of mass on a shared pool (modeling polysemous terms such as
/// "apache" in the paper), and every document mixes background terms with
/// terms drawn from its topic mixture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of documents to generate.
    pub num_docs: usize,
    /// Number of ground-truth topics.
    pub num_topics: usize,
    /// Core vocabulary terms owned by each topic.
    pub terms_per_topic: usize,
    /// Size of the shared (polysemous) term pool every topic can draw from.
    pub shared_pool_terms: usize,
    /// Size of the background (general-language) vocabulary.
    pub background_terms: usize,
    /// Fraction of document tokens drawn from the background distribution.
    pub background_weight: f64,
    /// Fraction of a topic's term distribution allocated to the shared pool.
    pub shared_weight: f64,
    /// Median document length in tokens (log-normal).
    pub doc_len_mean: f64,
    /// Log-normal sigma for document length.
    pub doc_len_sigma: f64,
    /// Hard lower bound on document length.
    pub min_doc_len: usize,
    /// Hard upper bound on document length.
    pub max_doc_len: usize,
    /// Probability weights for a document covering 1, 2, or 3 topics.
    pub topic_count_weights: [f64; 3],
    /// Dirichlet concentration for the mixture over a document's topics.
    pub mixture_alpha: f64,
    /// Zipf exponent for within-topic and background term distributions.
    pub zipf_exponent: f64,
    /// Probability of inserting a stopword between generated tokens in the
    /// surface text (exercises the analyzer; stripped before indexing).
    pub stopword_noise: f64,
    /// RNG seed; the corpus is fully determined by the config.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            num_docs: 4000,
            num_topics: 40,
            terms_per_topic: 250,
            shared_pool_terms: 300,
            background_terms: 800,
            background_weight: 0.25,
            shared_weight: 0.08,
            doc_len_mean: 120.0,
            doc_len_sigma: 0.4,
            min_doc_len: 30,
            max_doc_len: 600,
            topic_count_weights: [0.55, 0.33, 0.12],
            mixture_alpha: 1.0,
            zipf_exponent: 1.05,
            stopword_noise: 0.2,
            seed: 0x70_50_71_76, // "pPqv"
        }
    }
}

impl CorpusConfig {
    /// A small configuration for unit and integration tests.
    pub fn tiny() -> Self {
        Self {
            num_docs: 120,
            num_topics: 8,
            terms_per_topic: 40,
            shared_pool_terms: 30,
            background_terms: 60,
            doc_len_mean: 60.0,
            min_doc_len: 20,
            max_doc_len: 200,
            ..Self::default()
        }
    }

    /// Total vocabulary size implied by the configuration.
    pub fn vocab_size(&self) -> usize {
        self.num_topics * self.terms_per_topic + self.shared_pool_terms + self.background_terms
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_docs == 0 {
            return Err("num_docs must be positive".into());
        }
        if self.num_topics == 0 {
            return Err("num_topics must be positive".into());
        }
        if self.terms_per_topic < 5 {
            return Err("terms_per_topic must be at least 5".into());
        }
        if !(0.0..1.0).contains(&self.background_weight) {
            return Err("background_weight must be in [0, 1)".into());
        }
        if !(0.0..1.0).contains(&self.shared_weight) {
            return Err("shared_weight must be in [0, 1)".into());
        }
        if self.min_doc_len == 0 || self.min_doc_len > self.max_doc_len {
            return Err("document length bounds are inconsistent".into());
        }
        if self.topic_count_weights.iter().sum::<f64>() <= 0.0 {
            return Err("topic_count_weights must have positive mass".into());
        }
        if self.mixture_alpha <= 0.0 {
            return Err("mixture_alpha must be positive".into());
        }
        Ok(())
    }
}

/// Ground truth for one synthetic topic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopicGroundTruth {
    /// Topic index in `0..num_topics`.
    pub id: usize,
    /// Human-readable name.
    pub name: String,
    /// The topic's term distribution as `(term, weight)` pairs, sorted by
    /// descending weight. Covers both core-block and shared-pool terms.
    pub term_weights: Vec<(TermId, f64)>,
}

impl TopicGroundTruth {
    /// The `n` most characteristic terms of the topic.
    pub fn top_terms(&self, n: usize) -> &[(TermId, f64)] {
        &self.term_weights[..n.min(self.term_weights.len())]
    }
}

/// One generated document: surface text plus its analyzed token ids and the
/// ground-truth topic mixture it was sampled from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedDoc {
    /// Dense document id, equal to its position in the corpus.
    pub id: u32,
    /// Surface text (includes stopword noise).
    pub text: String,
    /// Analyzed token ids (stopwords removed); matches what the shared
    /// analyzer produces from `text`.
    pub tokens: Vec<TermId>,
    /// Ground-truth `(topic, weight)` mixture, descending by weight.
    pub mixture: Vec<(usize, f64)>,
}

impl GeneratedDoc {
    /// The topic carrying the largest mixture weight.
    pub fn dominant_topic(&self) -> usize {
        self.mixture
            .first()
            .map(|&(t, _)| t)
            .expect("documents always have at least one topic")
    }

    /// Ground-truth weight of `topic` in this document.
    pub fn topic_weight(&self, topic: usize) -> f64 {
        self.mixture
            .iter()
            .find(|&&(t, _)| t == topic)
            .map(|&(_, w)| w)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(CorpusConfig::default().validate().is_ok());
        assert!(CorpusConfig::tiny().validate().is_ok());
    }

    #[test]
    fn vocab_size_accounting() {
        let cfg = CorpusConfig::tiny();
        assert_eq!(cfg.vocab_size(), 8 * 40 + 30 + 60);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = CorpusConfig::tiny();
        cfg.num_docs = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = CorpusConfig::tiny();
        cfg.background_weight = 1.0;
        assert!(cfg.validate().is_err());

        let mut cfg = CorpusConfig::tiny();
        cfg.min_doc_len = 500;
        cfg.max_doc_len = 100;
        assert!(cfg.validate().is_err());

        let mut cfg = CorpusConfig::tiny();
        cfg.mixture_alpha = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn doc_helpers() {
        let doc = GeneratedDoc {
            id: 0,
            text: String::new(),
            tokens: vec![],
            mixture: vec![(3, 0.7), (1, 0.3)],
        };
        assert_eq!(doc.dominant_topic(), 3);
        assert_eq!(doc.topic_weight(1), 0.3);
        assert_eq!(doc.topic_weight(9), 0.0);
    }
}
