//! Experiment `reduced` — the systematic study of reduced-data LDA
//! training that Section V-A leaves for future work.
//!
//! The paper scales LDA training by suggesting "a representative dataset,
//! comprising documents sampled from the corpus and/or only the more
//! 'impactful' words (e.g., as determined by TF-IDF values)". The open
//! question is whether a model trained on reduced data still drives the
//! ghost-query generator well enough to hide the user intention *from an
//! adversary who holds the full model*: the adversary analyzes the query
//! log with the best model available (the search engine can always train
//! on everything it hosts), so privacy must be judged in the full model's
//! topic space, not the reduced model's own.
//!
//! For every `(doc_rate, vocab_rate)` grid point we:
//! 1. train a reduced model at the default K;
//! 2. run TopPriv with ghosts generated from the reduced model
//!    (expanded back to the full term space, see
//!    [`tsearch_lda::ReducedModel::expand`]);
//! 3. score the produced cycles under the **reference** full-data model:
//!    intention at ε1, exposure/mask, and the fraction of queries whose
//!    `(ε1, ε2)` requirement holds in the reference topic space;
//! 4. record the client-side model bytes and training time.

use crate::context::ExperimentContext;
use crate::table::{f3, pct, ResultTable};
use std::time::Instant;
use toppriv_core::{
    exposure, mask_level, BeliefEngine, GhostConfig, GhostGenerator, PrivacyRequirement,
};
use tsearch_lda::{LdaConfig, ReducedModel, ReductionConfig};

/// The reduction grid: every combination of these document and vocabulary
/// rates is trained and evaluated (1.0/1.0 is the reference row).
pub const DOC_RATES: &[f64] = &[1.0, 0.5, 0.25];
/// Vocabulary keep-rates (by TF-IDF impact).
pub const VOCAB_RATES: &[f64] = &[1.0, 0.5, 0.25];

/// Outcome of one grid point.
struct GridPoint {
    doc_rate: f64,
    vocab_rate: f64,
    client_mb: f64,
    train_secs: f64,
    token_drop: f64,
    self_exposure: f64,
    ref_exposure: f64,
    ref_mask: f64,
    ref_satisfied: f64,
    cycle_len: f64,
}

/// Runs the reduced-training study on the default model's K.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let docs = ctx.corpus.token_docs();
    let vocab_size = ctx.corpus.vocab.len();
    let k = ctx.scale.default_k;
    let requirement = PrivacyRequirement::paper_default();
    let reference = BeliefEngine::new(ctx.default_model().clone());
    let queries = ctx.sweep_queries();

    // Train all grid points in parallel: each is independent.
    let grid: Vec<(f64, f64)> = DOC_RATES
        .iter()
        .flat_map(|&d| VOCAB_RATES.iter().map(move |&v| (d, v)))
        .collect();
    let points: Vec<GridPoint> = std::thread::scope(|s| {
        let handles: Vec<_> = grid
            .iter()
            .map(|&(doc_rate, vocab_rate)| {
                let docs = &docs;
                let reference = &reference;
                s.spawn(move || {
                    let t0 = Instant::now();
                    let reduced = ReducedModel::train(
                        docs,
                        vocab_size,
                        LdaConfig {
                            iterations: ctx.scale.lda_iterations,
                            ..LdaConfig::with_topics(k)
                        },
                        ReductionConfig {
                            doc_rate,
                            vocab_rate,
                            ..Default::default()
                        },
                    );
                    let train_secs = t0.elapsed().as_secs_f64();
                    let expanded = std::sync::Arc::new(reduced.expand());
                    let generator = GhostGenerator::new(
                        BeliefEngine::new(expanded.clone()),
                        requirement,
                        GhostConfig::default(),
                    );
                    let mut self_exposure = 0.0;
                    let mut ref_exposure = 0.0;
                    let mut ref_mask = 0.0;
                    let mut ref_satisfied = 0usize;
                    let mut cycle_len = 0usize;
                    let mut judged = 0usize;
                    for q in queries {
                        let r = generator.generate(&q.tokens);
                        self_exposure += r.metrics.exposure;
                        cycle_len += r.cycle_len();
                        // Adversary's view: the same cycle scored under the
                        // reference model's topics.
                        let ref_boost_u = reference.boost(&q.tokens);
                        let intention = requirement.user_intention(&ref_boost_u);
                        let posteriors: Vec<Vec<f64>> = r
                            .cycle_tokens()
                            .iter()
                            .map(|t| reference.posterior(t))
                            .collect();
                        let cycle_boosts = reference.cycle_boost(&posteriors);
                        if !intention.is_empty() {
                            ref_exposure += exposure(&cycle_boosts, &intention);
                            ref_mask += mask_level(&cycle_boosts, &intention);
                            if requirement.is_satisfied(&cycle_boosts, &intention) {
                                ref_satisfied += 1;
                            }
                            judged += 1;
                        }
                    }
                    let n = queries.len().max(1) as f64;
                    let j = judged.max(1) as f64;
                    GridPoint {
                        doc_rate,
                        vocab_rate,
                        client_mb: reduced.client_bytes() as f64 / (1024.0 * 1024.0),
                        train_secs,
                        token_drop: reduced.token_drop_rate(),
                        self_exposure: self_exposure / n,
                        ref_exposure: ref_exposure / j,
                        ref_mask: ref_mask / j,
                        ref_satisfied: ref_satisfied as f64 / j,
                        cycle_len: cycle_len as f64 / n,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("grid worker panicked"))
            .collect()
    });

    let mut table = ResultTable::new(
        "ext2_reduced_training",
        "Reduced-data LDA training (Section V-A future work): ghosts from a \
         reduced model, privacy judged under the full reference model \
         (default K, eps=(5%,1%))",
        vec![
            "doc_rate".into(),
            "vocab_rate".into(),
            "client_mbytes".into(),
            "train_secs".into(),
            "token_drop_pct".into(),
            "self_exposure_pct".into(),
            "ref_exposure_pct".into(),
            "ref_mask_pct".into(),
            "ref_satisfied".into(),
            "cycle_len".into(),
        ],
    );
    for p in &points {
        table.push_row(vec![
            f3(p.doc_rate),
            f3(p.vocab_rate),
            f3(p.client_mb),
            f3(p.train_secs),
            pct(p.token_drop),
            pct(p.self_exposure),
            pct(p.ref_exposure),
            pct(p.ref_mask),
            f3(p.ref_satisfied),
            f3(p.cycle_len),
        ]);
    }
    vec![table]
}
