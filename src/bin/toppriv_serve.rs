//! `toppriv-serve` — the multi-tenant private-search service.
//!
//! Modes:
//!
//! - `--demo`: build a synthetic corpus + LDA model, open `--sessions`
//!   tenants, run a paced multi-tenant workload through the cycle
//!   scheduler, and print per-session privacy metrics plus the global
//!   cache/latency report;
//! - `--tcp ADDR`: serve the NDJSON protocol over TCP;
//! - `--stdin`: serve the NDJSON protocol over stdin/stdout (default
//!   when no mode flag is given).
//!
//! All modes accept `--shards N` to term-shard the search tier: postings
//! split across N shards, per-shard scheduler queues and adversary logs.
//! The demo additionally accepts `--planner` to route cycles through the
//! cross-session ghost planner (decoy reuse + coalesced shared
//! submissions) and prints the resulting fleet cost ratio.
//!
//! ```text
//! cargo run --release --bin toppriv-serve -- --sessions 64 --shards 4 --demo
//! ```

use std::sync::Arc;
use toppriv::corpus::{generate_workload, SyntheticCorpus, WorkloadConfig};
use toppriv::service::{
    AuditConfig, CycleScheduler, FaultKind, FaultPlane, FaultSpec, GhostPlanner, SessionConfig,
    SessionManager,
};
use toppriv::{CorpusConfig, LdaModel, SearchTier};

struct Args {
    sessions: usize,
    demo: bool,
    tcp: Option<String>,
    queries_per_session: usize,
    cache_capacity: usize,
    no_cache: bool,
    workers: usize,
    shards: usize,
    docs: usize,
    topics: usize,
    lda_iterations: usize,
    metrics_interval: Option<u64>,
    audit_interval: Option<u64>,
    planner: bool,
    fault_rate: f64,
    fault_seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sessions: 8,
            demo: false,
            tcp: None,
            queries_per_session: 4,
            cache_capacity: 4096,
            no_cache: false,
            workers: 4,
            shards: 1,
            docs: 800,
            topics: 24,
            lda_iterations: 40,
            metrics_interval: None,
            audit_interval: None,
            planner: false,
            fault_rate: 0.0,
            fault_seed: 0xC4A0_5EED,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let parse_usize = |argv: &[String], i: &mut usize, flag: &str| -> Result<usize, String> {
        *i += 1;
        argv.get(*i)
            .ok_or(format!("{flag} needs a value"))?
            .parse::<usize>()
            .map_err(|e| format!("{flag}: {e}"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--sessions" => args.sessions = parse_usize(&argv, &mut i, "--sessions")?,
            "--queries" => args.queries_per_session = parse_usize(&argv, &mut i, "--queries")?,
            "--cache-capacity" => {
                args.cache_capacity = parse_usize(&argv, &mut i, "--cache-capacity")?
            }
            "--workers" => args.workers = parse_usize(&argv, &mut i, "--workers")?,
            "--shards" => {
                args.shards = parse_usize(&argv, &mut i, "--shards")?.max(1);
            }
            "--docs" => args.docs = parse_usize(&argv, &mut i, "--docs")?,
            "--topics" => args.topics = parse_usize(&argv, &mut i, "--topics")?,
            "--lda-iterations" => {
                args.lda_iterations = parse_usize(&argv, &mut i, "--lda-iterations")?
            }
            "--metrics-interval" => {
                args.metrics_interval =
                    Some(parse_usize(&argv, &mut i, "--metrics-interval")? as u64)
            }
            "--audit-interval" => {
                args.audit_interval = Some(parse_usize(&argv, &mut i, "--audit-interval")? as u64)
            }
            "--fault-rate" => {
                i += 1;
                args.fault_rate = argv
                    .get(i)
                    .ok_or("--fault-rate needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("--fault-rate: {e}"))?;
                if !(0.0..=1.0).contains(&args.fault_rate) {
                    return Err("--fault-rate must be in [0, 1]".into());
                }
            }
            "--fault-seed" => {
                i += 1;
                args.fault_seed = argv
                    .get(i)
                    .ok_or("--fault-seed needs a value")?
                    .parse::<u64>()
                    .map_err(|e| format!("--fault-seed: {e}"))?;
            }
            "--no-cache" => args.no_cache = true,
            "--planner" => args.planner = true,
            "--demo" => args.demo = true,
            "--stdin" => args.demo = false,
            "--tcp" => {
                i += 1;
                args.tcp = Some(argv.get(i).ok_or("--tcp needs an address")?.clone());
            }
            "--help" | "-h" => {
                println!(
                    "toppriv-serve — multi-tenant private-search service\n\
                     --demo             run the synthetic multi-tenant demo and exit\n\
                     --tcp ADDR         serve NDJSON over TCP (e.g. 127.0.0.1:7077)\n\
                     --stdin            serve NDJSON over stdin/stdout (default)\n\
                     --sessions N       tenants in the demo (default 8)\n\
                     --queries N        queries per tenant in the demo (default 4)\n\
                     --cache-capacity N result cache entries (default 4096)\n\
                     --no-cache         disable the result cache\n\
                     --planner          route demo cycles through the cross-session ghost\n\
                     \u{20}                  planner (decoy reuse + coalesced shared submissions)\n\
                     --workers N        scheduler worker threads (default 4)\n\
                     --shards N         term-shard the search tier across N shards (default 1)\n\
                     --docs N           synthetic corpus size (default 800)\n\
                     --topics N         LDA topic count (default 24)\n\
                     --lda-iterations N Gibbs iterations (default 40)\n\
                     --fault-rate R     inject deterministic worker panics and short shard\n\
                     \u{20}                  stalls at rate R in [0, 1]; the demo drains through\n\
                     \u{20}                  the self-healing path and reports rollbacks (default 0)\n\
                     --fault-seed N     fault-plane seed: the whole injected schedule is a\n\
                     \u{20}                  pure function of this (default 3298844397)\n\
                     --metrics-interval SECS\n\
                     \u{20}                  emit the metrics registry as NDJSON every SECS\n\
                     \u{20}                  seconds (demo: stdout + final dump; server: stderr)\n\
                     --audit-interval SECS\n\
                     \u{20}                  print the privacy-audit health line to stderr every\n\
                     \u{20}                  SECS seconds; the demo additionally exits non-zero\n\
                     \u{20}                  when the audit plane reports degraded"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (see --help)")),
        }
        i += 1;
    }
    Ok(args)
}

/// Builds the shared stack: synthetic corpus, search tier hosting it
/// (term-sharded when `--shards > 1`), LDA model.
fn build_stack(args: &Args) -> (SyntheticCorpus, SearchTier, Arc<LdaModel>) {
    let t0 = std::time::Instant::now();
    let (corpus, tier, model) = toppriv::build_demo_stack_sharded(
        CorpusConfig {
            num_docs: args.docs,
            num_topics: (args.topics / 2).max(4),
            terms_per_topic: 80,
            ..CorpusConfig::default()
        },
        args.topics,
        args.lda_iterations,
        args.shards,
    );
    eprintln!(
        "[toppriv-serve] stack ready in {:.1}s: {} docs, {} vocab, LDA K={}, {} shard(s)",
        t0.elapsed().as_secs_f64(),
        corpus.num_docs(),
        corpus.vocab.len(),
        args.topics,
        tier.num_shards(),
    );
    (corpus, tier, model)
}

fn build_manager(args: &Args, tier: SearchTier, model: Arc<LdaModel>) -> SessionManager {
    // Bind the service metrics to the process-global registry so the
    // engine-layer histograms (scatter/gather, pacing) and the service
    // counters surface through one exposition endpoint. The audit plane
    // is always attached (after the registry, so its gauges land there
    // too): it serves the `Health` / `AuditTail` protocol ops and the
    // `--audit-interval` health line.
    let mut manager = SessionManager::with_tier(tier, model)
        .with_defaults(SessionConfig::default())
        .with_metrics_registry(toppriv::obs::global().clone())
        .with_auditor(AuditConfig::default());
    if !args.no_cache {
        manager = manager.with_cache(args.cache_capacity);
    }
    // Chaos mode: a deterministic fault plane (worker panics + short
    // shard stalls at `--fault-rate`, schedule a pure function of
    // `--fault-seed`). Attached after the auditor so injected faults
    // land in the audit journal.
    if args.fault_rate > 0.0 {
        eprintln!(
            "[toppriv-serve] fault injection on: rate {}, seed {:#x}",
            args.fault_rate, args.fault_seed,
        );
        // The scheduler catches injected panics; keep the default hook's
        // backtrace spam for *real* panics only.
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("injected "));
            if !injected {
                previous(info);
            }
        }));
        manager = manager.with_fault_plane(Arc::new(
            FaultPlane::new(args.fault_seed)
                .with_spec(FaultSpec::rate(FaultKind::WorkerPanic, args.fault_rate))
                .with_spec(FaultSpec::rate(FaultKind::ShardStall, args.fault_rate).stalling_ms(2)),
        ));
    }
    manager
}

/// Prints one audit health line to stderr and returns whether the plane
/// is healthy (`true` when no auditor is attached — nothing to degrade).
fn emit_audit_health(manager: &SessionManager) -> bool {
    let Some(auditor) = manager.auditor() else {
        return true;
    };
    let h = auditor.health();
    eprintln!(
        "[toppriv-serve] audit {}: {} (worst headroom {:.3e}, burn min {})",
        h.verdict(),
        h.detail,
        h.worst_headroom,
        h.burn_cycles_min,
    );
    h.healthy
}

/// Spawns the periodic audit health-line emitter (stderr).
fn spawn_audit_emitter(
    interval_secs: u64,
    manager: Arc<SessionManager>,
) -> (
    Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<()>,
) {
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle = std::thread::spawn(move || {
        let interval = std::time::Duration::from_secs(interval_secs.max(1));
        loop {
            std::thread::sleep(interval);
            if stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
                break;
            }
            emit_audit_health(&manager);
        }
    });
    (stop, handle)
}

/// Spawns the periodic NDJSON metrics emitter: every `interval_secs` the
/// whole registry is rendered one [`toppriv::obs::MetricSnapshot`] JSON
/// object per line. Demo mode writes to stdout (the CI smoke parses it);
/// server modes write to stderr so the protocol stream stays clean.
fn spawn_metrics_emitter(
    interval_secs: u64,
    to_stdout: bool,
) -> (
    Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<()>,
) {
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle = std::thread::spawn(move || {
        let interval = std::time::Duration::from_secs(interval_secs.max(1));
        loop {
            std::thread::sleep(interval);
            if stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
                break;
            }
            emit_metrics_ndjson(to_stdout);
        }
    });
    (stop, handle)
}

/// Renders the global registry as NDJSON to stdout or stderr.
fn emit_metrics_ndjson(to_stdout: bool) {
    for line in toppriv::obs::render_ndjson(toppriv::obs::global()) {
        if to_stdout {
            println!("{line}");
        } else {
            eprintln!("{line}");
        }
    }
}

fn run_demo(args: &Args) {
    let (corpus, tier, model) = build_stack(args);
    let manager = Arc::new(build_manager(args, tier, model));

    // Tenants share a realistic workload: each session draws its queries
    // from a common pool (overlap across tenants is what a shared search
    // service sees, and what makes the decoy cache pay off).
    let pool = generate_workload(
        &corpus,
        &WorkloadConfig {
            num_queries: (args.sessions * args.queries_per_session / 2).max(8),
            ..WorkloadConfig::default()
        },
    );
    for s in 0..args.sessions {
        manager
            .open_session(&format!("tenant-{s:03}"))
            .expect("fresh id");
    }
    eprintln!(
        "[toppriv-serve] {} sessions open, {} pooled queries, cache {}",
        manager.session_count(),
        pool.len(),
        if manager.cache().is_some() {
            "on"
        } else {
            "off"
        },
    );

    let emitter = args
        .metrics_interval
        .map(|secs| spawn_metrics_emitter(secs, true));
    let audit_emitter = args
        .audit_interval
        .map(|secs| spawn_audit_emitter(secs, manager.clone()));

    // Plan every tenant's paced cycles, merge, and drain on the pool.
    // With `--planner` the cycles route through the cross-session ghost
    // planner instead: decoys are rewritten to match other tenants'
    // queued submissions and identical submissions coalesce into shared
    // queue entries, so the engine sees less than υ× the genuine volume.
    let t0 = std::time::Instant::now();
    let planner = args.planner.then(|| GhostPlanner::new(manager.clone()));
    let mut plans = Vec::new();
    for (s, id) in manager.session_ids().iter().enumerate() {
        for q in 0..args.queries_per_session {
            let query = &pool[(s * args.queries_per_session + q * 7) % pool.len()];
            if let Some(planner) = &planner {
                planner
                    .plan_cycle(id, &query.tokens, 10)
                    .expect("session open");
            } else {
                plans.push(
                    manager
                        .plan_cycle(id, &query.tokens, 10)
                        .expect("session open"),
                );
            }
        }
    }
    let scheduler = CycleScheduler::for_manager(&manager, args.workers);
    let queue = match &planner {
        Some(planner) => planner.take_queue(),
        None => CycleScheduler::merge(plans),
    };
    // Under injected faults the demo takes the self-healing path:
    // retries, replans, and cycle rollbacks instead of lost work.
    let outcomes = if manager.fault_plane().is_some() {
        let report = scheduler.drain_resilient(&manager, queue);
        eprintln!(
            "[toppriv-serve] resilient drain: {} round(s), {} cycle(s) rolled back, {} replanned",
            report.rounds,
            report.rolled_back.len(),
            report.replanned.len(),
        );
        if let Some(plane) = manager.fault_plane() {
            eprintln!("[toppriv-serve]   fault plane: {}", plane.report());
        }
        report.outcomes
    } else {
        scheduler.drain(queue)
    };
    let wall = t0.elapsed().as_secs_f64();

    if let Some((stop, handle)) = emitter {
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        // Final dump so even sub-interval demo runs leave one complete
        // registry snapshot on stdout.
        emit_metrics_ndjson(true);
        let _ = handle.join();
    }
    if let Some((stop, handle)) = audit_emitter {
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = handle.join();
    }

    let genuine = outcomes.iter().filter(|o| o.is_genuine).count();
    let snapshot = manager.metrics();
    println!(
        "\n=== toppriv-serve demo: {} tenants, {} genuine searches, {} submissions in {:.2}s ({:.0} submissions/s)",
        args.sessions,
        genuine,
        outcomes.len(),
        wall,
        outcomes.len() as f64 / wall.max(1e-9),
    );
    println!(
        "    server sees {:.2}x the genuine query volume; engine evaluated {} (cache absorbed {})",
        outcomes.len() as f64 / genuine.max(1) as f64,
        snapshot.global.cache_misses,
        snapshot.global.cache_hits,
    );
    if args.planner {
        println!(
            "    planner: fleet cost ratio {:.2}x ({} engine submissions for {} genuine; {} coalesced, {} decoys reused)",
            snapshot.global.fleet_cost_ratio,
            snapshot.global.engine_submits,
            genuine,
            snapshot.global.planner_coalesced,
            snapshot.global.planner_reuse,
        );
    }
    println!(
        "    cache hit rate {:.1}%  |  submit latency p50 {}us p99 {}us  |  max queue depth {}",
        snapshot.global.cache_hit_rate * 100.0,
        snapshot.global.p50_submit_us,
        snapshot.global.p99_submit_us,
        snapshot.global.max_queue_depth,
    );
    let tier = manager.tier();
    if let Some(engine) = tier.as_sharded() {
        let log_sizes: Vec<usize> = engine.shard_logs().iter().map(|l| l.len()).collect();
        println!(
            "    {} shards drained independently; per-shard adversary log entries: {:?}",
            engine.num_shards(),
            log_sizes,
        );
    }
    println!("\n    per-session privacy (first 12 shown):");
    println!(
        "    {:<12} {:>7} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "session", "cycles", "upsilon", "exposure", "worst", "mask", "satisfied"
    );
    for m in snapshot.sessions.iter().take(12) {
        println!(
            "    {:<12} {:>7} {:>8.2} {:>9.2}% {:>9.2}% {:>9.2}% {:>9.0}%",
            m.session,
            m.cycles,
            m.mean_cycle_len,
            m.mean_exposure * 100.0,
            m.worst_exposure * 100.0,
            m.mean_mask_level * 100.0,
            m.satisfied_rate * 100.0,
        );
    }
    let all_satisfied = snapshot
        .sessions
        .iter()
        .map(|m| m.satisfied_rate)
        .fold(1.0f64, f64::min);
    println!(
        "\n    worst per-session satisfied rate: {:.0}%  |  cache hit rate {:.3} (> 0 expected)",
        all_satisfied * 100.0,
        snapshot.global.cache_hit_rate,
    );
    // With `--audit-interval`, the demo's exit status is the audit
    // plane's verdict: a breached fleet invariant fails the run.
    if args.audit_interval.is_some() {
        let healthy = emit_audit_health(&manager);
        if !healthy {
            eprintln!("[toppriv-serve] audit plane degraded — exiting non-zero");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.demo {
        run_demo(&args);
        return;
    }
    let (_corpus, tier, model) = build_stack(&args);
    // Long-running server modes: bound the demo-oriented adversary
    // log(s) — each shard's, when sharded — so they cannot grow without
    // limit.
    tier.set_query_log_capacity(100_000);
    let manager = Arc::new(build_manager(&args, tier, model));
    // Server modes keep stdout for the NDJSON protocol; the periodic
    // registry dump goes to stderr.
    let _emitter = args
        .metrics_interval
        .map(|secs| spawn_metrics_emitter(secs, false));
    let _audit_emitter = args
        .audit_interval
        .map(|secs| spawn_audit_emitter(secs, manager.clone()));
    match &args.tcp {
        Some(addr) => {
            if let Err(e) = toppriv::service::serve_tcp(manager, addr.as_str()) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            if let Err(e) = toppriv::service::serve_lines(&manager, stdin.lock(), stdout.lock()) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
