//! The inverted index.
//!
//! Maintains, for every vocabulary term, a compressed postings list of the
//! documents containing it — the `<p_ij, d_j>` structure the paper's search
//! engine model assumes — plus the document lengths needed by the scorers.

use crate::postings::{Posting, PostingsBuilder, PostingsList};
use serde::{Deserialize, Serialize};
use tsearch_text::TermId;

/// Immutable inverted index over a document collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvertedIndex {
    postings: Vec<PostingsList>,
    doc_lens: Vec<u32>,
    total_tokens: u64,
    /// Per-term maximum term frequency, for score upper bounds (MaxScore).
    max_tfs: Vec<u32>,
}

impl InvertedIndex {
    /// Builds an index from token-id documents. `vocab_size` fixes the
    /// number of postings lists (terms never observed get empty lists).
    pub fn build(docs: &[&[TermId]], vocab_size: usize) -> Self {
        let mut builders: Vec<PostingsBuilder> = vec![PostingsBuilder::new(); vocab_size];
        let mut doc_lens = Vec::with_capacity(docs.len());
        let mut total_tokens = 0u64;
        // Accumulate per-document term frequencies, then push doc-ordered.
        let mut tf_scratch: Vec<(TermId, u32)> = Vec::new();
        for (doc_id, tokens) in docs.iter().enumerate() {
            doc_lens.push(tokens.len() as u32);
            total_tokens += tokens.len() as u64;
            tf_scratch.clear();
            let mut sorted: Vec<TermId> = tokens.to_vec();
            sorted.sort_unstable();
            let mut i = 0;
            while i < sorted.len() {
                let term = sorted[i];
                let mut j = i;
                while j < sorted.len() && sorted[j] == term {
                    j += 1;
                }
                tf_scratch.push((term, (j - i) as u32));
                i = j;
            }
            for &(term, tf) in &tf_scratch {
                assert!(
                    (term as usize) < vocab_size,
                    "token id {term} outside vocabulary of size {vocab_size}"
                );
                builders[term as usize].push(doc_id as u32, tf);
            }
        }
        let postings: Vec<PostingsList> =
            builders.into_iter().map(PostingsBuilder::build).collect();
        let max_tfs = postings
            .iter()
            .map(|list| list.iter().map(|p| p.tf).max().unwrap_or(0))
            .collect();
        InvertedIndex {
            postings,
            doc_lens,
            total_tokens,
            max_tfs,
        }
    }

    /// Reassembles an index from its parts (the deserialization path).
    ///
    /// # Panics
    /// Panics if `max_tfs` and `postings` lengths disagree — the codec
    /// validates sizes before calling this.
    pub fn from_parts(
        postings: Vec<PostingsList>,
        doc_lens: Vec<u32>,
        total_tokens: u64,
        max_tfs: Vec<u32>,
    ) -> Self {
        assert_eq!(postings.len(), max_tfs.len(), "one max-tf per term");
        InvertedIndex {
            postings,
            doc_lens,
            total_tokens,
            max_tfs,
        }
    }

    /// Decomposes the index into its parts `(postings, doc_lens,
    /// total_tokens, max_tfs)` — the inverse of
    /// [`InvertedIndex::from_parts`]. Used by the term-sharded index to
    /// redistribute postings lists without re-encoding them.
    pub fn into_parts(self) -> (Vec<PostingsList>, Vec<u32>, u64, Vec<u32>) {
        (
            self.postings,
            self.doc_lens,
            self.total_tokens,
            self.max_tfs,
        )
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.doc_lens.len()
    }

    /// Number of terms (postings lists, including empty ones).
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// The postings list of `term`.
    pub fn postings(&self, term: TermId) -> &PostingsList {
        &self.postings[term as usize]
    }

    /// Document frequency of `term`.
    pub fn doc_freq(&self, term: TermId) -> usize {
        self.postings(term).len()
    }

    /// Length (token count) of document `doc_id`.
    pub fn doc_len(&self, doc_id: u32) -> u32 {
        self.doc_lens[doc_id as usize]
    }

    /// Mean document length.
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_lens.is_empty() {
            0.0
        } else {
            self.total_tokens as f64 / self.doc_lens.len() as f64
        }
    }

    /// Total token occurrences indexed.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Total number of `<p_ij, d_j>` postings pairs across all lists.
    pub fn total_postings(&self) -> u64 {
        self.postings.iter().map(|p| p.len() as u64).sum()
    }

    /// Maximum term frequency of `term` across all documents (0 if the
    /// term never occurs). Used to derive per-list score upper bounds.
    pub fn max_tf(&self, term: TermId) -> u32 {
        self.max_tfs[term as usize]
    }

    /// Term frequency of `term` in `doc_id` (linear in the postings list;
    /// used by tests and brute-force verification, not the scoring path).
    pub fn term_freq(&self, term: TermId, doc_id: u32) -> u32 {
        self.postings(term)
            .iter()
            .find(|p| p.doc_id == doc_id)
            .map(|p| p.tf)
            .unwrap_or(0)
    }

    /// Inverse document frequency `ln(N / df)`; 0 for unseen terms.
    pub fn idf(&self, term: TermId) -> f64 {
        let df = self.doc_freq(term);
        if df == 0 {
            0.0
        } else {
            (self.num_docs() as f64 / df as f64).ln()
        }
    }

    /// Size accounting used by Figure 6.
    pub fn size_breakdown(&self) -> IndexSizeBreakdown {
        let postings_bytes: usize = self.postings.iter().map(|p| p.size_bytes()).sum();
        // Dictionary: one offset (8B) + one length (4B) per term — the
        // in-memory fixed cost of addressing each list.
        let dictionary_bytes = self.postings.len() * 12;
        let doc_lens_bytes = self.doc_lens.len() * 4;
        IndexSizeBreakdown {
            postings_bytes,
            dictionary_bytes,
            doc_lens_bytes,
        }
    }

    /// All postings of `term` decoded (convenience for brute-force checks).
    pub fn postings_vec(&self, term: TermId) -> Vec<Posting> {
        self.postings(term).to_vec()
    }
}

/// Byte-size breakdown of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexSizeBreakdown {
    /// Compressed postings bytes.
    pub postings_bytes: usize,
    /// Dictionary/offset table bytes.
    pub dictionary_bytes: usize,
    /// Document length table bytes.
    pub doc_lens_bytes: usize,
}

impl IndexSizeBreakdown {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.postings_bytes + self.dictionary_bytes + self.doc_lens_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<TermId>> {
        vec![
            vec![0, 1, 2, 0], // doc 0: term 0 twice
            vec![1, 3],       // doc 1
            vec![0, 3, 3, 3], // doc 2
            vec![],           // doc 3: empty
        ]
    }

    fn build() -> InvertedIndex {
        let docs = docs();
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        InvertedIndex::build(&refs, 5)
    }

    #[test]
    fn basic_structure() {
        let idx = build();
        assert_eq!(idx.num_docs(), 4);
        assert_eq!(idx.num_terms(), 5);
        assert_eq!(idx.doc_freq(0), 2);
        assert_eq!(idx.doc_freq(1), 2);
        assert_eq!(idx.doc_freq(2), 1);
        assert_eq!(idx.doc_freq(3), 2);
        assert_eq!(idx.doc_freq(4), 0);
        assert_eq!(idx.total_tokens(), 10);
        assert_eq!(idx.doc_len(0), 4);
        assert_eq!(idx.doc_len(3), 0);
    }

    #[test]
    fn term_frequencies() {
        let idx = build();
        assert_eq!(idx.term_freq(0, 0), 2);
        assert_eq!(idx.term_freq(0, 2), 1);
        assert_eq!(idx.term_freq(3, 2), 3);
        assert_eq!(idx.term_freq(4, 0), 0);
    }

    #[test]
    fn postings_are_doc_ordered() {
        let idx = build();
        for term in 0..5u32 {
            let list = idx.postings_vec(term);
            for pair in list.windows(2) {
                assert!(pair[0].doc_id < pair[1].doc_id);
            }
        }
    }

    #[test]
    fn max_tf_tracked() {
        let idx = build();
        assert_eq!(idx.max_tf(0), 2);
        assert_eq!(idx.max_tf(3), 3);
        assert_eq!(idx.max_tf(4), 0);
    }

    #[test]
    fn idf_ordering() {
        let idx = build();
        assert!(idx.idf(2) > idx.idf(0), "rarer term has higher idf");
        assert_eq!(idx.idf(4), 0.0);
    }

    #[test]
    fn size_breakdown_totals() {
        let idx = build();
        let sizes = idx.size_breakdown();
        assert!(sizes.postings_bytes > 0);
        assert_eq!(sizes.dictionary_bytes, 5 * 12);
        assert_eq!(sizes.doc_lens_bytes, 4 * 4);
        assert_eq!(
            sizes.total(),
            sizes.postings_bytes + sizes.dictionary_bytes + sizes.doc_lens_bytes
        );
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn out_of_vocab_token_panics() {
        let doc = vec![9u32];
        let refs: Vec<&[TermId]> = vec![doc.as_slice()];
        InvertedIndex::build(&refs, 5);
    }
}
