//! # toppriv-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index). The
//! `reproduce` binary drives everything:
//!
//! ```text
//! cargo run -p toppriv-bench --release --bin reproduce -- --exp all --scale standard
//! ```
//!
//! Criterion microbenchmarks for the hot paths (ghost generation, LDA
//! training/inference, search, postings codec, baselines) live under
//! `benches/`.

pub mod context;
pub mod diff;
pub mod experiments;
pub mod obsbench;
pub mod scale;
pub mod scenarios;
pub mod table;

pub use context::ExperimentContext;
pub use diff::{diff_dirs, diff_snapshot, DiffConfig, DiffReport};
pub use obsbench::{emit_bench, service_bench_snapshot, service_stage_stats};
pub use scale::Scale;
pub use table::ResultTable;
