//! Experiment `staleness` (extension beyond the paper): topic drift vs
//! the once-trained client model.
//!
//! Section IV-B trains the LDA model once and retains it. Enterprise
//! corpora drift: new projects bring new topics and new vocabulary. The
//! adversary (the search engine) can retrain whenever it likes; the
//! client often cannot. This experiment evolves the corpus (new topic
//! blocks + documents), then protects queries three ways and audits each
//! against a **fresh** model:
//!
//! - `stale` — the deployed client: out-of-vocabulary terms are dropped,
//!   intention is inferred with the old model, ghosts follow the paper's
//!   stopping rule. On new-topic queries the stale model sees nothing to
//!   protect, emits no ghosts, and the query is fully exposed.
//! - `stale_forced` — defensive mitigation: the client always pads the
//!   cycle to υ = 4 even when its model reports no intention.
//! - `retrained` — the client retrained on the evolved corpus (upper
//!   bound, at full retraining cost).

use crate::context::ExperimentContext;
use crate::obsbench;
use crate::table::{f3, pct, ResultTable};
use std::time::Instant;
use toppriv_core::{exposure, BeliefEngine, GhostConfig, GhostGenerator, PrivacyRequirement};
use toppriv_obs::{BenchSnapshot, Histogram, StageStats};
use tsearch_corpus::{generate_workload, EvolutionConfig, WorkloadConfig};
use tsearch_lda::{LdaConfig, LdaTrainer};

/// Forced cycle length for the mitigation policy.
pub const FORCED_UPSILON: usize = 4;

/// Runs the staleness experiment at the default K.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let base_topics = ctx.corpus.num_topics();
    let old_vocab = ctx.corpus.vocab.len() as u32;
    let evolved = ctx.corpus.evolve(EvolutionConfig {
        new_topics: (base_topics / 5).max(2),
        new_docs: (ctx.corpus.num_docs() / 5).max(50),
        new_topic_share: 0.8,
        ..Default::default()
    });

    // Fresh model over the evolved corpus — both the adversary's view and
    // the `retrained` client.
    let evolved_docs = evolved.token_docs();
    let fresh = LdaTrainer::train(
        &evolved_docs,
        evolved.vocab.len(),
        LdaConfig {
            iterations: ctx.scale.lda_iterations,
            ..LdaConfig::with_topics(ctx.scale.default_k)
        },
    );
    let fresh = std::sync::Arc::new(fresh);
    let audit = BeliefEngine::new(fresh.clone());
    let requirement = PrivacyRequirement::paper_default();

    let stale_gen = GhostGenerator::new(
        BeliefEngine::new(ctx.default_model().clone()),
        requirement,
        GhostConfig::default(),
    );
    let fresh_gen = GhostGenerator::new(
        BeliefEngine::new(fresh.clone()),
        requirement,
        GhostConfig::default(),
    );

    // Workload over the evolved corpus, split by query class. Generating
    // a larger pool guarantees enough new-topic queries.
    let pool = generate_workload(
        &evolved,
        &WorkloadConfig {
            num_queries: ctx.scale.queries_per_setting * 8,
            ..ctx.scale.workload.clone()
        },
    );
    let per_class = ctx.scale.queries_per_setting.max(8);
    let old_queries: Vec<_> = pool
        .iter()
        .filter(|q| q.target_topics.iter().all(|&t| t < base_topics))
        .take(per_class)
        .collect();
    let new_queries: Vec<_> = pool
        .iter()
        .filter(|q| q.target_topics.iter().all(|&t| t >= base_topics))
        .take(per_class)
        .collect();

    let mut table = ResultTable::new(
        "ext5_model_staleness",
        "Topic drift vs the once-trained client model: privacy audited \
         under a fresh adversary model (default K, eps=(5%,1%))",
        vec![
            "policy".into(),
            "query_class".into(),
            "queries".into(),
            "client_seen_intention".into(),
            "oov_token_pct".into(),
            "cycle_len".into(),
            "exposure_pct".into(),
            "satisfied".into(),
        ],
    );

    // Bench trail: client-side cycle-formulation latency per policy
    // (this experiment has no service stages — the cost being priced is
    // ghost generation under a stale vs retrained model).
    let mut bench = BenchSnapshot::new("staleness");
    let mut generated = 0u64;
    let mut gen_secs = 0.0f64;

    for policy in ["stale", "stale_forced", "retrained"] {
        let gen_us = Histogram::new();
        for (class, queries) in [("old_topics", &old_queries), ("new_topics", &new_queries)] {
            let mut seen_intention = 0.0f64;
            let mut oov = 0.0f64;
            let mut cycle_len = 0.0f64;
            let mut expo = 0.0f64;
            let mut satisfied = 0usize;
            let mut judged = 0usize;
            for q in queries.iter() {
                // The stale client must drop terms its model has never
                // seen (exactly what GibbsLDA++ does in inference mode).
                let projected: Vec<u32> = q
                    .tokens
                    .iter()
                    .copied()
                    .filter(|&w| w < old_vocab)
                    .collect();
                oov += 1.0 - projected.len() as f64 / q.tokens.len().max(1) as f64;
                let t_gen = Instant::now();
                let r = match policy {
                    "stale" => stale_gen.generate(&projected),
                    "stale_forced" => stale_gen.generate_with_target(&projected, FORCED_UPSILON),
                    _ => fresh_gen.generate(&q.tokens),
                };
                let gen_elapsed = t_gen.elapsed();
                gen_us.record(gen_elapsed.as_micros() as u64);
                gen_secs += gen_elapsed.as_secs_f64();
                generated += 1;
                seen_intention += r.intention.len() as f64;
                cycle_len += r.cycle_len() as f64;
                // The cycle as the server sees it: the genuine query goes
                // out with its full (unprojected) terms; ghost terms are
                // old-vocabulary ids, valid in the evolved vocabulary.
                let cycle_full: Vec<Vec<u32>> = r
                    .cycle
                    .iter()
                    .enumerate()
                    .map(|(i, cq)| {
                        if i == r.genuine_index {
                            q.tokens.clone()
                        } else {
                            cq.tokens.clone()
                        }
                    })
                    .collect();
                let solo = audit.boost(&q.tokens);
                let intention = requirement.user_intention(&solo);
                if intention.is_empty() {
                    continue;
                }
                let posteriors: Vec<Vec<f64>> =
                    cycle_full.iter().map(|t| audit.posterior(t)).collect();
                let boosts = audit.cycle_boost(&posteriors);
                expo += exposure(&boosts, &intention);
                if requirement.is_satisfied(&boosts, &intention) {
                    satisfied += 1;
                }
                judged += 1;
            }
            let n = queries.len().max(1) as f64;
            let j = judged.max(1) as f64;
            table.push_row(vec![
                policy.into(),
                class.into(),
                queries.len().to_string(),
                f3(seen_intention / n),
                pct(oov / n),
                f3(cycle_len / n),
                pct(expo / j),
                f3(satisfied as f64 / j),
            ]);
        }
        bench.stages.push(StageStats::from_histogram(
            format!("generate_{policy}"),
            &gen_us,
        ));
    }
    bench.qps = generated as f64 / gen_secs.max(1e-9);
    bench.notes = format!(
        "client-side cycle formulation, {} queries/class, {} new topic(s)",
        per_class,
        evolved.num_topics() - base_topics
    );
    obsbench::emit_bench(&bench);
    vec![table]
}
