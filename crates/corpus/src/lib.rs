//! # tsearch-corpus
//!
//! Synthetic corpus and workload substrate — the reproduction's substitute
//! for the Wall Street Journal corpus and the TREC-1/2 ad-hoc queries used
//! in the paper (see DESIGN.md §2 for the substitution argument).
//!
//! The corpus is drawn from an LDA-style generative model over ground-truth
//! topics, giving every document a known topic mixture and every query a
//! known topical intention — which is exactly the ground truth needed to
//! evaluate how well TopPriv hides that intention.
//!
//! ## Example
//!
//! ```
//! use tsearch_corpus::{CorpusConfig, SyntheticCorpus, WorkloadConfig, generate_workload};
//!
//! let corpus = SyntheticCorpus::generate(CorpusConfig::tiny());
//! let queries = generate_workload(&corpus, &WorkloadConfig { num_queries: 5, ..Default::default() });
//! assert_eq!(queries.len(), 5);
//! assert!(queries[0].len() >= 2);
//! ```

pub mod dist;
pub mod evolve;
pub mod generator;
pub mod spec;
pub mod stats;
pub mod words;
pub mod workload;

pub use evolve::EvolutionConfig;
pub use generator::SyntheticCorpus;
pub use spec::{CorpusConfig, GeneratedDoc, TopicGroundTruth};
pub use stats::{fit_heaps, vocabulary_growth, CorpusStats};
pub use workload::{generate_workload, relevance_judgments, BenchmarkQuery, WorkloadConfig};
