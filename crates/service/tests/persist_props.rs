//! Property tests for the session spill codec: for every session state —
//! arbitrary posterior histories, exposure aggregates, configs — the
//! spill round-trips **bitwise** (every `f64` compared by bit pattern,
//! not tolerance), both at the raw codec layer and through the sealed
//! CRC32 store container, and any single corrupted byte in a sealed
//! container is rejected rather than decoded.

use proptest::prelude::*;
use toppriv_core::{GhostConfig, PacingConfig, PacingStrategy, PrivacyRequirement, TermSelection};
use toppriv_service::persist::{decode_session_state, encode_session_state};
use toppriv_service::{
    seal_query_log, seal_session_state, unseal_query_log, unseal_session_state, SessionConfig,
    SessionState,
};
use tsearch_search::LoggedQuery;

fn pacing_strategy() -> impl Strategy<Value = PacingStrategy> {
    prop_oneof![
        Just(PacingStrategy::NaiveImmediate),
        Just(PacingStrategy::ShuffledBurst),
        (any::<f64>(), any::<f64>()).prop_map(|(window_secs, max_genuine_delay_secs)| {
            PacingStrategy::PoissonSpread {
                window_secs,
                max_genuine_delay_secs,
            }
        }),
    ]
}

fn config_strategy() -> impl Strategy<Value = SessionConfig> {
    (
        (any::<f64>(), any::<f64>()),
        (
            any::<f64>(),
            any::<f64>(),
            0usize..1000,
            0usize..1000,
            any::<bool>(),
            any::<u64>(),
        ),
        (pacing_strategy(), any::<f64>(), any::<f64>(), any::<u64>()),
        (any::<bool>(), 0usize..1000, any::<f64>()),
    )
        .prop_map(
            |(
                (eps1, eps2),
                (min_len_mult, max_len_mult, max_cycle_len, term_pool, biased, ghost_seed),
                (strategy, burst_gap_secs, jitter, pacing_seed),
                (history_aware, top_k, think_time_secs),
            )| SessionConfig {
                requirement: PrivacyRequirement { eps1, eps2 },
                ghost: GhostConfig {
                    min_len_mult,
                    max_len_mult,
                    max_cycle_len,
                    term_pool,
                    term_selection: if biased {
                        TermSelection::Biased
                    } else {
                        TermSelection::SpecificityMatched
                    },
                    seed: ghost_seed,
                },
                pacing: PacingConfig {
                    strategy,
                    burst_gap_secs,
                    jitter,
                    seed: pacing_seed,
                },
                history_aware,
                top_k,
                think_time_secs,
            },
        )
}

fn state_strategy() -> impl Strategy<Value = SessionState> {
    (
        config_strategy(),
        proptest::collection::vec(proptest::collection::vec(any::<f64>(), 0..6), 0..5),
        proptest::collection::vec(any::<u64>(), 0..8),
        (
            any::<f64>(),
            proptest::collection::vec(0u64..64, 0..6),
            proptest::collection::vec(any::<f64>(), 0..8),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            (any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<f64>(), any::<f64>(), any::<f64>(), any::<f64>()),
            any::<u64>(),
            any::<u64>(),
        ),
    )
        .prop_map(
            |(
                config,
                posteriors,
                raw_genuine,
                (clock_secs, union_raw, posterior_sum, posterior_count, next_cycle_id),
                (
                    (cycles, queries_emitted, satisfied),
                    (sum_cycle_len, sum_exposure, worst_exposure, sum_mask),
                    model_epoch,
                    id_nonce,
                ),
            )| {
                // Genuine indices must reference recorded posteriors (the
                // decoder validates this), so they are drawn modulo the
                // history length.
                let genuine: Vec<usize> = if posteriors.is_empty() {
                    Vec::new()
                } else {
                    raw_genuine
                        .iter()
                        .map(|&g| g as usize % posteriors.len())
                        .collect()
                };
                SessionState {
                    id: format!("tenant-{id_nonce:x}"),
                    config,
                    model_epoch,
                    posteriors,
                    genuine,
                    clock_secs,
                    intention_union: union_raw.iter().map(|&t| t as usize).collect(),
                    posterior_sum,
                    posterior_count,
                    next_cycle_id,
                    cycles,
                    queries_emitted,
                    sum_cycle_len,
                    sum_exposure,
                    worst_exposure,
                    sum_mask,
                    satisfied,
                }
            },
        )
}

/// Bitwise equality: `u64`/`usize` fields by value, every `f64` by
/// `to_bits` (tolerance-free, NaN-safe).
fn bit_identical(a: &SessionState, b: &SessionState) -> bool {
    let f = |x: f64, y: f64| x.to_bits() == y.to_bits();
    let fs = |x: &[f64], y: &[f64]| x.len() == y.len() && x.iter().zip(y).all(|(&p, &q)| f(p, q));
    a.id == b.id
        && f(a.config.requirement.eps1, b.config.requirement.eps1)
        && f(a.config.requirement.eps2, b.config.requirement.eps2)
        && f(a.config.ghost.min_len_mult, b.config.ghost.min_len_mult)
        && f(a.config.ghost.max_len_mult, b.config.ghost.max_len_mult)
        && a.config.ghost.max_cycle_len == b.config.ghost.max_cycle_len
        && a.config.ghost.term_pool == b.config.ghost.term_pool
        && a.config.ghost.term_selection == b.config.ghost.term_selection
        && a.config.ghost.seed == b.config.ghost.seed
        && match (&a.config.pacing.strategy, &b.config.pacing.strategy) {
            (PacingStrategy::NaiveImmediate, PacingStrategy::NaiveImmediate) => true,
            (PacingStrategy::ShuffledBurst, PacingStrategy::ShuffledBurst) => true,
            (
                PacingStrategy::PoissonSpread {
                    window_secs: w1,
                    max_genuine_delay_secs: d1,
                },
                PacingStrategy::PoissonSpread {
                    window_secs: w2,
                    max_genuine_delay_secs: d2,
                },
            ) => f(*w1, *w2) && f(*d1, *d2),
            _ => false,
        }
        && f(
            a.config.pacing.burst_gap_secs,
            b.config.pacing.burst_gap_secs,
        )
        && f(a.config.pacing.jitter, b.config.pacing.jitter)
        && a.config.pacing.seed == b.config.pacing.seed
        && a.config.history_aware == b.config.history_aware
        && a.config.top_k == b.config.top_k
        && f(a.config.think_time_secs, b.config.think_time_secs)
        && a.model_epoch == b.model_epoch
        && a.posteriors.len() == b.posteriors.len()
        && a.posteriors
            .iter()
            .zip(&b.posteriors)
            .all(|(x, y)| fs(x, y))
        && a.genuine == b.genuine
        && f(a.clock_secs, b.clock_secs)
        && a.intention_union == b.intention_union
        && fs(&a.posterior_sum, &b.posterior_sum)
        && a.posterior_count == b.posterior_count
        && a.next_cycle_id == b.next_cycle_id
        && a.cycles == b.cycles
        && a.queries_emitted == b.queries_emitted
        && f(a.sum_cycle_len, b.sum_cycle_len)
        && f(a.sum_exposure, b.sum_exposure)
        && f(a.worst_exposure, b.worst_exposure)
        && f(a.sum_mask, b.sum_mask)
        && a.satisfied == b.satisfied
}

proptest! {
    #[test]
    fn codec_roundtrips_bitwise(state in state_strategy()) {
        let back = decode_session_state(&encode_session_state(&state))
            .expect("freshly encoded state decodes");
        prop_assert!(bit_identical(&state, &back));
    }

    #[test]
    fn sealed_container_roundtrips_bitwise(state in state_strategy()) {
        let sealed = seal_session_state(&state);
        let back = unseal_session_state(&sealed).expect("sealed state unseals");
        prop_assert!(bit_identical(&state, &back));
    }

    #[test]
    fn any_corrupted_byte_is_rejected(state in state_strategy(), pos: u64, flip in 1u8..=255) {
        let sealed = seal_session_state(&state);
        let mut bad = sealed.clone();
        let at = pos as usize % bad.len();
        bad[at] ^= flip;
        prop_assert!(unseal_session_state(&bad).is_err());
    }

    #[test]
    fn query_log_roundtrips(entries in proptest::collection::vec(
        (any::<u64>(), proptest::collection::vec(any::<u32>(), 0..8)),
        0..12,
    )) {
        let log: Vec<LoggedQuery> = entries
            .into_iter()
            .map(|(ordinal, tokens)| LoggedQuery {
                ordinal,
                text: format!("q{ordinal:x}"),
                tokens,
            })
            .collect();
        let back = unseal_query_log(&seal_query_log(&log)).expect("sealed log unseals");
        prop_assert_eq!(log.len(), back.len());
        for (a, b) in log.iter().zip(&back) {
            prop_assert_eq!(a.ordinal, b.ordinal);
            prop_assert_eq!(&a.text, &b.text);
            prop_assert_eq!(&a.tokens, &b.tokens);
        }
    }
}
