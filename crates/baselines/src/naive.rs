//! The naive alternative: download the entire inverted index to the client
//! and run queries locally (Section V-D).
//!
//! The paper's Figure 6 compares the client-side space of this approach
//! (the whole index, growing roughly linearly with the corpus) against
//! TopPriv's LDA model (whose dominant `Pr(w|t)` matrix levels off with
//! the vocabulary). This module packages that comparison.

use serde::{Deserialize, Serialize};
use tsearch_index::InvertedIndex;
use tsearch_lda::LdaModel;

/// One point of the Figure 6 comparison.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpaceComparison {
    /// Corpus size (documents) at this point.
    pub num_docs: usize,
    /// Observed vocabulary size at this point.
    pub vocab_size: usize,
    /// Compressed inverted-index bytes (this implementation's encoding).
    pub index_bytes: usize,
    /// Plain `<p_ij, d_j>` pair bytes — the representation the paper's
    /// size comparison uses (8 bytes per posting pair).
    pub index_raw_bytes: u64,
    /// Client-side LDA bytes TopPriv must ship (`Pr(w|t)` + prior).
    pub lda_client_bytes: usize,
}

impl SpaceComparison {
    /// Computes the comparison for one corpus snapshot.
    pub fn measure(num_docs: usize, index: &InvertedIndex, model: &LdaModel) -> Self {
        SpaceComparison {
            num_docs,
            vocab_size: model.vocab_size(),
            index_bytes: index.size_breakdown().total(),
            index_raw_bytes: index.total_postings() * tsearch_index::PIR_PAIR_BYTES as u64,
            lda_client_bytes: model.size_breakdown().client_bytes(),
        }
    }

    /// TopPriv's space saving over the naive approach (positive = smaller),
    /// against the paper's plain-pair index representation.
    pub fn saving_ratio(&self) -> f64 {
        if self.index_raw_bytes == 0 {
            return 0.0;
        }
        1.0 - self.lda_client_bytes as f64 / self.index_raw_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsearch_text::TermId;

    #[test]
    fn measures_both_sides() {
        let docs: Vec<Vec<TermId>> = (0..50)
            .map(|d| (0..30).map(|i| ((d + i) % 20) as TermId).collect())
            .collect();
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        let index = InvertedIndex::build(&refs, 20);
        let model = tsearch_lda::LdaTrainer::train(
            &refs,
            20,
            tsearch_lda::LdaConfig {
                iterations: 5,
                ..tsearch_lda::LdaConfig::with_topics(4)
            },
        );
        let cmp = SpaceComparison::measure(50, &index, &model);
        assert_eq!(cmp.num_docs, 50);
        assert_eq!(cmp.vocab_size, 20);
        assert!(cmp.index_bytes > 0);
        assert_eq!(cmp.index_raw_bytes, index.total_postings() * 8);
        assert!(cmp.index_raw_bytes >= cmp.index_bytes as u64 / 2);
        // phi: 20 words x 4 topics x 4 bytes + prior 4 x 8.
        assert_eq!(cmp.lda_client_bytes, 20 * 4 * 4 + 4 * 8);
        assert!(cmp.saving_ratio() < 1.0);
    }
}
