//! The enterprise search engine.
//!
//! This is the *unmodified* server of the paper's system model: it hosts
//! the plaintext corpus and inverted index, evaluates similarity queries,
//! and — being a curious adversary — keeps a log of every query it
//! processes for after-the-fact analysis.

use crate::log::QueryLog;
use crate::query::Query;
use crate::score::ScoringModel;
use crate::topk::{SearchHit, TopK};
use std::sync::Mutex;
use std::time::Instant;
use toppriv_obs::HistogramHandle;
use tsearch_index::{DocumentStore, InvertedIndex};
use tsearch_text::{Analyzer, TermId, Vocabulary};

pub use crate::log::LoggedQuery;

/// Metric name: single-engine accumulation latency per query (µs).
pub const M_EVAL_US: &str = "engine_eval_us";

/// The search engine: index + document store + scorer + query log.
pub struct SearchEngine {
    index: InvertedIndex,
    store: DocumentStore,
    analyzer: Analyzer,
    vocab: Vocabulary,
    model: ScoringModel,
    /// Precomputed per-document vector norms for cosine scoring.
    doc_norms: Vec<f64>,
    log: Mutex<QueryLog>,
    /// Accumulation-phase latency (global registry handle).
    eval_us: HistogramHandle,
    /// Rank-phase latency, under the same [`crate::sharded::M_GATHER_US`]
    /// name the sharded gather uses — the "gather" stage exists on every
    /// tier.
    gather_us: HistogramHandle,
}

impl SearchEngine {
    /// Assembles an engine over a prebuilt index and store.
    pub fn new(
        index: InvertedIndex,
        store: DocumentStore,
        analyzer: Analyzer,
        vocab: Vocabulary,
        model: ScoringModel,
    ) -> Self {
        let doc_norms = compute_doc_norms(&index, model);
        let registry = toppriv_obs::global();
        SearchEngine {
            index,
            store,
            analyzer,
            vocab,
            model,
            doc_norms,
            log: Mutex::new(QueryLog::new()),
            eval_us: registry.histogram(M_EVAL_US, &[]),
            gather_us: registry.histogram(crate::sharded::M_GATHER_US, &[]),
        }
    }

    /// Builds an engine directly from token documents and their texts.
    pub fn build(
        docs: &[&[TermId]],
        texts: &[String],
        analyzer: Analyzer,
        vocab: Vocabulary,
        model: ScoringModel,
    ) -> Self {
        assert_eq!(docs.len(), texts.len());
        let index = InvertedIndex::build(docs, vocab.len());
        let store = DocumentStore::from_texts(texts.iter().cloned());
        Self::new(index, store, analyzer, vocab, model)
    }

    /// Executes a text query, returning the best `k` documents. The query
    /// is recorded in the server-side log.
    pub fn search(&self, text: &str, k: usize) -> Vec<SearchHit> {
        let query = Query::parse(text, &self.analyzer, &self.vocab);
        self.log_query(text.to_string(), &query);
        self.evaluate(&query, k)
    }

    /// Executes a pre-analyzed token query (logged as its canonical text).
    pub fn search_tokens(&self, tokens: &[TermId], k: usize) -> Vec<SearchHit> {
        let query = Query::from_tokens(tokens);
        let text = tokens
            .iter()
            .map(|&t| self.vocab.term(t))
            .collect::<Vec<_>>()
            .join(" ");
        self.log_query(text, &query);
        self.evaluate(&query, k)
    }

    /// Scores a query without logging it — used by evaluation code that
    /// must not contaminate the adversary-visible trace.
    pub fn evaluate(&self, query: &Query, k: usize) -> Vec<SearchHit> {
        let t0 = Instant::now();
        let mut accumulators: std::collections::HashMap<u32, f64> =
            std::collections::HashMap::new();
        let avg_len = self.index.avg_doc_len();
        for (term, qtf) in query.terms() {
            accumulate_term(
                &self.index,
                self.model,
                avg_len,
                term,
                qtf,
                &mut accumulators,
            );
        }
        self.eval_us.record(t0.elapsed().as_micros() as u64);
        let t1 = Instant::now();
        let mut topk = TopK::new(k);
        for (doc_id, mut score) in accumulators {
            if self.model.needs_cosine_norm() {
                let norm = self.doc_norms[doc_id as usize];
                if norm > 0.0 {
                    score /= norm;
                }
            }
            topk.push(SearchHit { doc_id, score });
        }
        let hits = topk.into_sorted();
        self.gather_us.record(t1.elapsed().as_micros() as u64);
        hits
    }

    /// Top-k evaluation with the MaxScore (quit/continue) optimization.
    ///
    /// Query terms are processed in descending score-upper-bound order;
    /// once the sum of the remaining terms' upper bounds cannot lift an
    /// unseen document above the current k-th best score, no *new*
    /// accumulators are created (existing ones are still completed, so
    /// returned scores are exact). Returns exactly the same hits as
    /// [`SearchEngine::evaluate`].
    ///
    /// The upper bound for cosine-normalized TF-IDF divides by the minimum
    /// document norm, which is loose; BM25's bound (`qw · (k1+1)`) is
    /// tight, so the speedup is largest there.
    pub fn evaluate_maxscore(&self, query: &Query, k: usize) -> Vec<SearchHit> {
        let avg_len = self.index.avg_doc_len();
        // Per-term upper bound on the *normalized* per-document
        // contribution.
        let min_norm = self
            .doc_norms
            .iter()
            .copied()
            .filter(|&n| n > 0.0)
            .fold(f64::INFINITY, f64::min);
        let mut terms: Vec<(tsearch_text::TermId, u32, f64)> = query
            .terms()
            .filter(|&(t, _)| self.index.doc_freq(t) > 0)
            .map(|(t, qtf)| {
                let qw = self.model.query_weight(qtf, self.index.idf(t));
                let max_tf = self.index.max_tf(t);
                // Shortest doc containing the term is unknown; bound the
                // doc weight by the best case over plausible lengths.
                let dw_ub = match self.model {
                    ScoringModel::TfIdfCosine => {
                        let raw = self.model.doc_weight(max_tf.max(1), 1, avg_len);
                        if min_norm.is_finite() && min_norm > 0.0 {
                            raw / min_norm
                        } else {
                            raw
                        }
                    }
                    ScoringModel::Bm25 { k1, .. } => k1 + 1.0,
                };
                (t, qtf, (qw * dw_ub).max(0.0))
            })
            .collect();
        terms.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite bounds"));
        let suffix_bounds: Vec<f64> = {
            let mut acc = 0.0;
            let mut v: Vec<f64> = terms
                .iter()
                .rev()
                .map(|&(_, _, ub)| {
                    acc += ub;
                    acc
                })
                .collect();
            v.reverse();
            v
        };

        let mut accumulators: std::collections::HashMap<u32, f64> =
            std::collections::HashMap::new();
        // k-th best *partial* (normalized) score so far — a lower bound on
        // the true k-th best final score.
        let mut threshold = f64::NEG_INFINITY;
        for (i, &(term, qtf, _)) in terms.iter().enumerate() {
            let qw = self.model.query_weight(qtf, self.index.idf(term));
            // A document first seen now can reach at most suffix_bounds[i];
            // prune only when that is STRICTLY below the k-th best partial,
            // so exact ties are never lost.
            let allow_new = accumulators.len() < k
                || threshold == f64::NEG_INFINITY
                || suffix_bounds[i] >= threshold;
            for posting in self.index.postings(term).iter() {
                let dw =
                    self.model
                        .doc_weight(posting.tf, self.index.doc_len(posting.doc_id), avg_len);
                match accumulators.entry(posting.doc_id) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        *e.get_mut() += qw * dw;
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        if allow_new {
                            e.insert(qw * dw);
                        }
                    }
                }
            }
            // Refresh the threshold from current partial scores.
            if k > 0 && accumulators.len() >= k {
                let mut partials: Vec<f64> = accumulators
                    .iter()
                    .map(|(&d, &s)| {
                        if self.model.needs_cosine_norm() {
                            let n = self.doc_norms[d as usize];
                            if n > 0.0 {
                                s / n
                            } else {
                                s
                            }
                        } else {
                            s
                        }
                    })
                    .collect();
                partials.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
                threshold = partials[k - 1];
            }
        }
        let mut topk = TopK::new(k);
        for (doc_id, mut score) in accumulators {
            if self.model.needs_cosine_norm() {
                let norm = self.doc_norms[doc_id as usize];
                if norm > 0.0 {
                    score /= norm;
                }
            }
            topk.push(SearchHit { doc_id, score });
        }
        topk.into_sorted()
    }

    /// Brute-force scoring of every document (reference implementation for
    /// property tests; O(docs × query terms)).
    pub fn evaluate_bruteforce(&self, query: &Query, k: usize) -> Vec<SearchHit> {
        let avg_len = self.index.avg_doc_len();
        let mut topk = TopK::new(k);
        for doc_id in 0..self.index.num_docs() as u32 {
            let mut score = 0.0;
            for (term, qtf) in query.terms() {
                let tf = self.index.term_freq(term, doc_id);
                if tf == 0 {
                    continue;
                }
                let qw = self.model.query_weight(qtf, self.index.idf(term));
                let dw = self
                    .model
                    .doc_weight(tf, self.index.doc_len(doc_id), avg_len);
                score += qw * dw;
            }
            if score == 0.0 {
                continue;
            }
            if self.model.needs_cosine_norm() {
                let norm = self.doc_norms[doc_id as usize];
                if norm > 0.0 {
                    score /= norm;
                }
            }
            topk.push(SearchHit { doc_id, score });
        }
        topk.into_sorted()
    }

    fn log_query(&self, text: String, query: &Query) {
        self.log.lock().expect("query log poisoned").push(
            text,
            query
                .terms()
                .flat_map(|(t, tf)| std::iter::repeat_n(t, tf as usize))
                .collect(),
        );
    }

    /// Snapshot of the server-side query log — the adversary's view.
    pub fn query_log(&self) -> Vec<LoggedQuery> {
        self.log.lock().expect("query log poisoned").snapshot()
    }

    /// Clears the query log (between experiments). Ordinals restart.
    pub fn clear_query_log(&self) {
        self.log.lock().expect("query log poisoned").clear();
    }

    /// Bounds the query log to the most recent `capacity` entries.
    /// Long-running deployments (e.g. `toppriv-serve`) set this so the
    /// demo-oriented adversary log cannot grow without limit; ordinals
    /// keep counting across dropped entries.
    pub fn set_query_log_capacity(&self, capacity: usize) {
        self.log
            .lock()
            .expect("query log poisoned")
            .set_capacity(capacity);
    }

    /// Fetches a result document's text (Step 7 of the search process).
    pub fn fetch_document(&self, doc_id: u32) -> Option<&str> {
        self.store.get(doc_id)
    }

    /// The engine's index (read-only).
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The engine's vocabulary (read-only).
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The engine's analyzer.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// The scoring model in use.
    pub fn model(&self) -> ScoringModel {
        self.model
    }
}

/// Accumulates one query term's (unnormalized) score contributions from
/// `index` into `accumulators`. This is the inner loop of accumulator
/// evaluation, shared by [`SearchEngine::evaluate`] and the sharded
/// engine's per-shard scatter step — the two MUST score identically
/// (the shard-equivalence contract), so there is exactly one copy.
pub(crate) fn accumulate_term(
    index: &InvertedIndex,
    model: ScoringModel,
    avg_len: f64,
    term: TermId,
    qtf: u32,
    accumulators: &mut std::collections::HashMap<u32, f64>,
) {
    let idf = index.idf(term);
    if idf <= 0.0 && index.doc_freq(term) == 0 {
        return;
    }
    let qw = model.query_weight(qtf, idf);
    if qw == 0.0 {
        return;
    }
    for posting in index.postings(term).iter() {
        let dw = model.doc_weight(posting.tf, index.doc_len(posting.doc_id), avg_len);
        *accumulators.entry(posting.doc_id).or_insert(0.0) += qw * dw;
    }
}

/// Precomputes cosine norms: the L2 norm of each document's weighted term
/// vector under the given model.
fn compute_doc_norms(index: &InvertedIndex, model: ScoringModel) -> Vec<f64> {
    let mut sums = vec![0.0f64; index.num_docs()];
    if !model.needs_cosine_norm() {
        return sums;
    }
    let avg_len = index.avg_doc_len();
    for term in 0..index.num_terms() as u32 {
        for posting in index.postings(term).iter() {
            let w = model.doc_weight(posting.tf, index.doc_len(posting.doc_id), avg_len);
            sums[posting.doc_id as usize] += w * w;
        }
    }
    sums.iter().map(|s| s.sqrt()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsearch_text::Analyzer;

    fn toy_engine(model: ScoringModel) -> SearchEngine {
        let analyzer = Analyzer::new();
        let mut vocab = Vocabulary::new();
        let texts = vec![
            "apache helicopter weapons army".to_string(),
            "apache web server software".to_string(),
            "stock market investors shares shares shares".to_string(),
            "helicopter aviation airport".to_string(),
        ];
        let docs: Vec<Vec<TermId>> = texts
            .iter()
            .map(|t| analyzer.analyze_into(t, &mut vocab))
            .collect();
        for d in &docs {
            vocab.observe_document(d);
        }
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        SearchEngine::build(&refs, &texts, analyzer, vocab, model)
    }

    #[test]
    fn finds_relevant_documents() {
        let engine = toy_engine(ScoringModel::TfIdfCosine);
        let hits = engine.search("apache helicopter", 4);
        assert!(!hits.is_empty());
        // Doc 0 contains both terms and should rank first.
        assert_eq!(hits[0].doc_id, 0);
        // Scores strictly ordered.
        for pair in hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn bm25_also_works() {
        let engine = toy_engine(ScoringModel::bm25_default());
        let hits = engine.search("stock market", 4);
        assert_eq!(hits[0].doc_id, 2);
    }

    #[test]
    fn accumulator_matches_bruteforce() {
        for model in [ScoringModel::TfIdfCosine, ScoringModel::bm25_default()] {
            let engine = toy_engine(model);
            let analyzer = Analyzer::new();
            for text in ["apache", "helicopter airport", "shares investors apache"] {
                let q = Query::parse(text, &analyzer, engine.vocab());
                let fast = engine.evaluate(&q, 10);
                let slow = engine.evaluate_bruteforce(&q, 10);
                assert_eq!(fast.len(), slow.len(), "model {model:?} query {text}");
                for (f, s) in fast.iter().zip(&slow) {
                    assert_eq!(f.doc_id, s.doc_id);
                    assert!((f.score - s.score).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn maxscore_matches_exhaustive() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for model in [ScoringModel::TfIdfCosine, ScoringModel::bm25_default()] {
            // Randomized corpus with repeated docs to exercise ties.
            let vocab_size = 30usize;
            let mut vocab = Vocabulary::new();
            for i in 0..vocab_size {
                vocab.intern(&format!("v{i:02}"));
            }
            let mut docs: Vec<Vec<TermId>> = (0..60)
                .map(|_| {
                    let len = rng.gen_range(2..25);
                    (0..len)
                        .map(|_| rng.gen_range(0..vocab_size) as u32)
                        .collect()
                })
                .collect();
            let dup = docs[0].clone();
            docs.push(dup); // guaranteed score tie
            for d in &docs {
                vocab.observe_document(d);
            }
            let texts: Vec<String> = docs.iter().map(|_| String::new()).collect();
            let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
            let engine = SearchEngine::build(&refs, &texts, Analyzer::new(), vocab, model);
            for _ in 0..30 {
                let qlen = rng.gen_range(1..7);
                let tokens: Vec<u32> = (0..qlen)
                    .map(|_| rng.gen_range(0..vocab_size) as u32)
                    .collect();
                let q = Query::from_tokens(&tokens);
                for k in [1usize, 5, 10] {
                    let fast = engine.evaluate_maxscore(&q, k);
                    let slow = engine.evaluate(&q, k);
                    assert_eq!(fast.len(), slow.len(), "{model:?} k={k}");
                    for (f, s) in fast.iter().zip(&slow) {
                        assert_eq!(f.doc_id, s.doc_id, "{model:?} k={k}");
                        assert!((f.score - s.score).abs() < 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn query_log_records_everything() {
        let engine = toy_engine(ScoringModel::TfIdfCosine);
        engine.search("apache", 2);
        engine.search("stock market", 2);
        let log = engine.query_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].ordinal, 0);
        assert_eq!(log[0].text, "apache");
        assert_eq!(log[1].tokens.len(), 2);
        engine.clear_query_log();
        assert!(engine.query_log().is_empty());
    }

    #[test]
    fn query_log_capacity_bounds_growth() {
        let engine = toy_engine(ScoringModel::TfIdfCosine);
        engine.set_query_log_capacity(3);
        for _ in 0..10 {
            engine.search("apache", 1);
        }
        let log = engine.query_log();
        assert_eq!(log.len(), 3, "log trimmed to capacity");
        // Oldest entries dropped, ordinals still unique and monotone.
        assert_eq!(log.last().unwrap().ordinal, 9);
        assert!(log.windows(2).all(|w| w[0].ordinal < w[1].ordinal));
        // Tightening the capacity trims immediately.
        engine.set_query_log_capacity(1);
        assert_eq!(engine.query_log().len(), 1);
    }

    #[test]
    fn evaluate_does_not_log() {
        let engine = toy_engine(ScoringModel::TfIdfCosine);
        let q = Query::from_tokens(&[0]);
        engine.evaluate(&q, 5);
        assert!(engine.query_log().is_empty());
    }

    #[test]
    fn unknown_terms_score_nothing() {
        let engine = toy_engine(ScoringModel::TfIdfCosine);
        let hits = engine.search("nonexistent gibberish", 5);
        assert!(hits.is_empty());
    }

    #[test]
    fn fetch_document_roundtrip() {
        let engine = toy_engine(ScoringModel::TfIdfCosine);
        assert_eq!(engine.fetch_document(1), Some("apache web server software"));
        assert_eq!(engine.fetch_document(99), None);
    }
}
