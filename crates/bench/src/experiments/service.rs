//! Experiment `service` (extension beyond the paper): the server-side
//! cost of privacy under the multi-tenant service layer.
//!
//! The seed's `load` experiment prices TopPriv's decoy traffic on a bare
//! engine: υ−1 ghosts per cycle multiply the query volume ~υ× (≈7× at
//! paper defaults with forced υ=8). This experiment reproduces that cost
//! table through `toppriv-service` — many tenants sharing one model and
//! engine behind the cycle scheduler — with the result cache off and on.
//! Because ghost generation is deterministic per query content, tenants
//! protecting overlapping workloads emit identical decoys, and the cache
//! absorbs them before they reach the engine. `engine_evals_r1` and
//! `hit_rate_r1` are measured on the FIRST drain of the merged queue —
//! the genuine cross-tenant dedup effect — while `hit_rate_steady` and
//! the throughput columns cover the replayed rounds (repeat traffic, a
//! near-perfect-cache upper bound by construction).

use crate::context::ExperimentContext;
use crate::obsbench;
use crate::table::{f3, ResultTable};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use toppriv_service::{CycleScheduler, PlannedQuery, SessionManager};
use tsearch_text::TermId;

/// Scheduler worker threads (matches the `load` experiment's pool).
pub const WORKERS: usize = 4;
/// Results per query.
pub const TOP_K: usize = 10;
/// Tenants sharing the service.
pub const SESSIONS: usize = 8;
/// Minimum submissions per measurement (replayed in rounds).
pub const MIN_SUBMISSIONS: usize = 2000;

/// Unprotected baseline: raw queries on a bare worker pool (the same
/// measurement as the `load` experiment's υ=1 row).
fn replay_unprotected(ctx: &ExperimentContext, queries: &[Vec<TermId>], rounds: usize) -> f64 {
    let total = queries.len() * rounds;
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..WORKERS {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let hits = ctx.engine.search_tokens(&queries[i % queries.len()], TOP_K);
                std::hint::black_box(hits);
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

struct ServiceRun {
    mean_upsilon: f64,
    submissions: usize,
    /// Engine evaluations during the FIRST drain of the queue — the
    /// genuine cross-tenant dedup effect, uncontaminated by replay.
    engine_evals_r1: u64,
    /// Cache hit rate of the first drain only.
    hit_rate_r1: f64,
    /// Cache hit rate over every drained round (steady-state repeat
    /// traffic; approaches 1 as `rounds` grows, by construction).
    hit_rate_steady: f64,
    secs: f64,
    user_queries: usize,
    /// Machine-readable stage breakdown of this run (BENCH trail).
    bench: toppriv_obs::BenchSnapshot,
}

/// Protected run through the service: `SESSIONS` tenants plan paced
/// cycles over the shared workload; the merged queue is drained `rounds`
/// times on the scheduler's worker pool.
fn run_service(ctx: &ExperimentContext, cached: bool, rounds: usize) -> ServiceRun {
    let mut manager = SessionManager::new(ctx.engine.clone(), ctx.default_model().clone());
    if cached {
        manager = manager.with_cache(8192);
    }
    let manager = Arc::new(manager);
    let queries = ctx.sweep_queries();
    for s in 0..SESSIONS {
        manager
            .open_session(&format!("tenant-{s}"))
            .expect("fresh id");
    }
    // Plan every tenant's cycles once (formulation cost is client-side
    // and already measured by fig2/fig3; here we price the server side).
    let mut plans: Vec<Vec<PlannedQuery>> = Vec::new();
    let mut user_queries = 0usize;
    for (s, id) in manager.session_ids().iter().enumerate() {
        for q in 0..queries.len() {
            // Overlapping but rotated workloads across tenants.
            let query = &queries[(s + q) % queries.len()];
            user_queries += 1;
            plans.push(manager.plan_cycle(id, &query.tokens, TOP_K).expect("open"));
        }
    }
    let queue = CycleScheduler::merge(plans);
    let submissions_per_round = queue.len();
    let scheduler = CycleScheduler::for_manager(&manager, WORKERS);
    ctx.engine.clear_query_log();
    obsbench::reset_engine_stages();
    let t0 = Instant::now();
    let mut round1: Option<toppriv_service::GlobalMetrics> = None;
    for _ in 0..rounds {
        let outcomes = scheduler.drain(queue.clone());
        std::hint::black_box(outcomes);
        if round1.is_none() {
            round1 = Some(manager.metrics_registry().snapshot());
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let round1 = round1.expect("at least one round");
    let snapshot = manager.metrics();
    let bench = obsbench::service_bench_snapshot(
        "service",
        manager.metrics_registry().registry(),
        (submissions_per_round * rounds) as f64 / secs.max(1e-9),
        format!(
            "{SESSIONS} tenants, {WORKERS} workers, cache {}, {rounds} round(s)",
            if cached { "on" } else { "off" }
        ),
    );
    ctx.engine.clear_query_log();
    ServiceRun {
        mean_upsilon: submissions_per_round as f64 / user_queries as f64,
        submissions: submissions_per_round * rounds,
        engine_evals_r1: round1.cache_misses,
        hit_rate_r1: round1.cache_hit_rate,
        hit_rate_steady: snapshot.global.cache_hit_rate,
        secs,
        user_queries: user_queries * rounds,
        bench,
    }
}

/// Runs the service load experiment on the default model.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let mut table = ResultTable::new(
        "ext5_service_load",
        "Server-side cost of privacy through toppriv-service: 8 tenants \
         sharing one model/engine behind the cycle scheduler, result cache \
         off vs on (4 workers, top-10 retrieval)",
        vec![
            "mode".into(),
            "upsilon_mean".into(),
            "submissions".into(),
            "engine_evals_r1".into(),
            "user_qps".into(),
            "server_qps".into(),
            "slowdown_vs_unprotected".into(),
            "hit_rate_r1".into(),
            "hit_rate_steady".into(),
        ],
    );

    // Unprotected baseline at the same user-query volume.
    let raw: Vec<Vec<TermId>> = ctx
        .sweep_queries()
        .iter()
        .map(|q| q.tokens.clone())
        .collect();
    let base_stream: Vec<Vec<TermId>> = (0..SESSIONS)
        .flat_map(|s| raw.iter().cycle().skip(s).take(raw.len()).cloned())
        .collect();
    let base_rounds = MIN_SUBMISSIONS.div_ceil(base_stream.len().max(1));
    replay_unprotected(ctx, &base_stream, 1); // warm-up
    let base_secs = replay_unprotected(ctx, &base_stream, base_rounds);
    let base_user = base_stream.len() * base_rounds;
    let base_user_qps = base_user as f64 / base_secs.max(1e-9);
    table.push_row(vec![
        "unprotected".into(),
        f3(1.0),
        base_user.to_string(),
        base_user.to_string(),
        f3(base_user_qps),
        f3(base_user_qps),
        f3(1.0),
        f3(0.0),
        f3(0.0),
    ]);

    for cached in [false, true] {
        // Probe one round to size the replay count.
        let probe = run_service(ctx, cached, 1);
        let rounds = MIN_SUBMISSIONS.div_ceil((probe.submissions).max(1)).max(1);
        let run = run_service(ctx, cached, rounds);
        let user_qps = run.user_queries as f64 / run.secs.max(1e-9);
        if cached {
            // The bench trail records the full-featured configuration.
            obsbench::emit_bench(&run.bench);
        }
        table.push_row(vec![
            if cached { "service+cache" } else { "service" }.into(),
            f3(run.mean_upsilon),
            run.submissions.to_string(),
            run.engine_evals_r1.to_string(),
            f3(user_qps),
            f3(run.submissions as f64 / run.secs.max(1e-9)),
            f3(base_user_qps / user_qps.max(1e-9)),
            f3(run.hit_rate_r1),
            f3(run.hit_rate_steady),
        ]);
    }
    vec![table]
}
