//! Ablation studies called out in DESIGN.md:
//!
//! - `abl1`: the Step 3(c) effectiveness check — what happens if every
//!   candidate ghost is kept regardless of whether it lowers exposure.
//! - `abl2`: semantic coherence — TopPriv's topic-coherent ghosts versus
//!   TrackMeNot-style random ghosts, measuring both the exposure they
//!   achieve and how easily a coherence attack singles out the genuine
//!   query.
//! - `abl3`: ghost term selection — the paper's `Pr(w|tm)`-biased
//!   sampling versus the specificity-matched extension, measuring the
//!   privacy achieved, the server cost (postings touched per ghost
//!   term), and the residual classifier tell.

use super::SweepCell;
use crate::context::ExperimentContext;
use crate::table::{f3, pct, ResultTable};
use toppriv_adversary::{CoherenceAttack, NaiveBayes};
use toppriv_baselines::{TrackMeNot, TrackMeNotConfig};
use toppriv_core::{
    semantic_coherence, BeliefEngine, GhostConfig, GhostGenerator, PrivacyMetrics,
    PrivacyRequirement, TermSelection,
};

/// Runs all three ablations on the default model.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    vec![
        effectiveness_check_ablation(ctx),
        coherence_ablation(ctx),
        term_selection_ablation(ctx),
    ]
}

/// `abl3`: Biased (paper) vs SpecificityMatched ghost terms.
fn term_selection_ablation(ctx: &ExperimentContext) -> ResultTable {
    let model = ctx.default_model();
    let requirement = PrivacyRequirement::paper_default();
    let queries = ctx.sweep_queries();
    // The supervised adversary of experiment `classifier`.
    let labeled: Vec<(&[u32], usize)> = ctx
        .corpus
        .docs
        .iter()
        .map(|d| {
            let label = d
                .mixture
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weight"))
                .map(|&(t, _)| t)
                .expect("non-empty mixture");
            (d.tokens.as_slice(), label)
        })
        .collect();
    let nb = NaiveBayes::train(
        &labeled,
        ctx.corpus.num_topics(),
        ctx.corpus.vocab.len(),
        1.0,
    );

    let mut table = ResultTable::new(
        "abl3_term_selection",
        "Ghost term selection: paper's Pr(w|tm) bias vs specificity \
         matching (default model, eps=(5%,1%))",
        vec![
            "selection".into(),
            "exposure_pct".into(),
            "satisfied".into(),
            "cycle_len".into(),
            "ghost_postings_per_term".into(),
            "genuine_postings_per_term".into(),
            "nb_genuine_ident".into(),
            "nb_chance".into(),
        ],
    );
    for (name, selection) in [
        ("biased_paper", TermSelection::Biased),
        ("specificity_matched", TermSelection::SpecificityMatched),
    ] {
        let generator = GhostGenerator::new(
            BeliefEngine::new(model.clone()),
            requirement,
            GhostConfig {
                term_selection: selection,
                ..GhostConfig::default()
            },
        );
        let mut exposure = 0.0;
        let mut scored = 0usize;
        let mut satisfied = 0usize;
        let mut cycle_len = 0usize;
        let mut ghost_postings = 0u64;
        let mut ghost_terms = 0u64;
        let mut genuine_postings = 0u64;
        let mut genuine_terms = 0u64;
        let mut nb_hits = 0usize;
        let mut nb_chance = 0.0f64;
        let mut contested = 0usize;
        for q in queries {
            let r = generator.generate(&q.tokens);
            cycle_len += r.cycle_len();
            if !r.intention.is_empty() {
                exposure += r.metrics.exposure;
                scored += 1;
                if r.satisfied {
                    satisfied += 1;
                }
            }
            for &w in &q.tokens {
                genuine_postings += ctx.engine.index().doc_freq(w) as u64;
                genuine_terms += 1;
            }
            for (i, cq) in r.cycle.iter().enumerate() {
                if i != r.genuine_index {
                    for &w in &cq.tokens {
                        ghost_postings += ctx.engine.index().doc_freq(w) as u64;
                        ghost_terms += 1;
                    }
                }
            }
            if r.cycle_len() > 1 {
                contested += 1;
                nb_chance += 1.0 / r.cycle_len() as f64;
                let best = r
                    .cycle
                    .iter()
                    .enumerate()
                    .map(|(i, cq)| (i, nb.classify(&cq.tokens).1))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                    .map(|(i, _)| i)
                    .expect("non-empty cycle");
                if best == r.genuine_index {
                    nb_hits += 1;
                }
            }
        }
        table.push_row(vec![
            name.into(),
            pct(exposure / scored.max(1) as f64),
            f3(satisfied as f64 / scored.max(1) as f64),
            f3(cycle_len as f64 / queries.len().max(1) as f64),
            f3(ghost_postings as f64 / ghost_terms.max(1) as f64),
            f3(genuine_postings as f64 / genuine_terms.max(1) as f64),
            f3(nb_hits as f64 / contested.max(1) as f64),
            f3(nb_chance / contested.max(1) as f64),
        ]);
    }
    table
}

/// `abl1`: with vs without the Step 3(c) effectiveness check, at the
/// paper-default and a tighter ε2 (where rejections actually occur).
fn effectiveness_check_ablation(ctx: &ExperimentContext) -> ResultTable {
    let model = ctx.default_model();
    let queries = ctx.sweep_queries();

    let run = |eps2: f64, with_check: bool| -> (SweepCell, f64) {
        let requirement = PrivacyRequirement::new(0.05, eps2).expect("valid");
        let mut generator = GhostGenerator::new(
            BeliefEngine::new(model.clone()),
            requirement,
            GhostConfig::default(),
        );
        if !with_check {
            generator = generator.without_effectiveness_check();
        }
        let mut rejected = 0usize;
        let metrics: Vec<(PrivacyMetrics, bool)> = queries
            .iter()
            .map(|q| {
                let r = generator.generate(&q.tokens);
                rejected += r.ineffective_topics.len();
                (r.metrics, r.satisfied)
            })
            .collect();
        (
            SweepCell::aggregate(&metrics),
            rejected as f64 / queries.len().max(1) as f64,
        )
    };

    let mut table = ResultTable::new(
        "abl1_effectiveness_check",
        "Step 3(c) ablation on the default model (eps1=5%)",
        vec![
            "variant".into(),
            "eps2_pct".into(),
            "exposure_pct".into(),
            "mask_pct".into(),
            "cycle_len".into(),
            "rejected_ghosts".into(),
            "gen_secs".into(),
            "satisfied".into(),
        ],
    );
    for eps2 in [0.01, 0.005] {
        for with_check in [true, false] {
            let (cell, rejected) = run(eps2, with_check);
            table.push_row(vec![
                if with_check {
                    "with_check"
                } else {
                    "without_check"
                }
                .into(),
                pct(eps2),
                pct(cell.exposure),
                pct(cell.mask),
                f3(cell.cycle_len),
                f3(rejected),
                format!("{:.4}", cell.gen_secs),
                f3(cell.satisfied),
            ]);
        }
    }
    table
}

/// `abl2`: TopPriv coherent ghosts vs TrackMeNot random ghosts.
fn coherence_ablation(ctx: &ExperimentContext) -> ResultTable {
    let model = ctx.default_model();
    let requirement = PrivacyRequirement::paper_default();
    let queries = ctx.sweep_queries();
    let belief = BeliefEngine::new(model.clone());
    let generator = GhostGenerator::new(
        BeliefEngine::new(model.clone()),
        requirement,
        GhostConfig::default(),
    );
    let attack = CoherenceAttack::new(model.clone());

    // TopPriv arm.
    let mut tp_exposure = 0.0;
    let mut tp_ghost_coherence = 0.0;
    let mut tp_ghost_count = 0usize;
    let mut tp_attack_hits = 0usize;
    let mut tp_cycles = 0usize;
    let mut mean_cycle_len = 0.0;
    let mut scored = 0usize;
    for q in queries {
        let result = generator.generate(&q.tokens);
        mean_cycle_len += result.cycle_len() as f64;
        if !result.intention.is_empty() {
            tp_exposure += result.metrics.exposure;
            scored += 1;
        }
        for cq in &result.cycle {
            if !cq.is_genuine {
                tp_ghost_coherence += semantic_coherence(model, &cq.tokens);
                tp_ghost_count += 1;
            }
        }
        if result.cycle_len() > 1 {
            tp_cycles += 1;
            if attack.guess_genuine(&result.cycle_tokens()) == result.genuine_index {
                tp_attack_hits += 1;
            }
        }
    }
    mean_cycle_len /= queries.len().max(1) as f64;

    // TrackMeNot arm, matched in ghost count to TopPriv's mean cycle.
    let num_ghosts = (mean_cycle_len.round() as usize).saturating_sub(1).max(1);
    let tmn = TrackMeNot::new(
        ctx.corpus.vocab.len(),
        TrackMeNotConfig {
            num_ghosts,
            ..TrackMeNotConfig::default()
        },
    );
    let mut tmn_exposure = 0.0;
    let mut tmn_scored = 0usize;
    let mut tmn_ghost_coherence = 0.0;
    let mut tmn_ghost_count = 0usize;
    let mut tmn_attack_hits = 0usize;
    let mut tmn_cycles = 0usize;
    for q in queries {
        let (cycle, genuine_index) = tmn.cycle(&q.tokens);
        let refs: Vec<&[u32]> = cycle.iter().map(|c| c.as_slice()).collect();
        let posteriors: Vec<Vec<f64>> = refs.iter().map(|r| belief.posterior(r)).collect();
        let boosts = belief.cycle_boost(&posteriors);
        let solo = belief.boost(&q.tokens);
        let intention = requirement.user_intention(&solo);
        if !intention.is_empty() {
            tmn_exposure += toppriv_core::exposure(&boosts, &intention);
            tmn_scored += 1;
        }
        for (i, g) in cycle.iter().enumerate() {
            if i != genuine_index {
                tmn_ghost_coherence += semantic_coherence(model, g);
                tmn_ghost_count += 1;
            }
        }
        tmn_cycles += 1;
        if attack.guess_genuine(&refs) == genuine_index {
            tmn_attack_hits += 1;
        }
    }

    let mut table = ResultTable::new(
        "abl2_coherence",
        "Coherent (TopPriv) vs random (TrackMeNot) ghosts on the default model",
        vec![
            "scheme".into(),
            "exposure_pct".into(),
            "ghost_coherence".into(),
            "coherence_attack_acc".into(),
            "chance_acc".into(),
        ],
    );
    table.push_row(vec![
        "TopPriv".into(),
        pct(tp_exposure / scored.max(1) as f64),
        format!("{:.6}", tp_ghost_coherence / tp_ghost_count.max(1) as f64),
        f3(tp_attack_hits as f64 / tp_cycles.max(1) as f64),
        f3(1.0 / mean_cycle_len.max(1.0)),
    ]);
    table.push_row(vec![
        "TrackMeNot".into(),
        pct(tmn_exposure / tmn_scored.max(1) as f64),
        format!("{:.6}", tmn_ghost_coherence / tmn_ghost_count.max(1) as f64),
        f3(tmn_attack_hits as f64 / tmn_cycles.max(1) as f64),
        f3(1.0 / (num_ghosts + 1) as f64),
    ]);
    table
}
