//! Named metrics with label support.
//!
//! A [`MetricsRegistry`] hands out cheap clonable handles ([`Counter`],
//! [`Gauge`], [`Histogram`][crate::Histogram] via [`HistogramHandle`])
//! keyed by name + sorted label set. Handles are `Arc`s over atomics, so
//! the hot path (increment, record) never takes the registry lock — the
//! `RwLock` guards only handle creation and snapshotting.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::recover_write;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One `key="value"` metric label (a named struct rather than a tuple so
/// the vendored serde derive can serialize it).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Label {
    /// Label key, e.g. `shard`.
    pub key: String,
    /// Label value, e.g. `3`.
    pub value: String,
}

impl Label {
    /// Builds a label.
    pub fn new(key: impl Into<String>, value: impl Into<String>) -> Self {
        Label {
            key: key.into(),
            value: value.into(),
        }
    }
}

/// Internal registry key: metric name plus its sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<Label>,
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<Label> {
    let mut out: Vec<Label> = labels.iter().map(|(k, v)| Label::new(*k, *v)).collect();
    out.sort();
    out
}

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic.
///
/// ```
/// let reg = toppriv_obs::MetricsRegistry::new();
/// let c = reg.counter("requests_total", &[("shard", "0")]);
/// c.inc();
/// c.add(2);
/// assert_eq!(c.get(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter detached from any registry (handy for tests).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down. Cloning shares the
/// underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge detached from any registry (handy for tests).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Sets the value to `max(current, v)` — a high-water mark.
    pub fn fetch_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }
}

/// A shared handle to a registry histogram.
pub type HistogramHandle = Arc<Histogram>;

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

/// The value part of a metric snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// A point-in-time reading of one named metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted label set.
    pub labels: Vec<Label>,
    /// The reading.
    pub value: MetricValue,
}

/// A registry of named counters, gauges, and histograms.
///
/// Handles are created (or fetched) by name + label set; asking twice
/// for the same key returns handles over the same storage. Requesting an
/// existing name with a *different* metric type returns a fresh detached
/// handle rather than panicking (the registry keeps the original).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<MetricKey, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let key = MetricKey {
            name: name.to_string(),
            labels: sorted_labels(labels),
        };
        let mut map = recover_write(&self.metrics);
        map.entry(key).or_insert_with(make).clone()
    }

    /// Gets or creates the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            _ => Counter::new(),
        }
    }

    /// Gets or creates the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            _ => Gauge::new(),
        }
    }

    /// Gets or creates the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        match self.get_or_insert(name, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Snapshots every metric, sorted by name then labels.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let map = crate::recover_read(&self.metrics);
        map.iter()
            .map(|(key, metric)| MetricSnapshot {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Merges every histogram registered under `name` (across all label
    /// sets) into one, or `None` if the name has no histograms.
    pub fn merged_histogram(&self, name: &str) -> Option<Histogram> {
        let map = crate::recover_read(&self.metrics);
        let mut merged: Option<Histogram> = None;
        for (key, metric) in map.iter() {
            if key.name != name {
                continue;
            }
            if let Metric::Histogram(h) = metric {
                let m = merged.get_or_insert_with(Histogram::new);
                m.merge(h);
            }
        }
        merged
    }

    /// Sums every counter registered under `name` across label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        let map = crate::recover_read(&self.metrics);
        map.iter()
            .filter(|(key, _)| key.name == name)
            .map(|(_, metric)| match metric {
                Metric::Counter(c) => c.get(),
                _ => 0,
            })
            .sum()
    }

    /// Per-label-set counter readings for `name`, in label order.
    pub fn counter_values(&self, name: &str) -> Vec<(Vec<Label>, u64)> {
        let map = crate::recover_read(&self.metrics);
        map.iter()
            .filter(|(key, _)| key.name == name)
            .filter_map(|(key, metric)| match metric {
                Metric::Counter(c) => Some((key.labels.clone(), c.get())),
                _ => None,
            })
            .collect()
    }

    /// Zeroes every metric in place. Existing handles stay valid and
    /// keep pointing at the (now zeroed) storage.
    pub fn reset(&self) {
        let map = crate::recover_read(&self.metrics);
        for metric in map.values() {
            match metric {
                Metric::Counter(c) => {
                    c.0.store(0, Ordering::Relaxed);
                }
                Metric::Gauge(g) => g.set(0),
                Metric::Histogram(h) => h.clear(),
            }
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        crate::recover_read(&self.metrics).len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_storage() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", &[("shard", "0")]);
        let b = reg.counter("x_total", &[("shard", "0")]);
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.counter_total("x_total"), 5);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("y_total", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("y_total", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn merged_histogram_spans_label_sets() {
        let reg = MetricsRegistry::new();
        reg.histogram("lat_us", &[("shard", "0")]).record(10);
        reg.histogram("lat_us", &[("shard", "1")]).record(20);
        let merged = reg.merged_histogram("lat_us").unwrap();
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.min(), 10);
        assert_eq!(merged.max(), 20);
        assert!(reg.merged_histogram("missing").is_none());
    }

    #[test]
    fn reset_keeps_handles_valid() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("z_total", &[]);
        let h = reg.histogram("z_us", &[]);
        c.add(7);
        h.record(7);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(reg.counter_total("z_total"), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.gauge("b_gauge", &[]).set(-3);
        reg.counter("a_total", &[("shard", "1")]).add(2);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "a_total");
        assert_eq!(snap[0].value, MetricValue::Counter(2));
        assert_eq!(snap[1].value, MetricValue::Gauge(-3));
        let json = serde_json::to_string(&snap[0]).unwrap();
        let back: MetricSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap[0]);
    }

    #[test]
    fn type_mismatch_degrades_instead_of_panicking() {
        let reg = MetricsRegistry::new();
        reg.counter("mixed", &[]).add(3);
        let g = reg.gauge("mixed", &[]);
        g.set(9); // detached handle; original counter untouched
        assert_eq!(reg.counter_total("mixed"), 3);
    }
}
