//! Property tests for the index codec: any corpus round-trips to an
//! index answering every query identically, and truncated blobs are
//! always rejected.

use proptest::prelude::*;
use tsearch_index::{decode_index, encode_index, InvertedIndex};

/// Strategy: a small corpus of token documents over a bounded vocab.
fn corpus_strategy() -> impl Strategy<Value = (Vec<Vec<u32>>, usize)> {
    (1usize..40).prop_flat_map(|vocab_size| {
        (
            proptest::collection::vec(
                proptest::collection::vec(0u32..vocab_size as u32, 0..30),
                0..20,
            ),
            Just(vocab_size),
        )
    })
}

proptest! {
    #[test]
    fn roundtrip_preserves_postings((docs, vocab_size) in corpus_strategy()) {
        let refs: Vec<&[u32]> = docs.iter().map(|d| d.as_slice()).collect();
        let index = InvertedIndex::build(&refs, vocab_size);
        let back = decode_index(&encode_index(&index)).expect("fresh blob decodes");
        prop_assert_eq!(back.num_docs(), index.num_docs());
        prop_assert_eq!(back.num_terms(), index.num_terms());
        prop_assert_eq!(back.total_tokens(), index.total_tokens());
        for t in 0..vocab_size as u32 {
            prop_assert_eq!(back.postings_vec(t), index.postings_vec(t));
            prop_assert_eq!(back.max_tf(t), index.max_tf(t));
        }
        for d in 0..index.num_docs() as u32 {
            prop_assert_eq!(back.doc_len(d), index.doc_len(d));
        }
    }

    #[test]
    fn truncation_always_rejected(
        (docs, vocab_size) in corpus_strategy(),
        cut in 1usize..64,
    ) {
        let refs: Vec<&[u32]> = docs.iter().map(|d| d.as_slice()).collect();
        let index = InvertedIndex::build(&refs, vocab_size);
        let blob = encode_index(&index);
        let cut = cut.min(blob.len());
        prop_assert!(decode_index(&blob[..blob.len() - cut]).is_err());
    }
}
