//! The shared experiment context: corpus, workload, engine, and the bank
//! of trained LDA models (disk-cached so repeated harness runs are fast).

use crate::scale::Scale;
use std::path::Path;
use std::sync::Arc;
use tsearch_corpus::{generate_workload, BenchmarkQuery, SyntheticCorpus};
use tsearch_lda::{LdaConfig, LdaModel, LdaTrainer};
use tsearch_search::{ScoringModel, SearchEngine};
use tsearch_store::{kind, ArtifactStore};
use tsearch_text::Analyzer;

/// Everything the experiments share.
pub struct ExperimentContext {
    /// The scale preset used.
    pub scale: Scale,
    /// The synthetic corpus (WSJ substitute).
    pub corpus: SyntheticCorpus,
    /// The benchmark workload (TREC substitute).
    pub queries: Vec<BenchmarkQuery>,
    /// The unmodified enterprise search engine, shared with the service
    /// layer and the worker pools of the load experiments.
    pub engine: Arc<SearchEngine>,
    /// Trained LDA models, ascending by K, each behind an [`Arc`] so
    /// belief engines and service sessions can share them without copies.
    pub models: Vec<(usize, Arc<LdaModel>)>,
}

impl ExperimentContext {
    /// Builds the context, training (or cache-loading) all LDA models.
    /// Training runs in parallel across topic counts.
    pub fn build(scale: Scale, cache_dir: Option<&Path>) -> Self {
        let corpus = SyntheticCorpus::generate(scale.corpus.clone());
        let queries = generate_workload(&corpus, &scale.workload);
        let docs = corpus.token_docs();
        let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
        let engine = Arc::new(SearchEngine::build(
            &docs,
            &texts,
            Analyzer::new(),
            corpus.vocab.clone(),
            ScoringModel::TfIdfCosine,
        ));
        let models = train_models(&docs, corpus.vocab.len(), &scale, cache_dir);
        ExperimentContext {
            scale,
            corpus,
            queries,
            engine,
            models,
        }
    }

    /// Fetches the model with the given K.
    pub fn model(&self, k: usize) -> &Arc<LdaModel> {
        &self
            .models
            .iter()
            .find(|(mk, _)| *mk == k)
            .unwrap_or_else(|| panic!("no model with K={k}"))
            .1
    }

    /// The default ("LDA200"-equivalent) model.
    pub fn default_model(&self) -> &Arc<LdaModel> {
        self.model(self.scale.default_k)
    }

    /// The queries used for sweep points (first `queries_per_setting`).
    pub fn sweep_queries(&self) -> &[BenchmarkQuery] {
        &self.queries[..self.scale.queries_per_setting.min(self.queries.len())]
    }
}

/// Trains (or cache-loads) one LDA model per topic count. Training runs
/// in parallel; the checksummed artifact cache is read before and written
/// after from the single calling thread (the [`tsearch_store`] manifest
/// has one writer at a time).
pub fn train_models(
    docs: &[&[u32]],
    vocab_size: usize,
    scale: &Scale,
    cache_dir: Option<&Path>,
) -> Vec<(usize, Arc<LdaModel>)> {
    let mut store = cache_dir.and_then(|dir| match ArtifactStore::open(dir) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("[context] model cache unavailable ({e}); training fresh");
            None
        }
    });
    // Phase 1: serve cache hits. A corrupt or mismatched artifact is
    // treated as a miss — the checksum guarantees we never train against
    // a torn model file.
    let mut out: Vec<(usize, Arc<LdaModel>)> = Vec::new();
    let mut missing: Vec<usize> = Vec::new();
    for &k in &scale.topic_counts {
        let hit = store.as_ref().and_then(|s| {
            let bytes = s.get(&cache_name(scale, k), kind::LDA_MODEL).ok()?;
            let model = tsearch_lda::decode(&bytes).ok()?;
            (model.num_topics() == k && model.vocab_size() == vocab_size).then(|| Arc::new(model))
        });
        match hit {
            Some(model) => out.push((k, model)),
            None => missing.push(k),
        }
    }
    // Phase 2: train the misses in parallel.
    let trained: Vec<(usize, Arc<LdaModel>)> = std::thread::scope(|s| {
        let handles: Vec<_> = missing
            .iter()
            .map(|&k| s.spawn(move || (k, Arc::new(train_one(docs, vocab_size, scale, k)))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trainer panicked"))
            .collect()
    });
    // Phase 3: persist the fresh models.
    if let Some(store) = store.as_mut() {
        for (k, model) in &trained {
            let bytes = tsearch_lda::encode(model);
            if let Err(e) = store.put(&cache_name(scale, *k), kind::LDA_MODEL, &bytes) {
                eprintln!("[context] failed to cache model K={k}: {e}");
            }
        }
    }
    out.extend(trained);
    out.sort_by_key(|&(k, _)| k);
    out
}

/// Trains a single model (no cache involvement).
pub fn train_one(docs: &[&[u32]], vocab_size: usize, scale: &Scale, k: usize) -> LdaModel {
    LdaTrainer::train(
        docs,
        vocab_size,
        LdaConfig {
            iterations: scale.lda_iterations,
            ..LdaConfig::with_topics(k)
        },
    )
}

/// Cache artifact name for one model: every parameter that changes the
/// trained matrix is part of the name.
fn cache_name(scale: &Scale, k: usize) -> String {
    format!(
        "lda_{}_k{}_it{}_seed{}_d{}",
        scale.name, k, scale.lda_iterations, scale.corpus.seed, scale.corpus.num_docs
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_builds() {
        let ctx = ExperimentContext::build(Scale::quick(), None);
        assert_eq!(ctx.models.len(), 3);
        assert_eq!(ctx.default_model().num_topics(), 20);
        assert_eq!(ctx.queries.len(), 24);
        assert_eq!(ctx.sweep_queries().len(), 10);
        assert!(ctx.engine.index().num_docs() == ctx.corpus.num_docs());
        for (k, model) in &ctx.models {
            assert_eq!(model.num_topics(), *k);
            model.validate().unwrap();
        }
    }

    #[test]
    fn cache_roundtrip() {
        let dir = std::env::temp_dir().join("toppriv-ctx-cache-test");
        std::fs::remove_dir_all(&dir).ok();
        let mut scale = Scale::quick();
        scale.topic_counts = vec![10];
        scale.default_k = 10;
        let corpus = SyntheticCorpus::generate(scale.corpus.clone());
        let docs = corpus.token_docs();
        let m1 = &train_models(&docs, corpus.vocab.len(), &scale, Some(&dir))[0].1;
        // Second call must hit the cache and return identical phi.
        let m2 = &train_models(&docs, corpus.vocab.len(), &scale, Some(&dir))[0].1;
        for w in 0..corpus.vocab.len() as u32 {
            for t in 0..10 {
                assert!((m1.phi(t, w) - m2.phi(t, w)).abs() < 1e-6);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_survives_corruption() {
        // A flipped byte in a cached model must lead to a retrain, never
        // to silently loading garbage probabilities.
        let dir = std::env::temp_dir().join("toppriv-ctx-corrupt-test");
        std::fs::remove_dir_all(&dir).ok();
        let mut scale = Scale::quick();
        scale.topic_counts = vec![10];
        scale.default_k = 10;
        let corpus = SyntheticCorpus::generate(scale.corpus.clone());
        let docs = corpus.token_docs();
        let m1 = train_models(&docs, corpus.vocab.len(), &scale, Some(&dir));
        // Corrupt every artifact file on disk.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().and_then(|e| e.to_str()) == Some("tps") {
                let mut bytes = std::fs::read(&path).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xFF;
                std::fs::write(&path, &bytes).unwrap();
            }
        }
        let m2 = train_models(&docs, corpus.vocab.len(), &scale, Some(&dir));
        // Deterministic trainer: the retrained model equals the original.
        for t in 0..10 {
            assert!((m1[0].1.phi(t, 0) - m2[0].1.phi(t, 0)).abs() < 1e-6);
        }
        m2[0].1.validate().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
