//! Microbenchmarks of the postings codec — the substrate whose encoded
//! sizes feed the Figure 6 space accounting.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tsearch_index::{Posting, PostingsList};

fn make_postings(n: usize, gap: u32) -> Vec<Posting> {
    (0..n as u32)
        .map(|i| Posting {
            doc_id: i * (gap + 1),
            tf: (i % 7) + 1,
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("postings_encode");
    for &n in &[1_000usize, 10_000, 100_000] {
        let postings = make_postings(n, 3);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &postings, |b, p| {
            b.iter(|| PostingsList::from_postings(black_box(p)))
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("postings_decode");
    for &n in &[1_000usize, 10_000, 100_000] {
        let list = PostingsList::from_postings(&make_postings(n, 3));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &list, |b, l| {
            b.iter(|| {
                let mut acc = 0u64;
                for p in l.iter() {
                    acc += p.doc_id as u64 + p.tf as u64;
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
