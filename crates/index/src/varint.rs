//! LEB128-style variable-length integer coding for postings compression.

use bytes::{Buf, BufMut};

/// Encodes `value` as a varint into `out`.
pub fn encode_u32<B: BufMut>(out: &mut B, mut value: u32) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

/// Encodes a u64 varint into `out`.
pub fn encode_u64<B: BufMut>(out: &mut B, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

/// Decodes a u32 varint from `buf`. Returns `None` on truncation or
/// overflow.
pub fn decode_u32<B: Buf>(buf: &mut B) -> Option<u32> {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return None;
        }
        let byte = buf.get_u8();
        let payload = (byte & 0x7F) as u32;
        if shift >= 32 || (shift == 28 && payload > 0x0F) {
            return None; // overflow
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

/// Decodes a u64 varint from `buf`.
pub fn decode_u64<B: Buf>(buf: &mut B) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return None;
        }
        let byte = buf.get_u8();
        let payload = (byte & 0x7F) as u64;
        if shift >= 64 || (shift == 63 && payload > 1) {
            return None;
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

/// Number of bytes `value` occupies as a varint.
pub fn encoded_len_u32(value: u32) -> usize {
    match value {
        0..=0x7F => 1,
        0x80..=0x3FFF => 2,
        0x4000..=0x1F_FFFF => 3,
        0x20_0000..=0xFFF_FFFF => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip32(v: u32) -> u32 {
        let mut buf = Vec::new();
        encode_u32(&mut buf, v);
        assert_eq!(buf.len(), encoded_len_u32(v));
        let mut slice = buf.as_slice();
        decode_u32(&mut slice).expect("decodes")
    }

    #[test]
    fn u32_roundtrip_boundaries() {
        for v in [
            0u32,
            1,
            127,
            128,
            16_383,
            16_384,
            2_097_151,
            2_097_152,
            268_435_455,
            268_435_456,
            u32::MAX,
        ] {
            assert_eq!(roundtrip32(v), v);
        }
    }

    #[test]
    fn u64_roundtrip_boundaries() {
        for v in [0u64, 127, 128, 1 << 20, 1 << 40, u64::MAX] {
            let mut buf = Vec::new();
            encode_u64(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(decode_u64(&mut slice), Some(v));
        }
    }

    #[test]
    fn truncated_input_fails() {
        let mut buf = Vec::new();
        encode_u32(&mut buf, 1_000_000);
        let mut slice = &buf[..buf.len() - 1];
        assert_eq!(decode_u32(&mut slice), None);
        let mut empty: &[u8] = &[];
        assert_eq!(decode_u32(&mut empty), None);
    }

    #[test]
    fn overlong_input_fails() {
        // Six continuation bytes cannot be a valid u32.
        let bytes = [0xFFu8, 0xFF, 0xFF, 0xFF, 0xFF, 0x01];
        let mut slice = bytes.as_slice();
        assert_eq!(decode_u32(&mut slice), None);
    }

    #[test]
    fn sequences_decode_in_order() {
        let mut buf = Vec::new();
        for v in 0..1000u32 {
            encode_u32(&mut buf, v * 7);
        }
        let mut slice = buf.as_slice();
        for v in 0..1000u32 {
            assert_eq!(decode_u32(&mut slice), Some(v * 7));
        }
        assert!(!slice.has_remaining());
    }
}
