//! Offline stand-in for `serde`.
//!
//! The real serde is a zero-copy visitor framework; this stand-in is a
//! much simpler tree model: [`Serialize`] renders a type into a [`Value`]
//! tree and [`Deserialize`] reads one back. `serde_json` (the sibling
//! stand-in) prints and parses that tree as JSON. The derive macros in
//! `serde_derive` generate the same externally-tagged representation
//! real serde uses by default (structs → objects, unit variants →
//! strings, data variants → single-key objects), so on-disk artifacts
//! look like ordinary serde JSON.
//!
//! Only the API surface this workspace uses is provided: the two traits,
//! the derives, and impls for the primitive / container types that appear
//! in derived fields.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The serialization tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating point numbers.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders a type into a [`Value`] tree.
pub trait Serialize {
    /// The value tree of `self`.
    fn to_value(&self) -> Value;
}

/// Reads a type back from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `v` into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// What a derived struct does when a field is absent. Errors by
    /// default; `Option<T>` overrides it to `None`, matching serde's
    /// behaviour for optional fields.
    fn from_missing_field(field: &str) -> Result<Self, DeError> {
        Err(DeError(format!("missing field '{field}'")))
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: u64 = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => {
                        return Err(DeError(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) if u <= i64::MAX as u64 => u as i64,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => f as i64,
                    ref other => {
                        return Err(DeError(format!("expected integer, got {other:?}")))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    ref other => Err(DeError(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing_field(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let parsed: Result<Vec<T>, DeError> = items.iter().map(T::from_value).collect();
                parsed.map(|v| v.try_into().expect("length checked"))
            }
            other => Err(DeError(format!(
                "expected {N}-element array, got {other:?}"
            ))),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const N: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Seq(items) if items.len() == N => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError(format!(
                        "expected {N}-tuple array, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Support code referenced by the generated derive impls. Not public API.
#[doc(hidden)]
pub mod __private {
    pub use super::{DeError, Deserialize, Serialize, Value};

    /// Field lookup + decode with `Option`-aware missing handling.
    pub fn read_field<T: Deserialize>(v: &Value, field: &str) -> Result<T, DeError> {
        match v.get(field) {
            Some(fv) => T::from_value(fv).map_err(|e| DeError(format!("field '{field}': {}", e.0))),
            None => T::from_missing_field(field),
        }
    }
}
