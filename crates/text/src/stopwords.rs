//! Stopword handling.
//!
//! The paper removes stopwords ("common words like 'the' and 'a' that are not
//! useful for differentiating between documents") before indexing and topic
//! modeling. We ship the classic SMART-derived English stopword list and allow
//! callers to extend it with corpus-specific entries.

use std::collections::HashSet;

/// Default English stopword list (a compact SMART/Glasgow-style list).
pub const DEFAULT_STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "couldn",
    "did",
    "didn",
    "do",
    "does",
    "doesn",
    "doing",
    "don",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadn",
    "has",
    "hasn",
    "have",
    "haven",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "isn",
    "it",
    "its",
    "itself",
    "let",
    "me",
    "more",
    "most",
    "mustn",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "shan",
    "she",
    "should",
    "shouldn",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "wasn",
    "we",
    "were",
    "weren",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "with",
    "won",
    "would",
    "wouldn",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
    "also",
    "however",
    "thus",
    "hence",
    "therefore",
    "will",
    "shall",
    "may",
    "might",
    "must",
    "one",
    "two",
    "many",
    "much",
    "said",
    "says",
    "say",
    "new",
    "mr",
    "mrs",
    "ms",
];

/// A set of stopwords with O(1) membership tests.
#[derive(Debug, Clone)]
pub struct StopwordList {
    words: HashSet<String>,
}

impl StopwordList {
    /// Builds the default English list.
    pub fn english() -> Self {
        Self {
            words: DEFAULT_STOPWORDS.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Builds an empty list (no stopword filtering).
    pub fn empty() -> Self {
        Self {
            words: HashSet::new(),
        }
    }

    /// Builds a list from arbitrary words (lowercased).
    pub fn from_words<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Self {
            words: words
                .into_iter()
                .map(|w| w.as_ref().to_lowercase())
                .collect(),
        }
    }

    /// Adds a word to the list.
    pub fn insert(&mut self, word: &str) {
        self.words.insert(word.to_lowercase());
    }

    /// Tests whether `word` (assumed lowercase) is a stopword.
    pub fn contains(&self, word: &str) -> bool {
        self.words.contains(word)
    }

    /// Number of stopwords in the list.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

impl Default for StopwordList {
    fn default() -> Self {
        Self::english()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_list_contains_classics() {
        let sw = StopwordList::english();
        for w in ["the", "a", "and", "of", "is"] {
            assert!(sw.contains(w), "{w} should be a stopword");
        }
        assert!(!sw.contains("helicopter"));
    }

    #[test]
    fn empty_list_matches_nothing() {
        let sw = StopwordList::empty();
        assert!(!sw.contains("the"));
        assert!(sw.is_empty());
    }

    #[test]
    fn custom_words_are_lowercased() {
        let mut sw = StopwordList::from_words(["WSJ", "Journal"]);
        assert!(sw.contains("wsj"));
        assert!(sw.contains("journal"));
        assert_eq!(sw.len(), 2);
        sw.insert("Corp");
        assert!(sw.contains("corp"));
    }

    #[test]
    fn default_is_english() {
        assert!(StopwordList::default().contains("the"));
    }
}
