//! Offline stand-in for `proptest`.
//!
//! Real proptest does guided generation plus shrinking; this stand-in
//! keeps the same test-authoring surface (`proptest!`, `Strategy`,
//! `prop_map`, `prop_flat_map`, `prop_oneof!`, `Just`, `any`,
//! `collection::vec`, `prop_assert*`) but implements it as plain
//! deterministic random sampling: each property runs [`CASES`] times with
//! an RNG seeded from the test name. Failures report the failing inputs
//! via the panic message of the underlying assertion (no shrinking).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Cases sampled per property.
pub const CASES: usize = 96;

/// Deterministic per-test RNG.
pub fn test_rng(name: &str) -> StdRng {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    StdRng::seed_from_u64(h.finish() ^ 0x9E37_79B9_7F4A_7C15)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

// Numeric ranges are strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// Tuples of strategies are strategies.
macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// One arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Mix magnitudes; always finite.
        let mantissa: f64 = rng.gen();
        let exp = rng.gen_range(-64i32..64);
        (mantissa - 0.5) * 2.0f64.powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Rng, StdRng, Strategy};
    use std::ops::Range;

    /// `Vec` of `elem` values with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface test files use.

    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy, Union,
    };
}

/// Runs each `#[test]`-annotated property [`CASES`] times with sampled
/// inputs. Parameters are either `pattern in strategy` or `name: Type`
/// (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($params:tt)*) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..$crate::CASES {
                    $crate::proptest!(@bind __rng, ($($params)*), $body);
                }
            }
        )+
    };
    (@bind $rng:ident, (), $body:block) => { $body };
    (@bind $rng:ident, (,), $body:block) => { $body };
    (@bind $rng:ident, ($pat:pat in $strat:expr $(, $($rest:tt)*)?), $body:block) => {{
        let $pat = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng, ($($($rest)*)?), $body)
    }};
    (@bind $rng:ident, ($id:ident : $ty:ty $(, $($rest:tt)*)?), $body:block) => {{
        let $id: $ty = $crate::Strategy::sample(&$crate::any::<$ty>(), &mut $rng);
        $crate::proptest!(@bind $rng, ($($($rest)*)?), $body)
    }};
}

/// Uniform choice among strategy expressions yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { ::std::assert!($($arg)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { ::std::assert_eq!($($arg)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { ::std::assert_ne!($($arg)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_shorthand(x in 1usize..10, seed: u64, f in 0.0f64..1.0) {
            prop_assert!((1..10).contains(&x));
            let _ = seed;
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn collections_and_oneof(
            v in collection::vec(any::<u8>(), 0..16),
            choice in prop_oneof![Just(1u32), Just(2u32), (5u32..8).prop_map(|x| x)],
        ) {
            prop_assert!(v.len() < 16);
            prop_assert!(choice == 1 || choice == 2 || (5..8).contains(&choice));
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..20).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, i) = pair;
            prop_assert!(i < n);
        }
    }
}
