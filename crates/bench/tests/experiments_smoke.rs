//! Smoke test for the whole reproduction harness: every experiment runs
//! at quick scale and produces well-formed tables (non-empty, rectangular,
//! CSV-serializable). Guards the `reproduce` binary's full surface.

use toppriv_bench::experiments;
use toppriv_bench::{ExperimentContext, ResultTable, Scale};

fn check(tables: &[ResultTable], exp: &str) {
    assert!(!tables.is_empty(), "{exp}: no tables");
    for t in tables {
        assert!(!t.header.is_empty(), "{exp}/{}: empty header", t.name);
        assert!(!t.rows.is_empty(), "{exp}/{}: no rows", t.name);
        for (i, row) in t.rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                t.header.len(),
                "{exp}/{}: row {i} is ragged",
                t.name
            );
        }
        let csv = t.to_csv();
        assert_eq!(
            csv.lines().count(),
            t.rows.len() + 1,
            "{exp}/{}: csv line count",
            t.name
        );
    }
}

type ExperimentFn = fn(&ExperimentContext) -> Vec<ResultTable>;

#[test]
fn every_experiment_runs_at_quick_scale() {
    // Route BENCH_*.json emission into a scratch dir so the repo tree
    // stays clean, and so we can assert the bench trail below.
    let bench_dir =
        std::env::temp_dir().join(format!("toppriv-bench-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&bench_dir).expect("scratch dir");
    std::env::set_var("TOPPRIV_BENCH_DIR", &bench_dir);

    let ctx = ExperimentContext::build(Scale::quick(), None);
    let runs: Vec<(&str, ExperimentFn)> = vec![
        ("stats", experiments::stats::run),
        ("tables", experiments::tables::run),
        ("fig2", experiments::fig2::run),
        ("fig3", experiments::fig3::run),
        ("fig4", experiments::fig4::run),
        ("fig5", experiments::fig5::run),
        ("fig6", experiments::fig6::run),
        ("ablations", experiments::ablations::run),
        ("adversary", experiments::adversary::run),
        ("classifier", experiments::classifier::run),
        ("mc", experiments::mc::run),
        ("session", experiments::session::run),
        ("reduced", experiments::reduced::run),
        ("pacing", experiments::pacing::run),
        ("quality", experiments::quality::run),
        ("load", experiments::load::run),
        ("service", experiments::service::run),
        ("sharding", experiments::sharding::run),
        ("staleness", experiments::staleness::run),
        ("appendix", experiments::appendix::run),
    ];
    let expected: usize = runs.len();
    let mut ran = 0usize;
    for (exp, f) in runs {
        let tables = f(&ctx);
        check(&tables, exp);
        ran += 1;
    }
    assert_eq!(ran, expected);

    // The service-layer experiments must leave machine-readable bench
    // snapshots with the documented stage breakdown.
    for exp in ["service", "sharding", "staleness"] {
        let path = bench_dir.join(format!("BENCH_{exp}.json"));
        let body = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{exp}: missing bench snapshot {}: {e}", path.display()));
        let snap: toppriv_obs::BenchSnapshot =
            serde_json::from_str(body.trim()).expect("bench snapshot parses");
        assert_eq!(snap.experiment, exp);
        assert!(snap.host_cores >= 1, "{exp}: host cores");
        assert!(snap.qps > 0.0, "{exp}: qps");
        assert!(!snap.stages.is_empty(), "{exp}: stages");
        for stage in &snap.stages {
            assert!(stage.count > 0, "{exp}/{}: empty stage", stage.stage);
            assert!(
                stage.p50_us <= stage.p99_us,
                "{exp}/{}: p50 {} > p99 {}",
                stage.stage,
                stage.p50_us,
                stage.p99_us
            );
        }
    }
    for exp in ["service", "sharding"] {
        let body =
            std::fs::read_to_string(bench_dir.join(format!("BENCH_{exp}.json"))).expect("read");
        let snap: toppriv_obs::BenchSnapshot = serde_json::from_str(body.trim()).expect("parse");
        for want in ["queue_wait", "shard_service", "gather", "cache_lookup"] {
            // cache_lookup only exists when a cache is configured; the
            // sharding cells run cache-off by design.
            if exp == "sharding" && want == "cache_lookup" {
                continue;
            }
            assert!(
                snap.stages.iter().any(|s| s.stage == want),
                "{exp}: stage '{want}' missing from {:?}",
                snap.stages.iter().map(|s| &s.stage).collect::<Vec<_>>()
            );
        }
        assert!(snap.shard_imbalance >= 1.0, "{exp}: imbalance");
    }

    std::env::remove_var("TOPPRIV_BENCH_DIR");
    let _ = std::fs::remove_dir_all(&bench_dir);
}
