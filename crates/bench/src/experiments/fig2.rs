//! Figure 2: TopPriv with ε1 = 5%, varying ε2.
//!
//! Panels: (a) exposure, (b) mask level, (c) cycle length υ, (d) query
//! generation time — each as a function of ε2 for the six LDA models.

use super::{eps_sweep, sweep_table};
use crate::context::ExperimentContext;
use crate::table::{f3, pct, ResultTable};
use toppriv_core::PrivacyRequirement;

/// The fixed ε1 of Figure 2 (the paper's default 5%).
pub const FIG2_EPS1: f64 = 0.05;

/// Runs the Figure 2 sweep and renders its four panels.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let sweep = eps_sweep(ctx, |eps2| {
        // ε2 may not exceed ε1; the grid's top value equals ε1.
        PrivacyRequirement::new(FIG2_EPS1, eps2.min(FIG2_EPS1)).expect("valid grid")
    });
    vec![
        sweep_table(
            "fig2a_exposure",
            "Exposure max B(t|C) over t in U (%), eps1=5%",
            "eps2_pct",
            &sweep,
            |c| c.exposure,
            pct,
        ),
        sweep_table(
            "fig2b_mask",
            "Mask level max B(t|C) over t notin U (%), eps1=5%",
            "eps2_pct",
            &sweep,
            |c| c.mask,
            pct,
        ),
        sweep_table(
            "fig2c_cycle_length",
            "Cycle length (queries per cycle), eps1=5%",
            "eps2_pct",
            &sweep,
            |c| c.cycle_len,
            f3,
        ),
        sweep_table(
            "fig2d_generation_time",
            "Ghost generation time (seconds), eps1=5%",
            "eps2_pct",
            &sweep,
            |c| c.gen_secs,
            |x| format!("{x:.4}"),
        ),
        sweep_table(
            "fig2x_satisfied",
            "Fraction of queries meeting (eps1,eps2)-privacy (extra panel)",
            "eps2_pct",
            &sweep,
            |c| c.satisfied,
            f3,
        ),
    ]
}
