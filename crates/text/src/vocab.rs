//! Vocabulary interning.
//!
//! Every term that survives analysis is assigned a dense [`TermId`] so the
//! index, LDA model, and privacy layer can all work with integer ids and
//! dense arrays instead of strings.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense identifier of a vocabulary term.
pub type TermId = u32;

/// An interning vocabulary that maps terms to dense [`TermId`]s and tracks
/// collection-level statistics (document frequency, collection frequency).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    term_to_id: HashMap<String, TermId>,
    id_to_term: Vec<String>,
    /// Number of documents each term occurs in.
    doc_freq: Vec<u32>,
    /// Total number of occurrences of each term across the collection.
    collection_freq: Vec<u64>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its id. Statistics are *not* updated; use
    /// [`Vocabulary::observe_document`] for that.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.term_to_id.get(term) {
            return id;
        }
        let id = self.id_to_term.len() as TermId;
        self.term_to_id.insert(term.to_string(), id);
        self.id_to_term.push(term.to_string());
        self.doc_freq.push(0);
        self.collection_freq.push(0);
        id
    }

    /// Looks up a term id without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.term_to_id.get(term).copied()
    }

    /// Returns the string form of `id`.
    pub fn term(&self, id: TermId) -> &str {
        &self.id_to_term[id as usize]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.id_to_term.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.id_to_term.is_empty()
    }

    /// Document frequency of `id`.
    pub fn doc_freq(&self, id: TermId) -> u32 {
        self.doc_freq[id as usize]
    }

    /// Collection frequency of `id`.
    pub fn collection_freq(&self, id: TermId) -> u64 {
        self.collection_freq[id as usize]
    }

    /// Records the terms of one document: document frequency is incremented
    /// once per distinct term, collection frequency once per occurrence.
    ///
    /// `tokens` is the document's full (analyzed) token id sequence.
    pub fn observe_document(&mut self, tokens: &[TermId]) {
        let mut seen: Vec<TermId> = Vec::with_capacity(tokens.len());
        for &t in tokens {
            self.collection_freq[t as usize] += 1;
            if !seen.contains(&t) {
                seen.push(t);
            }
        }
        // For long documents the linear `contains` above would degrade; the
        // generator caps distinct terms per document well below levels where
        // that matters, but be defensive for externally supplied documents.
        if tokens.len() > 512 {
            // Recompute with a hash set to keep doc_freq exact.
            // (collection_freq above is already exact.)
            seen.clear();
        }
        if seen.is_empty() && !tokens.is_empty() {
            let set: std::collections::HashSet<TermId> = tokens.iter().copied().collect();
            for t in set {
                self.doc_freq[t as usize] += 1;
            }
        } else {
            for t in seen {
                self.doc_freq[t as usize] += 1;
            }
        }
    }

    /// Iterates over `(id, term)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.id_to_term
            .iter()
            .enumerate()
            .map(|(i, t)| (i as TermId, t.as_str()))
    }

    /// Returns ids of terms whose document frequency is at least `min_df`.
    pub fn ids_with_min_df(&self, min_df: u32) -> Vec<TermId> {
        (0..self.len() as TermId)
            .filter(|&id| self.doc_freq(id) >= min_df)
            .collect()
    }

    /// Inverse document frequency with the standard `ln(N / df)` form.
    /// Terms never observed get idf 0.
    pub fn idf(&self, id: TermId, num_docs: usize) -> f64 {
        let df = self.doc_freq(id);
        if df == 0 || num_docs == 0 {
            0.0
        } else {
            (num_docs as f64 / df as f64).ln()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("apple");
        let b = v.intern("banana");
        assert_ne!(a, b);
        assert_eq!(v.intern("apple"), a);
        assert_eq!(v.len(), 2);
        assert_eq!(v.term(a), "apple");
        assert_eq!(v.get("banana"), Some(b));
        assert_eq!(v.get("cherry"), None);
    }

    #[test]
    fn observe_document_updates_frequencies() {
        let mut v = Vocabulary::new();
        let a = v.intern("apple");
        let b = v.intern("banana");
        v.observe_document(&[a, a, b]);
        v.observe_document(&[a]);
        assert_eq!(v.doc_freq(a), 2);
        assert_eq!(v.doc_freq(b), 1);
        assert_eq!(v.collection_freq(a), 3);
        assert_eq!(v.collection_freq(b), 1);
    }

    #[test]
    fn long_document_doc_freq_exact() {
        let mut v = Vocabulary::new();
        let ids: Vec<TermId> = (0..600).map(|i| v.intern(&format!("w{i}"))).collect();
        let mut doc = ids.clone();
        doc.extend_from_slice(&ids); // every term twice
        v.observe_document(&doc);
        for &id in &ids {
            assert_eq!(v.doc_freq(id), 1);
            assert_eq!(v.collection_freq(id), 2);
        }
    }

    #[test]
    fn idf_behaviour() {
        let mut v = Vocabulary::new();
        let rare = v.intern("rare");
        let common = v.intern("common");
        v.observe_document(&[rare, common]);
        v.observe_document(&[common]);
        v.observe_document(&[common]);
        assert!(v.idf(rare, 3) > v.idf(common, 3));
        assert_eq!(v.idf(common, 3), (3f64 / 3f64).ln());
        let unseen = v.intern("unseen");
        assert_eq!(v.idf(unseen, 3), 0.0);
    }

    #[test]
    fn min_df_filter() {
        let mut v = Vocabulary::new();
        let a = v.intern("a1");
        let b = v.intern("b1");
        v.observe_document(&[a, b]);
        v.observe_document(&[a]);
        assert_eq!(v.ids_with_min_df(2), vec![a]);
    }
}
