//! Service-wide observability.
//!
//! [`ServiceMetrics`] is the shared registry every subsystem reports
//! into: the cache (hit/miss), the cycle scheduler (queue depth, submit
//! latency), and the session manager (per-session privacy counters).
//! Snapshots are cheap and serializable, so the `metrics` op of the
//! NDJSON protocol and the demo's final report both read from here.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Shared counters and the submit-latency reservoir.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Queries submitted to the engine (cache misses included).
    submitted: AtomicU64,
    /// Cycle-member lookups served from the result cache.
    cache_hits: AtomicU64,
    /// Cycle-member lookups that reached the engine.
    cache_misses: AtomicU64,
    /// Genuine queries served.
    genuine_served: AtomicU64,
    /// Ghost queries processed.
    ghosts_processed: AtomicU64,
    /// Current scheduler queue depth.
    queue_depth: AtomicUsize,
    /// High-water mark of the queue depth.
    max_queue_depth: AtomicUsize,
    /// Per-shard queue depths, set by the scheduler when it partitions a
    /// drain (written once per drain, not per submission — the per-shard
    /// hot path stays lock-free).
    shard_queue_depths: Mutex<Vec<usize>>,
    /// Submit latencies in microseconds (engine or cache resolution
    /// time), bounded reservoir sample.
    latencies_us: Mutex<Reservoir>,
}

/// Bounded uniform sample of a stream (Vitter's Algorithm R with a
/// deterministic SplitMix64 in place of a thread RNG): memory stays
/// [`Reservoir::CAP`] forever, so a long-running server never grows,
/// and percentiles stay representative of the whole stream.
#[derive(Debug, Default)]
struct Reservoir {
    samples: Vec<u64>,
    seen: u64,
}

impl Reservoir {
    /// Samples kept (8 KiB of u64s).
    const CAP: usize = 8192;

    fn record(&mut self, value: u64) {
        self.seen += 1;
        if self.samples.len() < Self::CAP {
            self.samples.push(value);
            return;
        }
        // Keep with probability CAP/seen, replacing a uniform victim.
        let mut z = self.seen.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ value;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let slot = z % self.seen;
        if (slot as usize) < Self::CAP {
            self.samples[slot as usize] = value;
        }
    }
}

impl ServiceMetrics {
    /// A fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one resolved cycle member.
    pub fn record_submit(&self, latency_us: u64, cache_hit: bool, is_genuine: bool) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        if is_genuine {
            self.genuine_served.fetch_add(1, Ordering::Relaxed);
        } else {
            self.ghosts_processed.fetch_add(1, Ordering::Relaxed);
        }
        self.latencies_us
            .lock()
            .expect("latency reservoir poisoned")
            .record(latency_us);
    }

    /// Sets the instantaneous queue depth (and bumps the high-water mark).
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Publishes the per-shard queue depths of the current drain.
    pub fn set_shard_queue_depths(&self, depths: Vec<usize>) {
        *self
            .shard_queue_depths
            .lock()
            .expect("shard depths poisoned") = depths;
    }

    /// Per-shard queue depths as last published by the scheduler (empty
    /// before any sharded drain ran).
    pub fn shard_queue_depths(&self) -> Vec<usize> {
        self.shard_queue_depths
            .lock()
            .expect("shard depths poisoned")
            .clone()
    }

    /// Cache hit rate over all recorded submits.
    pub fn cache_hit_rate(&self) -> f64 {
        let h = self.cache_hits.load(Ordering::Relaxed) as f64;
        let m = self.cache_misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Snapshot of every global counter plus latency percentiles
    /// (computed over the bounded reservoir sample).
    pub fn snapshot(&self) -> GlobalMetrics {
        let mut lat = self
            .latencies_us
            .lock()
            .expect("latency reservoir poisoned")
            .samples
            .clone();
        lat.sort_unstable();
        GlobalMetrics {
            submitted: self.submitted.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_hit_rate: self.cache_hit_rate(),
            genuine_served: self.genuine_served.load(Ordering::Relaxed),
            ghosts_processed: self.ghosts_processed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            shard_queue_depths: self.shard_queue_depths(),
            p50_submit_us: percentile(&lat, 0.50),
            p99_submit_us: percentile(&lat, 0.99),
        }
    }
}

/// `p`-th percentile of an ascending-sorted sample (nearest-rank).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Serializable snapshot of the global counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalMetrics {
    /// Total cycle members resolved (cache + engine).
    pub submitted: u64,
    /// Lookups served from cache.
    pub cache_hits: u64,
    /// Lookups that reached the engine.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`.
    pub cache_hit_rate: f64,
    /// Genuine queries answered.
    pub genuine_served: u64,
    /// Ghost queries processed.
    pub ghosts_processed: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Highest queue depth observed.
    pub max_queue_depth: usize,
    /// Per-shard queue depths as last published by the scheduler (empty
    /// until a drain has run; all zeros after one completes).
    pub shard_queue_depths: Vec<usize>,
    /// Median submit latency (µs).
    pub p50_submit_us: u64,
    /// 99th-percentile submit latency (µs).
    pub p99_submit_us: u64,
}

/// Per-session privacy accounting, maintained by the session itself.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SessionMetrics {
    /// Session identifier.
    pub session: String,
    /// Protected searches served.
    pub cycles: u64,
    /// Total queries emitted (genuine + ghosts).
    pub queries_emitted: u64,
    /// Mean cycle length υ.
    pub mean_cycle_len: f64,
    /// Mean per-cycle exposure `max_{t∈U} B(t|C)`.
    pub mean_exposure: f64,
    /// Worst per-cycle exposure seen.
    pub worst_exposure: f64,
    /// Mean mask level `max_{t∈T\U} B(t|C)`.
    pub mean_mask_level: f64,
    /// Fraction of cycles whose `(ε1, ε2)` requirement was satisfied.
    pub satisfied_rate: f64,
    /// Exposure of the whole recorded trace (Equation 2 over the session).
    pub trace_exposure: f64,
}

/// Full service snapshot: global counters plus one entry per session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Global counters.
    pub global: GlobalMetrics,
    /// Per-session privacy metrics, sorted by session id.
    pub sessions: Vec<SessionMetrics>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_rates() {
        let m = ServiceMetrics::new();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            m.record_submit(us, us <= 30, us == 10);
        }
        let snap = m.snapshot();
        assert_eq!(snap.submitted, 10);
        assert_eq!(snap.cache_hits, 3);
        assert_eq!(snap.cache_misses, 7);
        assert!((snap.cache_hit_rate - 0.3).abs() < 1e-12);
        assert_eq!(snap.genuine_served, 1);
        assert_eq!(snap.ghosts_processed, 9);
        assert_eq!(snap.p50_submit_us, 50);
        assert_eq!(snap.p99_submit_us, 100);
    }

    #[test]
    fn queue_depth_high_water() {
        let m = ServiceMetrics::new();
        m.set_queue_depth(5);
        m.set_queue_depth(12);
        m.set_queue_depth(3);
        let snap = m.snapshot();
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.max_queue_depth, 12);
    }

    #[test]
    fn latency_reservoir_is_bounded() {
        let m = ServiceMetrics::new();
        for i in 0..(Reservoir::CAP as u64 * 4) {
            m.record_submit(i, false, false);
        }
        let held = m.latencies_us.lock().unwrap().samples.len();
        assert_eq!(held, Reservoir::CAP, "reservoir never exceeds its cap");
        let snap = m.snapshot();
        assert_eq!(snap.submitted, Reservoir::CAP as u64 * 4);
        // The sample spans the stream, not just its head: the reservoir
        // must have admitted values from the later three quarters.
        assert!(snap.p99_submit_us > Reservoir::CAP as u64);
    }

    #[test]
    fn empty_percentiles_are_zero() {
        let snap = ServiceMetrics::new().snapshot();
        assert_eq!(snap.p50_submit_us, 0);
        assert_eq!(snap.p99_submit_us, 0);
        assert_eq!(snap.cache_hit_rate, 0.0);
    }
}
