//! Tuning the (ε1, ε2) thresholds: the privacy/overhead trade-off.
//!
//! Sweeps ε2 for a fixed ε1 (Figure 2's axis) on a handful of queries and
//! prints how exposure, cycle length, and generation time respond — the
//! same trade-off an enterprise deployment would tune per user.
//!
//! Run with:
//! ```text
//! cargo run --release --example privacy_tuning
//! ```

use toppriv::corpus::{generate_workload, WorkloadConfig};
use toppriv::{BeliefEngine, CorpusConfig, GhostConfig, GhostGenerator, PrivacyRequirement};

fn main() {
    let (corpus, _engine, model) = toppriv::build_demo_stack(
        CorpusConfig {
            num_docs: 800,
            num_topics: 12,
            terms_per_topic: 80,
            ..CorpusConfig::default()
        },
        24,
        40,
    );
    let queries = generate_workload(
        &corpus,
        &WorkloadConfig {
            num_queries: 10,
            ..WorkloadConfig::default()
        },
    );

    let eps1 = 0.05;
    println!("eps1 fixed at {:.0}%; sweeping eps2:", eps1 * 100.0);
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "eps2_%", "exposure_%", "mask_%", "cycle", "gen_ms", "satisfied"
    );
    for eps2 in [0.05, 0.04, 0.03, 0.02, 0.01, 0.005] {
        let generator = GhostGenerator::new(
            BeliefEngine::new(model.clone()),
            PrivacyRequirement::new(eps1, eps2).expect("eps1 >= eps2"),
            GhostConfig::default(),
        );
        let mut exposure = 0.0;
        let mut mask = 0.0;
        let mut cycle = 0.0;
        let mut gen_ms = 0.0;
        let mut satisfied = 0usize;
        for q in &queries {
            let r = generator.generate(&q.tokens);
            exposure += r.metrics.exposure;
            mask += r.metrics.mask_level;
            cycle += r.cycle_len() as f64;
            gen_ms += r.metrics.generation_secs * 1000.0;
            satisfied += r.satisfied as usize;
        }
        let n = queries.len() as f64;
        println!(
            "{:>8.1} {:>12.3} {:>12.3} {:>10.2} {:>12.1} {:>9}/{}",
            eps2 * 100.0,
            exposure / n * 100.0,
            mask / n * 100.0,
            cycle / n,
            gen_ms / n,
            satisfied,
            queries.len()
        );
    }
    println!(
        "\nTighter eps2 => lower exposure but longer cycles (more ghost \
         traffic) and more generation work, matching Figure 2 of the paper."
    );
}
