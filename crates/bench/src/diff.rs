//! Bench-diff tooling: compare `BENCH_*.json` runs against recorded
//! baselines.
//!
//! The repo checks reference snapshots into `results/baselines/`; after
//! a bench run, `reproduce -- diff` loads every baseline, finds the
//! matching fresh snapshot (same `BENCH_<experiment>.json` name in the
//! bench directory), and flags per-stage p99 regressions and qps drops
//! beyond a configurable threshold. The driver exits non-zero when any
//! regression is flagged, so CI can run the diff as a perf tripwire —
//! typically `continue-on-error`, since shared runners are noisy.
//!
//! The comparison is intentionally structural, not statistical: one
//! snapshot per side, a percentage threshold, and a minimum-baseline
//! floor (`min_p99_us`) so sub-resolution stages (a 3 µs cache probe
//! doubling to 6 µs) don't page anyone.

use std::path::Path;
use toppriv_obs::BenchSnapshot;

/// Diff thresholds.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Flag a stage whose p99 grew by more than this percentage, and a
    /// run whose qps dropped by more than this percentage.
    pub threshold_pct: f64,
    /// Ignore stages whose **baseline** p99 is below this many
    /// microseconds — relative noise on sub-resolution stages.
    pub min_p99_us: u64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            threshold_pct: 20.0,
            min_p99_us: 10,
        }
    }
}

/// One stage's baseline-vs-current p99 comparison.
#[derive(Debug, Clone)]
pub struct StageDelta {
    /// Stage name.
    pub stage: String,
    /// Baseline p99 (µs).
    pub base_p99_us: u64,
    /// Current p99 (µs).
    pub cur_p99_us: u64,
    /// Percentage change (positive = slower).
    pub delta_pct: f64,
    /// Whether this stage regressed beyond the threshold.
    pub regressed: bool,
}

/// Baseline-vs-current comparison of one experiment's snapshots.
#[derive(Debug, Clone)]
pub struct ExperimentDiff {
    /// Experiment name (`service`, `scenario_churn`, ...).
    pub experiment: String,
    /// Baseline qps.
    pub base_qps: f64,
    /// Current qps.
    pub cur_qps: f64,
    /// Percentage qps change (negative = slower).
    pub qps_delta_pct: f64,
    /// Whether qps dropped beyond the threshold.
    pub qps_regressed: bool,
    /// Per-stage p99 comparisons (stages present on both sides).
    pub stages: Vec<StageDelta>,
}

impl ExperimentDiff {
    /// Regressed stage count plus the qps verdict.
    pub fn regressions(&self) -> usize {
        self.stages.iter().filter(|s| s.regressed).count() + usize::from(self.qps_regressed)
    }
}

/// The full diff over a baseline directory.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Per-experiment comparisons, in baseline filename order.
    pub experiments: Vec<ExperimentDiff>,
    /// Baselines with no matching current snapshot (informational — the
    /// run may simply not have included that experiment).
    pub missing_current: Vec<String>,
    /// Files on either side that failed to parse.
    pub errors: Vec<String>,
}

impl DiffReport {
    /// Total flagged regressions across every compared experiment.
    pub fn regressions(&self) -> usize {
        self.experiments.iter().map(|e| e.regressions()).sum()
    }

    /// Human-readable rendering, one line per comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for exp in &self.experiments {
            let qps_mark = if exp.qps_regressed { " REGRESSED" } else { "" };
            out.push_str(&format!(
                "{}: qps {:.1} -> {:.1} ({:+.1}%){qps_mark}\n",
                exp.experiment, exp.base_qps, exp.cur_qps, exp.qps_delta_pct
            ));
            for s in &exp.stages {
                let mark = if s.regressed { " REGRESSED" } else { "" };
                out.push_str(&format!(
                    "  {}: p99 {} us -> {} us ({:+.1}%){mark}\n",
                    s.stage, s.base_p99_us, s.cur_p99_us, s.delta_pct
                ));
            }
        }
        for m in &self.missing_current {
            out.push_str(&format!("{m}: no current snapshot (skipped)\n"));
        }
        for e in &self.errors {
            out.push_str(&format!("error: {e}\n"));
        }
        out.push_str(&format!(
            "{} experiment(s) compared, {} regression(s) flagged\n",
            self.experiments.len(),
            self.regressions()
        ));
        out
    }
}

/// Compares one baseline snapshot against its current counterpart.
pub fn diff_snapshot(
    base: &BenchSnapshot,
    cur: &BenchSnapshot,
    cfg: &DiffConfig,
) -> ExperimentDiff {
    let qps_delta_pct = if base.qps > 0.0 {
        (cur.qps - base.qps) / base.qps * 100.0
    } else {
        0.0
    };
    let mut stages = Vec::new();
    for bs in &base.stages {
        let Some(cs) = cur.stages.iter().find(|s| s.stage == bs.stage) else {
            continue;
        };
        if bs.p99_us < cfg.min_p99_us {
            continue;
        }
        let delta_pct = (cs.p99_us as f64 - bs.p99_us as f64) / bs.p99_us as f64 * 100.0;
        stages.push(StageDelta {
            stage: bs.stage.clone(),
            base_p99_us: bs.p99_us,
            cur_p99_us: cs.p99_us,
            delta_pct,
            regressed: delta_pct > cfg.threshold_pct,
        });
    }
    ExperimentDiff {
        experiment: base.experiment.clone(),
        base_qps: base.qps,
        cur_qps: cur.qps,
        qps_delta_pct,
        qps_regressed: base.qps > 0.0 && qps_delta_pct < -cfg.threshold_pct,
        stages,
    }
}

fn load_snapshot(path: &Path) -> Result<BenchSnapshot, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(body.trim()).map_err(|e| format!("{}: {e:?}", path.display()))
}

/// Diffs every `BENCH_*.json` under `baseline_dir` against the file of
/// the same name under `current_dir`.
pub fn diff_dirs(baseline_dir: &Path, current_dir: &Path, cfg: &DiffConfig) -> DiffReport {
    let mut report = DiffReport::default();
    let entries = match std::fs::read_dir(baseline_dir) {
        Ok(e) => e,
        Err(e) => {
            report
                .errors
                .push(format!("{}: {e}", baseline_dir.display()));
            return report;
        }
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    for name in names {
        let base = match load_snapshot(&baseline_dir.join(&name)) {
            Ok(s) => s,
            Err(e) => {
                report.errors.push(e);
                continue;
            }
        };
        let cur_path = current_dir.join(&name);
        if !cur_path.exists() {
            report.missing_current.push(base.experiment.clone());
            continue;
        }
        match load_snapshot(&cur_path) {
            Ok(cur) => report.experiments.push(diff_snapshot(&base, &cur, cfg)),
            Err(e) => report.errors.push(e),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use toppriv_obs::StageStats;

    fn snap(experiment: &str, qps: f64, stages: &[(&str, u64)]) -> BenchSnapshot {
        let mut s = BenchSnapshot::new(experiment);
        s.qps = qps;
        s.stages = stages
            .iter()
            .map(|&(name, p99)| StageStats {
                stage: name.into(),
                count: 100,
                p50_us: p99 / 2,
                p99_us: p99,
                mean_us: p99 as f64 / 2.0,
            })
            .collect();
        s
    }

    #[test]
    fn flags_p99_regressions_over_threshold() {
        let base = snap("service", 1000.0, &[("submit", 100), ("gather", 200)]);
        let cur = snap("service", 990.0, &[("submit", 150), ("gather", 210)]);
        let d = diff_snapshot(&base, &cur, &DiffConfig::default());
        assert_eq!(d.regressions(), 1);
        let submit = d.stages.iter().find(|s| s.stage == "submit").unwrap();
        assert!(submit.regressed);
        assert!((submit.delta_pct - 50.0).abs() < 1e-9);
        assert!(
            !d.stages
                .iter()
                .find(|s| s.stage == "gather")
                .unwrap()
                .regressed
        );
        assert!(!d.qps_regressed, "1% qps dip is within threshold");
    }

    #[test]
    fn flags_qps_drops_and_skips_tiny_stages() {
        let base = snap("audit", 1000.0, &[("cache_lookup", 3)]);
        let cur = snap("audit", 700.0, &[("cache_lookup", 9)]);
        let d = diff_snapshot(&base, &cur, &DiffConfig::default());
        assert!(d.qps_regressed, "30% qps drop must be flagged");
        assert!(
            d.stages.is_empty(),
            "stages under min_p99_us are excluded from comparison"
        );
        assert_eq!(d.regressions(), 1);
    }

    #[test]
    fn improvement_and_new_stages_are_clean() {
        let base = snap("service", 1000.0, &[("submit", 100)]);
        let cur = snap("service", 1400.0, &[("submit", 60), ("new_stage", 999)]);
        let d = diff_snapshot(&base, &cur, &DiffConfig::default());
        assert_eq!(d.regressions(), 0);
        assert_eq!(d.stages.len(), 1, "stages only on one side are skipped");
    }

    #[test]
    fn dir_diff_matches_by_filename_and_reports_missing() {
        let dir = std::env::temp_dir().join(format!("toppriv-diff-test-{}", std::process::id()));
        let base_dir = dir.join("base");
        let cur_dir = dir.join("cur");
        std::fs::create_dir_all(&base_dir).unwrap();
        std::fs::create_dir_all(&cur_dir).unwrap();
        let write = |d: &Path, s: &BenchSnapshot| {
            std::fs::write(
                d.join(format!("BENCH_{}.json", s.experiment)),
                serde_json::to_string(s).unwrap(),
            )
            .unwrap();
        };
        write(&base_dir, &snap("service", 1000.0, &[("submit", 100)]));
        write(&base_dir, &snap("sharding", 800.0, &[("gather", 50)]));
        write(&cur_dir, &snap("service", 400.0, &[("submit", 100)]));
        std::fs::write(base_dir.join("BENCH_broken.json"), "not json").unwrap();
        let report = diff_dirs(&base_dir, &cur_dir, &DiffConfig::default());
        assert_eq!(report.experiments.len(), 1);
        assert_eq!(report.missing_current, vec!["sharding".to_string()]);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.regressions(), 1, "service qps dropped 60%");
        assert!(report.render().contains("REGRESSED"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
