//! Synthetic word generation.
//!
//! The corpus substitute needs real-looking tokens so the full analysis
//! pipeline (tokenizer, stopword filter, optional stemmer) is exercised.
//! Words are composed from consonant-vowel syllables, deterministically from
//! an integer index, which guarantees (a) reproducibility, (b) uniqueness,
//! and (c) that no generated word collides with a stopword (every word is
//! checked and disambiguated with a suffix if needed).

use tsearch_text::StopwordList;

const ONSETS: &[&str] = &[
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "br",
    "cr", "dr", "gr", "pr", "tr", "st", "sp", "pl", "cl",
];
const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"];
const CODAS: &[&str] = &["", "n", "r", "s", "t", "l", "m", "x", "nd", "rk", "st"];

/// Deterministically generates the `index`-th synthetic word.
///
/// The word is built from 2–3 syllables selected by mixed-radix decomposition
/// of the index, yielding well over 10^7 distinct pronounceable words.
pub fn synth_word(index: u64) -> String {
    let mut n = index;
    let mut word = String::new();
    // First syllable: onset + nucleus.
    let onset = ONSETS[(n % ONSETS.len() as u64) as usize];
    n /= ONSETS.len() as u64;
    let nucleus = NUCLEI[(n % NUCLEI.len() as u64) as usize];
    n /= NUCLEI.len() as u64;
    word.push_str(onset);
    word.push_str(nucleus);
    // Second syllable: onset + nucleus + coda.
    let onset2 = ONSETS[(n % ONSETS.len() as u64) as usize];
    n /= ONSETS.len() as u64;
    let nucleus2 = NUCLEI[(n % NUCLEI.len() as u64) as usize];
    n /= NUCLEI.len() as u64;
    let coda = CODAS[(n % CODAS.len() as u64) as usize];
    n /= CODAS.len() as u64;
    word.push_str(onset2);
    word.push_str(nucleus2);
    word.push_str(coda);
    // Optional third syllable for higher indexes, keeps words unique.
    while n > 0 {
        let onset3 = ONSETS[(n % ONSETS.len() as u64) as usize];
        n /= ONSETS.len() as u64;
        let nucleus3 = NUCLEI[(n % NUCLEI.len() as u64) as usize];
        n /= NUCLEI.len() as u64;
        word.push_str(onset3);
        word.push_str(nucleus3);
    }
    word
}

/// Generates `count` distinct synthetic words, none of which are stopwords
/// or shorter than `min_len` characters.
pub fn generate_words(count: usize, min_len: usize) -> Vec<String> {
    let stopwords = StopwordList::english();
    let mut words = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::with_capacity(count * 2);
    let mut index = 0u64;
    while words.len() < count {
        let w = synth_word(index);
        index += 1;
        if w.len() < min_len || stopwords.contains(&w) || !seen.insert(w.clone()) {
            continue;
        }
        words.push(w);
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsearch_text::Analyzer;

    #[test]
    fn words_are_distinct_and_lowercase() {
        let words = generate_words(5000, 4);
        assert_eq!(words.len(), 5000);
        let set: std::collections::HashSet<&String> = words.iter().collect();
        assert_eq!(set.len(), 5000, "all words distinct");
        for w in &words {
            assert!(w.len() >= 4);
            assert!(w.bytes().all(|b| b.is_ascii_lowercase()), "{w}");
        }
    }

    #[test]
    fn words_survive_the_analyzer() {
        let words = generate_words(2000, 4);
        let analyzer = Analyzer::new();
        for w in &words {
            let toks = analyzer.analyze(w);
            assert_eq!(toks.len(), 1, "word {w} should be a single token");
            assert_eq!(&toks[0], w, "word {w} should pass through unchanged");
        }
    }

    #[test]
    fn synth_word_deterministic() {
        assert_eq!(synth_word(42), synth_word(42));
        assert_ne!(synth_word(1), synth_word(2));
    }

    #[test]
    fn large_indices_stay_unique() {
        let a = synth_word(1_000_000);
        let b = synth_word(1_000_001);
        assert_ne!(a, b);
    }
}
