//! Submission pacing — closing the timing side channel of cycle delivery.
//!
//! The `(ε1, ε2)` guarantee of Definition 4 is computed under Equation (2),
//! which assumes every query in a cycle "appears equally likely to the
//! adversary". The paper enforces this in *content* (Step 4 shuffles the
//! cycle, token order is sorted away), but an adversary also sees **when**
//! each query arrives. A naive client submits the genuine query immediately
//! (the user is waiting for results) and the ghosts right after, so
//! "first query of a burst" identifies the genuine query with probability
//! ≈ 1 and the guarantee collapses to nothing.
//!
//! This module provides a simulated-time scheduler with three strategies:
//!
//! - [`PacingStrategy::NaiveImmediate`] — the broken straw man: genuine
//!   first, ghosts trail at machine-regular gaps;
//! - [`PacingStrategy::ShuffledBurst`] — the paper's implied behaviour:
//!   the whole (shuffled) cycle is sent as one burst, position carries no
//!   information but the burst itself cleanly delimits cycles;
//! - [`PacingStrategy::PoissonSpread`] — ghosts spread over a window by a
//!   Poisson-like process (TrackMeNot-style background chatter), with the
//!   genuine query placed at a random position subject to a latency cap.
//!
//! Time is simulated (`f64` seconds) — nothing sleeps; the output is a
//! schedule that both the client simulation and the timing adversary of
//! `toppriv-adversary` consume.

use crate::ghost::CycleResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use toppriv_obs::HistogramHandle;
use tsearch_text::TermId;

/// Histogram name: simulated inter-submission gap within a cycle (µs).
///
/// The spread of this distribution is the pacing jitter an on-path
/// adversary observes; a degenerate (single-bucket) distribution means
/// machine-regular gaps and a clean timing fingerprint.
pub const M_PACING_GAP_US: &str = "pacing_gap_us";
/// Histogram name: simulated delay the genuine query pays (µs).
pub const M_PACING_GENUINE_DELAY_US: &str = "pacing_genuine_delay_us";

/// Simulated seconds → whole microseconds, saturating at zero.
fn secs_to_us(secs: f64) -> u64 {
    if secs <= 0.0 {
        0
    } else {
        (secs * 1e6).round() as u64
    }
}

/// How a cycle's queries are spread over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PacingStrategy {
    /// Genuine query at once, ghosts after it at `burst_gap_secs`
    /// intervals. Vulnerable by design; the experiment baseline.
    NaiveImmediate,
    /// The whole shuffled cycle back-to-back at `burst_gap_secs` intervals
    /// starting immediately.
    ShuffledBurst,
    /// Queries at exponential(-ish) spacing over roughly `window_secs`,
    /// genuine query at a shuffled position but never later than
    /// `max_genuine_delay_secs`.
    PoissonSpread {
        /// Target width of the submission window in seconds.
        window_secs: f64,
        /// Hard cap on how long the user waits for her own result.
        max_genuine_delay_secs: f64,
    },
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacingConfig {
    /// Strategy to apply.
    pub strategy: PacingStrategy,
    /// Gap between consecutive queries of a burst (seconds). Real clients
    /// are bounded by request latency; a few tens of milliseconds.
    pub burst_gap_secs: f64,
    /// Relative jitter applied to every gap (0 = none, 0.5 = ±50%).
    pub jitter: f64,
    /// RNG seed (per client).
    pub seed: u64,
}

impl Default for PacingConfig {
    fn default() -> Self {
        PacingConfig {
            strategy: PacingStrategy::ShuffledBurst,
            burst_gap_secs: 0.05,
            jitter: 0.2,
            seed: 0x7ac1_46e5,
        }
    }
}

/// One scheduled submission.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduledQuery {
    /// Absolute simulated submission time in seconds.
    pub time_secs: f64,
    /// The submitted tokens.
    pub tokens: Vec<TermId>,
    /// Ground-truth label (evaluation only; invisible to the server).
    pub is_genuine: bool,
    /// Ground-truth cycle id (evaluation only).
    pub cycle_id: usize,
}

/// Schedules cycles onto a simulated clock.
#[derive(Debug, Clone)]
pub struct PacingScheduler {
    config: PacingConfig,
    rng: StdRng,
    next_cycle_id: usize,
    gap_us: HistogramHandle,
    genuine_delay_us: HistogramHandle,
}

impl PacingScheduler {
    /// Creates a scheduler.
    pub fn new(config: PacingConfig) -> Self {
        assert!(config.burst_gap_secs >= 0.0, "gap must be non-negative");
        assert!(
            (0.0..1.0).contains(&config.jitter),
            "jitter must be in [0, 1)"
        );
        let rng = StdRng::seed_from_u64(config.seed);
        // Handles are prefetched once; schedule() never takes the
        // registry lock.
        let registry = toppriv_obs::global();
        PacingScheduler {
            config,
            rng,
            next_cycle_id: 0,
            gap_us: registry.histogram(M_PACING_GAP_US, &[]),
            genuine_delay_us: registry.histogram(M_PACING_GENUINE_DELAY_US, &[]),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &PacingConfig {
        &self.config
    }

    /// The id the next scheduled cycle will receive.
    pub fn next_cycle_id(&self) -> usize {
        self.next_cycle_id
    }

    /// Resumes cycle-id numbering from a spilled scheduler. The pacing
    /// RNG restarts from `config.seed`; only the id counter carries
    /// over, so restored sessions keep globally unique cycle ids.
    pub fn resume_from(&mut self, next_cycle_id: usize) {
        self.next_cycle_id = next_cycle_id;
    }

    /// Schedules one cycle starting at `start_secs`. Returns submissions
    /// sorted by time. The relative order of ghost queries never carries
    /// information (they are already shuffled by the generator); what the
    /// strategy controls is *where the genuine query sits in time*.
    pub fn schedule(&mut self, cycle: &CycleResult, start_secs: f64) -> Vec<ScheduledQuery> {
        let cycle_id = self.next_cycle_id;
        self.next_cycle_id += 1;
        let n = cycle.cycle_len();
        let offsets = self.offsets(n, cycle.genuine_index);
        let mut out: Vec<ScheduledQuery> = cycle
            .cycle
            .iter()
            .zip(offsets)
            .map(|(q, offset)| ScheduledQuery {
                time_secs: start_secs + offset,
                tokens: q.tokens.clone(),
                is_genuine: q.is_genuine,
                cycle_id,
            })
            .collect();
        out.sort_by(|a, b| a.time_secs.partial_cmp(&b.time_secs).expect("finite time"));
        // Pacing-jitter accounting: what the timing adversary sees
        // (inter-arrival gaps) and what the user pays (genuine delay).
        for w in out.windows(2) {
            self.gap_us
                .record(secs_to_us(w[1].time_secs - w[0].time_secs));
        }
        self.genuine_delay_us
            .record(secs_to_us(Self::genuine_delay(&out, start_secs)));
        out
    }

    /// Latency the user pays: the genuine query's submission delay.
    pub fn genuine_delay(schedule: &[ScheduledQuery], start_secs: f64) -> f64 {
        schedule
            .iter()
            .find(|q| q.is_genuine)
            .map(|q| q.time_secs - start_secs)
            .unwrap_or(0.0)
    }

    /// Per-query offsets, index-aligned with `cycle.cycle`.
    fn offsets(&mut self, n: usize, genuine_index: usize) -> Vec<f64> {
        match self.config.strategy {
            PacingStrategy::NaiveImmediate => {
                // Genuine at t=0; ghosts follow in cycle order.
                let mut offsets = vec![0.0f64; n];
                let mut t = 0.0;
                for (i, slot) in offsets.iter_mut().enumerate() {
                    if i == genuine_index {
                        continue;
                    }
                    t += self.gap();
                    *slot = t;
                }
                offsets
            }
            PacingStrategy::ShuffledBurst => {
                // Burst in (already shuffled) cycle order.
                let mut t = 0.0;
                (0..n)
                    .map(|i| {
                        if i > 0 {
                            t += self.gap();
                        }
                        t
                    })
                    .collect()
            }
            PacingStrategy::PoissonSpread {
                window_secs,
                max_genuine_delay_secs,
            } => {
                // n exponential inter-arrival gaps with mean window/n give
                // a Poisson-process look over roughly the window.
                let mean_gap = window_secs / n.max(1) as f64;
                let mut times: Vec<f64> = Vec::with_capacity(n);
                let mut t = 0.0;
                for _ in 0..n {
                    // Inverse-CDF exponential sample.
                    let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                    t += -mean_gap * u.ln();
                    times.push(t);
                }
                // The genuine query takes a random slot whose time respects
                // the latency cap; ghosts fill the remaining slots.
                let eligible: Vec<usize> = times
                    .iter()
                    .enumerate()
                    .filter(|(_, &ts)| ts <= max_genuine_delay_secs)
                    .map(|(i, _)| i)
                    .collect();
                let genuine_slot = if eligible.is_empty() {
                    // Cap tighter than the first arrival: submit genuine
                    // immediately and keep the sampled times for ghosts.
                    None
                } else {
                    Some(eligible[self.rng.gen_range(0..eligible.len())])
                };
                let mut offsets = vec![0.0f64; n];
                match genuine_slot {
                    Some(slot) => {
                        let mut ghost_slots = (0..n)
                            .filter(|&s| s != slot)
                            .collect::<Vec<_>>()
                            .into_iter();
                        for (i, slot_time) in offsets.iter_mut().enumerate() {
                            if i == genuine_index {
                                *slot_time = times[slot];
                            } else {
                                *slot_time = times[ghost_slots.next().expect("slot per ghost")];
                            }
                        }
                    }
                    None => {
                        let mut ghost_slots = (0..n.saturating_sub(1)).map(|s| times[s]);
                        for (i, slot_time) in offsets.iter_mut().enumerate() {
                            if i == genuine_index {
                                *slot_time = 0.0;
                            } else {
                                *slot_time = ghost_slots.next().expect("slot per ghost");
                            }
                        }
                    }
                }
                offsets
            }
        }
    }

    /// One jittered burst gap.
    fn gap(&mut self) -> f64 {
        let base = self.config.burst_gap_secs;
        if self.config.jitter == 0.0 {
            return base;
        }
        let j = self.config.jitter;
        base * self.rng.gen_range(1.0 - j..1.0 + j)
    }
}

/// A full simulated query log: many users' cycles merged on one clock,
/// sorted by time — exactly what the search engine's log records.
pub fn merge_schedules(mut schedules: Vec<ScheduledQuery>) -> Vec<ScheduledQuery> {
    schedules.sort_by(|a, b| a.time_secs.partial_cmp(&b.time_secs).expect("finite time"));
    schedules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghost::{CycleQuery, CycleResult};
    use crate::metrics::PrivacyMetrics;

    fn fake_cycle(n: usize, genuine_index: usize) -> CycleResult {
        let cycle: Vec<CycleQuery> = (0..n)
            .map(|i| CycleQuery {
                tokens: vec![i as u32],
                is_genuine: i == genuine_index,
                masking_topic: (i != genuine_index).then_some(i),
            })
            .collect();
        CycleResult {
            cycle,
            genuine_index,
            intention: vec![0],
            solo_boosts: vec![0.1],
            cycle_boosts: vec![0.005],
            masking_topics: vec![],
            ineffective_topics: vec![],
            satisfied: true,
            metrics: PrivacyMetrics::default(),
        }
    }

    fn scheduler(strategy: PacingStrategy) -> PacingScheduler {
        PacingScheduler::new(PacingConfig {
            strategy,
            ..Default::default()
        })
    }

    #[test]
    fn naive_puts_genuine_first() {
        let mut s = scheduler(PacingStrategy::NaiveImmediate);
        for genuine in [0usize, 2, 4] {
            let sched = s.schedule(&fake_cycle(5, genuine), 100.0);
            assert_eq!(sched.len(), 5);
            assert!(sched[0].is_genuine, "genuine is always earliest");
            assert!((sched[0].time_secs - 100.0).abs() < 1e-12);
            assert!(sched.windows(2).all(|w| w[0].time_secs <= w[1].time_secs));
        }
    }

    #[test]
    fn burst_spacing_respects_gap_and_jitter() {
        let mut s = PacingScheduler::new(PacingConfig {
            strategy: PacingStrategy::ShuffledBurst,
            burst_gap_secs: 0.1,
            jitter: 0.2,
            seed: 1,
        });
        let sched = s.schedule(&fake_cycle(6, 3), 0.0);
        for w in sched.windows(2) {
            let gap = w[1].time_secs - w[0].time_secs;
            assert!((0.08 - 1e-12..=0.12 + 1e-12).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn burst_genuine_position_is_cycle_position() {
        // In a shuffled burst the genuine query sits wherever the shuffle
        // put it — not at a fixed schedule position.
        let mut s = scheduler(PacingStrategy::ShuffledBurst);
        let sched = s.schedule(&fake_cycle(5, 2), 0.0);
        let pos = sched.iter().position(|q| q.is_genuine).unwrap();
        assert_eq!(pos, 2);
    }

    #[test]
    fn poisson_respects_latency_cap() {
        let mut s = scheduler(PacingStrategy::PoissonSpread {
            window_secs: 60.0,
            max_genuine_delay_secs: 5.0,
        });
        for trial in 0..50 {
            let sched = s.schedule(&fake_cycle(8, trial % 8), trial as f64 * 1000.0);
            let delay = PacingScheduler::genuine_delay(&sched, trial as f64 * 1000.0);
            assert!(delay <= 5.0 + 1e-9, "latency cap violated: {delay}");
        }
    }

    #[test]
    fn poisson_genuine_not_always_first() {
        let mut s = scheduler(PacingStrategy::PoissonSpread {
            window_secs: 10.0,
            max_genuine_delay_secs: 10.0,
        });
        let mut first_count = 0;
        let trials = 60;
        for t in 0..trials {
            let sched = s.schedule(&fake_cycle(6, t % 6), 0.0);
            if sched[0].is_genuine {
                first_count += 1;
            }
        }
        // Unbiased placement ⇒ genuine first ≈ 1/6 of the time.
        assert!(
            first_count < trials / 2,
            "genuine leads {first_count}/{trials} bursts — placement is biased"
        );
    }

    #[test]
    fn poisson_tight_cap_degrades_to_immediate() {
        let mut s = scheduler(PacingStrategy::PoissonSpread {
            window_secs: 100.0,
            max_genuine_delay_secs: 0.0,
        });
        let sched = s.schedule(&fake_cycle(4, 1), 7.0);
        let delay = PacingScheduler::genuine_delay(&sched, 7.0);
        assert!(delay.abs() < 1e-12, "cap 0 forces immediate submission");
    }

    #[test]
    fn deterministic_under_seed() {
        let mk = || {
            PacingScheduler::new(PacingConfig {
                strategy: PacingStrategy::PoissonSpread {
                    window_secs: 30.0,
                    max_genuine_delay_secs: 8.0,
                },
                burst_gap_secs: 0.05,
                jitter: 0.3,
                seed: 99,
            })
        };
        let a: Vec<f64> = mk()
            .schedule(&fake_cycle(5, 2), 0.0)
            .iter()
            .map(|q| q.time_secs)
            .collect();
        let b: Vec<f64> = mk()
            .schedule(&fake_cycle(5, 2), 0.0)
            .iter()
            .map(|q| q.time_secs)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn merge_orders_globally() {
        let mut s1 = scheduler(PacingStrategy::ShuffledBurst);
        let mut s2 = scheduler(PacingStrategy::ShuffledBurst);
        let mut all = s1.schedule(&fake_cycle(3, 0), 10.0);
        all.extend(s2.schedule(&fake_cycle(3, 1), 9.95));
        let merged = merge_schedules(all);
        assert!(merged.windows(2).all(|w| w[0].time_secs <= w[1].time_secs));
        assert_eq!(merged.len(), 6);
    }

    #[test]
    fn cycle_ids_increment() {
        let mut s = scheduler(PacingStrategy::ShuffledBurst);
        let a = s.schedule(&fake_cycle(2, 0), 0.0);
        let b = s.schedule(&fake_cycle(2, 0), 100.0);
        assert_eq!(a[0].cycle_id, 0);
        assert_eq!(b[0].cycle_id, 1);
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn rejects_bad_jitter() {
        PacingScheduler::new(PacingConfig {
            jitter: 1.5,
            ..Default::default()
        });
    }
}
