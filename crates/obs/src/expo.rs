//! Exposition: Prometheus text, NDJSON, and `BENCH_*.json` snapshots.
//!
//! Two live renderings of a [`MetricsRegistry`]:
//!
//! - [`render_prometheus`] — the Prometheus text format (counters and
//!   gauges as plain samples, histograms summary-style with `_count`,
//!   `_sum`, and `quantile=` samples);
//! - [`render_ndjson`] — one serialized [`MetricSnapshot`] per line,
//!   the same payload `toppriv-serve`'s NDJSON `metrics` command and
//!   `--metrics-interval` emitter use.
//!
//! Plus the benchmark trail: [`BenchSnapshot`] is the machine-readable
//! record an experiment writes via [`write_bench_snapshot`], landing as
//! `BENCH_<experiment>.json` in the current directory (or
//! `$TOPPRIV_BENCH_DIR` when set, which the test suites use to keep the
//! tree clean).

use crate::hist::Histogram;
use crate::registry::{Label, MetricSnapshot, MetricValue, MetricsRegistry};
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::PathBuf;

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[Label], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|l| format!("{}=\"{}\"", l.key, escape_label_value(&l.value)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders the registry in the Prometheus text exposition format.
///
/// ```
/// let reg = toppriv_obs::MetricsRegistry::new();
/// reg.counter("submits_total", &[("shard", "0")]).add(5);
/// let text = toppriv_obs::render_prometheus(&reg);
/// assert!(text.contains("submits_total{shard=\"0\"} 5"));
/// ```
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for snap in registry.snapshot() {
        match &snap.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    snap.name,
                    render_labels(&snap.labels, None),
                    v
                ));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    snap.name,
                    render_labels(&snap.labels, None),
                    v
                ));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    snap.name,
                    render_labels(&snap.labels, None),
                    h.count
                ));
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    snap.name,
                    render_labels(&snap.labels, None),
                    h.sum
                ));
                for (q, v) in [
                    ("0.5", h.p50),
                    ("0.9", h.p90),
                    ("0.99", h.p99),
                    ("0.999", h.p999),
                ] {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        snap.name,
                        render_labels(&snap.labels, Some(("quantile", q))),
                        v
                    ));
                }
            }
        }
    }
    out
}

/// Renders the registry as NDJSON: one [`MetricSnapshot`] JSON object
/// per line, in registry (name, labels) order.
pub fn render_ndjson(registry: &MetricsRegistry) -> Vec<String> {
    registry
        .snapshot()
        .iter()
        .filter_map(|snap| serde_json::to_string(snap).ok())
        .collect()
}

/// Parses one NDJSON line back into a [`MetricSnapshot`].
pub fn parse_ndjson_line(line: &str) -> Result<MetricSnapshot, String> {
    serde_json::from_str(line).map_err(|e| format!("{e:?}"))
}

/// Per-stage latency statistics inside a [`BenchSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Stage name (`queue_wait`, `shard_service`, `gather`,
    /// `cache_lookup`, ...).
    pub stage: String,
    /// Samples recorded for this stage.
    pub count: u64,
    /// Median latency in microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
}

impl StageStats {
    /// Summarizes a stage from its histogram.
    pub fn from_histogram(stage: impl Into<String>, h: &Histogram) -> Self {
        StageStats {
            stage: stage.into(),
            count: h.count(),
            p50_us: h.percentile(0.50),
            p99_us: h.percentile(0.99),
            mean_us: h.mean(),
        }
    }
}

/// One named invariant a scenario asserted during its run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvariantCheck {
    /// Short invariant name (`exposure_le_mask`, `accounting_bit_identical`, ...).
    pub name: String,
    /// Human-readable evidence: what was compared and what was observed.
    pub detail: String,
    /// Whether the invariant held.
    pub pass: bool,
}

/// The invariant verdicts of one scenario run: `pass` is the
/// conjunction of every [`InvariantCheck`] (vacuously `true` for plain
/// benchmark runs that assert nothing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvariantBlock {
    /// `true` iff every check passed.
    pub pass: bool,
    /// The individual checks, in assertion order.
    pub checks: Vec<InvariantCheck>,
}

impl Default for InvariantBlock {
    fn default() -> Self {
        InvariantBlock {
            pass: true,
            checks: Vec::new(),
        }
    }
}

impl InvariantBlock {
    /// Records one check outcome and folds it into the block verdict.
    pub fn check(&mut self, name: impl Into<String>, detail: impl Into<String>, pass: bool) {
        self.pass &= pass;
        self.checks.push(InvariantCheck {
            name: name.into(),
            detail: detail.into(),
            pass,
        });
    }
}

/// The machine-readable record of one benchmark run, written as
/// `BENCH_<experiment>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// Experiment name (`service`, `sharding`, `staleness`, ...).
    pub experiment: String,
    /// Host logical core count at run time.
    pub host_cores: usize,
    /// Sustained submissions per second over the measured run.
    pub qps: f64,
    /// Result-cache hit rate over the run (0 when the cache is off).
    pub cache_hit_rate: f64,
    /// Per-shard load imbalance: max over mean of per-shard submit
    /// counts (1.0 = perfectly balanced; 0 when unsharded/unknown).
    pub shard_imbalance: f64,
    /// Per-stage latency breakdown.
    pub stages: Vec<StageStats>,
    /// Scenario invariant verdicts (vacuously passing for plain
    /// benchmark runs).
    pub invariants: InvariantBlock,
    /// Free-form run description (scale, cell parameters).
    pub notes: String,
}

impl BenchSnapshot {
    /// A snapshot skeleton with host cores pre-filled.
    pub fn new(experiment: impl Into<String>) -> Self {
        BenchSnapshot {
            experiment: experiment.into(),
            host_cores: host_cores(),
            qps: 0.0,
            cache_hit_rate: 0.0,
            shard_imbalance: 0.0,
            stages: Vec::new(),
            invariants: InvariantBlock::default(),
            notes: String::new(),
        }
    }
}

/// Logical cores available to this process.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Max-over-mean imbalance of per-shard counts. Structurally total: 0.0
/// for empty or all-zero input (no observed load means no imbalance, and
/// in particular no panic and no division by a zero mean).
pub fn imbalance(per_shard: &[u64]) -> f64 {
    let max = per_shard.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return 0.0;
    }
    // f64 accumulation: huge counter sums must not overflow either.
    let total: f64 = per_shard.iter().map(|&c| c as f64).sum();
    let mean = total / per_shard.len() as f64;
    max as f64 / mean
}

/// Directory `BENCH_*.json` files land in: `$TOPPRIV_BENCH_DIR` when
/// set, else the current directory.
pub fn bench_dir() -> PathBuf {
    std::env::var_os("TOPPRIV_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Serializes `snapshot` to `BENCH_<experiment>.json` in [`bench_dir`]
/// and returns the path written.
pub fn write_bench_snapshot(snapshot: &BenchSnapshot) -> std::io::Result<PathBuf> {
    let path = bench_dir().join(format!("BENCH_{}.json", snapshot.experiment));
    let json = serde_json::to_string(snapshot)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))?;
    let mut f = std::fs::File::create(&path)?;
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_renders_all_metric_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("subs_total", &[("shard", "2")]).add(9);
        reg.gauge("depth", &[]).set(-1);
        reg.histogram("lat_us", &[("stage", "gather")]).record(50);
        let text = render_prometheus(&reg);
        assert!(text.contains("subs_total{shard=\"2\"} 9"));
        assert!(text.contains("depth -1"));
        assert!(text.contains("lat_us_count{stage=\"gather\"} 1"));
        assert!(text.contains("lat_us_sum{stage=\"gather\"} 50"));
        assert!(text.contains("lat_us{stage=\"gather\",quantile=\"0.99\"} 50"));
    }

    #[test]
    fn ndjson_roundtrips() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", &[("shard", "0")]).add(3);
        reg.histogram("b_us", &[]).record(77);
        let lines = render_ndjson(&reg);
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let snap = parse_ndjson_line(line).unwrap();
            assert!(!snap.name.is_empty());
        }
    }

    #[test]
    fn bench_snapshot_writes_and_parses() {
        let dir = std::env::temp_dir().join(format!("toppriv-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("TOPPRIV_BENCH_DIR", &dir);
        let h = Histogram::new();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let mut snap = BenchSnapshot::new("unit");
        snap.qps = 123.0;
        snap.stages.push(StageStats::from_histogram("gather", &h));
        snap.invariants.check("sane", "3 samples recorded", true);
        snap.invariants
            .check("balanced", "imbalance 2.0 > 1.5", false);
        let path = write_bench_snapshot(&snap).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let back: BenchSnapshot = serde_json::from_str(body.trim()).unwrap();
        assert_eq!(back, snap);
        assert!(back.host_cores >= 1);
        assert!(!back.invariants.pass);
        assert_eq!(back.invariants.checks.len(), 2);
        std::env::remove_var("TOPPRIV_BENCH_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0]), 0.0);
        assert_eq!(imbalance(&[0, 0]), 0.0);
        assert!((imbalance(&[10, 10, 10, 10]) - 1.0).abs() < 1e-12);
        assert!((imbalance(&[30, 10]) - 1.5).abs() < 1e-12);
        // Degenerate shapes must stay total: one loaded shard among
        // idle ones is max-over-mean = n, and a single shard is 1.0.
        assert!((imbalance(&[0, 0, 0, 12]) - 4.0).abs() < 1e-12);
        assert!((imbalance(&[7]) - 1.0).abs() < 1e-12);
        assert!(imbalance(&[u64::MAX, u64::MAX]).is_finite());
    }
}
