//! # toppriv
//!
//! Facade crate for the TopPriv reproduction and its production service
//! layer. Re-exports every subsystem under a stable module path and
//! provides [`build_demo_stack`] — the three-piece demo stack (corpus,
//! engine, shared LDA model) that the examples and the `toppriv-serve`
//! demo mode are built on.
//!
//! Layering (each layer only depends on the ones above it):
//!
//! - substrates: [`text`], [`index`], [`store`], [`corpus`];
//! - models and engines: [`lda`], [`search`];
//! - the paper's client module: [`core`] (with [`baselines`] and
//!   [`adversary`] for the evaluation);
//! - the multi-tenant service layer: [`service`];
//! - cross-cutting observability (registry, histograms, spans): [`obs`];
//! - the reproduction harness: [`bench`](mod@bench).

pub use toppriv_adversary as adversary;
pub use toppriv_baselines as baselines;
pub use toppriv_bench as bench;
pub use toppriv_core as core;
pub use toppriv_obs as obs;
pub use toppriv_service as service;
pub use tsearch_corpus as corpus;
pub use tsearch_index as index;
pub use tsearch_lda as lda;
pub use tsearch_search as search;
pub use tsearch_store as store;
pub use tsearch_text as text;

pub use toppriv_core::{
    BeliefEngine, GhostConfig, GhostGenerator, PrivacyRequirement, TrustedClient,
};
pub use toppriv_service::{ResultCache, SearchTier, ServiceMetrics, SessionManager};
pub use tsearch_corpus::{CorpusConfig, SyntheticCorpus};
pub use tsearch_index::{ShardRouter, ShardedIndex};
pub use tsearch_lda::LdaModel;
pub use tsearch_search::{ScoringModel, SearchEngine, ShardedEngine};

use std::sync::Arc;
use tsearch_lda::{LdaConfig, LdaTrainer};
use tsearch_text::Analyzer;

/// Builds the demo stack: a synthetic corpus, a search engine hosting it,
/// and an LDA model trained on it (wrapped in an [`Arc`] so any number of
/// belief engines, clients, and service sessions can share it).
pub fn build_demo_stack(
    config: CorpusConfig,
    topics: usize,
    iterations: usize,
) -> (SyntheticCorpus, SearchEngine, Arc<LdaModel>) {
    let (corpus, tier, model) = build_demo_stack_sharded(config, topics, iterations, 1);
    let engine = match tier {
        SearchTier::Single(engine) => {
            Arc::try_unwrap(engine).unwrap_or_else(|_| unreachable!("freshly built, sole Arc"))
        }
        SearchTier::Sharded(_) => unreachable!("shards = 1 always builds a single tier"),
    };
    (corpus, engine, model)
}

/// Variant of [`build_demo_stack`] whose search tier is term-sharded:
/// returns a [`SearchTier::Sharded`] over `shards` index shards when
/// `shards > 1`, else a [`SearchTier::Single`] (the two are
/// result-identical; sharding only changes how the service scales).
pub fn build_demo_stack_sharded(
    config: CorpusConfig,
    topics: usize,
    iterations: usize,
    shards: usize,
) -> (SyntheticCorpus, SearchTier, Arc<LdaModel>) {
    let corpus = SyntheticCorpus::generate(config);
    let docs = corpus.token_docs();
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let tier = if shards > 1 {
        SearchTier::Sharded(Arc::new(ShardedEngine::build(
            &docs,
            &texts,
            Analyzer::new(),
            corpus.vocab.clone(),
            ScoringModel::TfIdfCosine,
            shards,
        )))
    } else {
        SearchTier::Single(Arc::new(SearchEngine::build(
            &docs,
            &texts,
            Analyzer::new(),
            corpus.vocab.clone(),
            ScoringModel::TfIdfCosine,
        )))
    };
    let model = Arc::new(LdaTrainer::train(
        &docs,
        corpus.vocab.len(),
        LdaConfig {
            iterations,
            ..LdaConfig::with_topics(topics)
        },
    ));
    (corpus, tier, model)
}
