//! Figure 5: TopPriv vs PDX at equal word budgets.
//!
//! For cycle length υ, TopPriv spends its word budget on υ−1 separate
//! ghost queries while PDX embeds the same budget as decoy terms inside a
//! single embellished query (expansion factor υ). The figure reports the
//! ratio of the two exposures — below 1 means TopPriv hides the intention
//! better.

use super::fig4::build_pdx_inputs;
use crate::context::ExperimentContext;
use crate::scale::Scale;
use crate::table::{f3, ResultTable};
use toppriv_baselines::{PdxConfig, PdxEmbellisher};
use toppriv_core::{exposure, BeliefEngine, GhostConfig, GhostGenerator, PrivacyRequirement};

/// ε1 used to define the protected intention (the paper's default 5%).
pub const FIG5_EPS1: f64 = 0.05;

/// Runs the Figure 5 comparison.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let (thesaurus, idfs) = build_pdx_inputs(ctx);
    let queries = ctx.sweep_queries();
    // A tiny ε2 so the fixed-υ run never stops early for satisfaction.
    let requirement = PrivacyRequirement::new(FIG5_EPS1, 1e-6).expect("valid");

    let per_model: Vec<(usize, Vec<(usize, f64)>)> = std::thread::scope(|s| {
        let handles: Vec<_> = ctx
            .models
            .iter()
            .map(|(k, model)| {
                let thesaurus = &thesaurus;
                let idfs = &idfs;
                s.spawn(move || {
                    let belief = BeliefEngine::new(model.clone());
                    let generator = GhostGenerator::new(
                        BeliefEngine::new(model.clone()),
                        requirement,
                        GhostConfig::default(),
                    );
                    let mut ratios = Vec::new();
                    for &v in &ctx.scale.cycle_lengths {
                        let pdx = PdxEmbellisher::new(
                            thesaurus,
                            idfs.clone(),
                            PdxConfig {
                                expansion_factor: v,
                                ..PdxConfig::default()
                            },
                        );
                        let mut toppriv_total = 0.0;
                        let mut pdx_total = 0.0;
                        let mut counted = 0usize;
                        for q in queries {
                            let result = generator.generate_with_target(&q.tokens, v);
                            if result.intention.is_empty() {
                                continue;
                            }
                            let qe = pdx.embellish(&q.tokens);
                            let pdx_boosts = belief.boost(&qe.tokens);
                            toppriv_total += exposure(&result.cycle_boosts, &result.intention);
                            pdx_total += exposure(&pdx_boosts, &result.intention);
                            counted += 1;
                        }
                        let ratio = if counted == 0 || pdx_total <= 0.0 {
                            f64::NAN
                        } else {
                            toppriv_total / pdx_total
                        };
                        ratios.push((v, ratio));
                    }
                    (*k, ratios)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fig5 worker panicked"))
            .collect()
    });

    let mut header = vec!["cycle_length".to_string()];
    header.extend(per_model.iter().map(|(k, _)| Scale::model_label(*k)));
    let mut table = ResultTable::new(
        "fig5_toppriv_vs_pdx",
        "Exposure ratio TopPriv(v) / PDX(v-fold expansion); < 1 favours TopPriv",
        header,
    );
    for (i, &v) in ctx.scale.cycle_lengths.iter().enumerate() {
        let mut row = vec![v.to_string()];
        for (_, ratios) in &per_model {
            row.push(f3(ratios[i].1));
        }
        table.push_row(row);
    }
    vec![table]
}
