//! Session-level privacy (extension beyond the paper): an adversary who
//! aggregates belief over the WHOLE query log can still accumulate
//! evidence across many per-cycle-certified queries on the same topic.
//! The session-aware mode certifies (ε1, ε2) against the entire trace.
//!
//! Run with:
//! ```text
//! cargo run --release --example session_privacy
//! ```

use toppriv::core::{BeliefEngine, GhostConfig, GhostGenerator, SessionTracker};
use toppriv::corpus::{generate_workload, WorkloadConfig};
use toppriv::{CorpusConfig, PrivacyRequirement};

fn main() {
    let (corpus, _engine, model) = toppriv::build_demo_stack(
        CorpusConfig {
            num_docs: 800,
            num_topics: 12,
            terms_per_topic: 80,
            ..CorpusConfig::default()
        },
        24,
        40,
    );
    let queries = generate_workload(
        &corpus,
        &WorkloadConfig {
            num_queries: 60,
            two_topic_prob: 0.0,
            ..WorkloadConfig::default()
        },
    );
    // Build one session: 6 queries on the same sensitive topic.
    let topic = queries[0].target_topics[0];
    let session: Vec<_> = queries
        .iter()
        .filter(|q| q.target_topics == vec![topic])
        .take(6)
        .collect();
    println!(
        "session: {} queries on ground-truth topic {topic}\n",
        session.len()
    );

    let requirement = PrivacyRequirement::paper_default();
    let belief = BeliefEngine::new(model.clone());
    let generator = GhostGenerator::new(
        BeliefEngine::new(model.clone()),
        requirement,
        GhostConfig::default(),
    );

    for (name, session_aware) in [
        ("per-cycle TopPriv", false),
        ("session-aware TopPriv", true),
    ] {
        let mut tracker = SessionTracker::new();
        let mut intention = Vec::new();
        println!("--- {name}");
        for (i, q) in session.iter().enumerate() {
            let result = if session_aware {
                generator.generate_with_history(&q.tokens, tracker.posteriors())
            } else {
                generator.generate(&q.tokens)
            };
            if intention.is_empty() {
                intention = result.intention.clone();
            }
            tracker.record_cycle(&belief, &result);
            let report = tracker.report(&belief, &intention);
            println!(
                "  after query {}: cycle v={}, cycle exposure {:.2}%, TRACE exposure {:.2}% ({} queries logged)",
                i + 1,
                result.cycle_len(),
                result.metrics.exposure * 100.0,
                report.trace_exposure * 100.0,
                report.queries_seen
            );
        }
        println!();
    }
    println!(
        "Per-cycle certification bounds each cycle at eps2 = {:.0}%, but the\n\
         aggregated trace can drift above it; the session-aware mode keeps\n\
         the whole-trace exposure under eps2 by spending extra ghosts.",
        requirement.eps2 * 100.0
    );
}
