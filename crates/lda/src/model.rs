//! The trained LDA model.
//!
//! Holds the two conditional-probability families the paper uses
//! (Section IV-B): `Pr(w|t)` for all words and topics, and `Pr(t|d)` for
//! all topics and documents, plus the corpus prior `Pr(t)` of Equation (1).

use serde::{Deserialize, Serialize};
use tsearch_text::TermId;

/// A trained Latent Dirichlet Allocation model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LdaModel {
    /// Number of topics K.
    num_topics: usize,
    /// Vocabulary size V.
    vocab_size: usize,
    /// Dirichlet hyperparameter on document-topic mixtures.
    alpha: f64,
    /// Dirichlet hyperparameter on topic-word distributions.
    beta: f64,
    /// `Pr(w|t)`, stored word-major: `phi_wk[w * K + k]`. Word-major layout
    /// makes the query-inference inner loop (all topics of one word)
    /// contiguous.
    phi_wk: Vec<f64>,
    /// `Pr(t|d)`, stored document-major: `theta_dk[d * K + k]`.
    theta_dk: Vec<f64>,
    /// Corpus prior `Pr(t)` per Equation (1).
    prior: Vec<f64>,
}

impl LdaModel {
    /// Assembles a model from raw estimates. `phi_wk` must be word-major
    /// `V×K`, `theta_dk` document-major `D×K`.
    pub fn from_parts(
        num_topics: usize,
        vocab_size: usize,
        alpha: f64,
        beta: f64,
        phi_wk: Vec<f64>,
        theta_dk: Vec<f64>,
    ) -> Self {
        assert_eq!(phi_wk.len(), num_topics * vocab_size, "phi shape");
        assert_eq!(theta_dk.len() % num_topics, 0, "theta shape");
        let num_docs = theta_dk.len() / num_topics;
        // Equation (1): Pr(t) = (1/|D|) sum_d Pr(t|d).
        let mut prior = vec![0.0f64; num_topics];
        for d in 0..num_docs {
            for k in 0..num_topics {
                prior[k] += theta_dk[d * num_topics + k];
            }
        }
        if num_docs > 0 {
            prior.iter_mut().for_each(|p| *p /= num_docs as f64);
        }
        LdaModel {
            num_topics,
            vocab_size,
            alpha,
            beta,
            phi_wk,
            theta_dk,
            prior,
        }
    }

    /// Number of topics K.
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// Vocabulary size V.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Number of training documents D.
    pub fn num_docs(&self) -> usize {
        self.theta_dk
            .len()
            .checked_div(self.num_topics)
            .unwrap_or(0)
    }

    /// Hyperparameter alpha.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Hyperparameter beta.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// `Pr(w|t)`.
    pub fn phi(&self, topic: usize, word: TermId) -> f64 {
        self.phi_wk[word as usize * self.num_topics + topic]
    }

    /// The topic row of one word: `Pr(w|t)` for all `t` (contiguous slice).
    pub fn word_topics(&self, word: TermId) -> &[f64] {
        let start = word as usize * self.num_topics;
        &self.phi_wk[start..start + self.num_topics]
    }

    /// `Pr(t|d)` for a training document.
    pub fn theta(&self, doc: usize, topic: usize) -> f64 {
        self.theta_dk[doc * self.num_topics + topic]
    }

    /// The full mixture of a training document.
    pub fn doc_topics(&self, doc: usize) -> &[f64] {
        let start = doc * self.num_topics;
        &self.theta_dk[start..start + self.num_topics]
    }

    /// Corpus prior `Pr(t)` (Equation 1).
    pub fn prior(&self) -> &[f64] {
        &self.prior
    }

    /// The word distribution of one topic: `Pr(w|t)` for all `w`
    /// (strided gather; used by ghost-query generation and reports).
    pub fn topic_word_dist(&self, topic: usize) -> Vec<f64> {
        (0..self.vocab_size)
            .map(|w| self.phi_wk[w * self.num_topics + topic])
            .collect()
    }

    /// The `n` highest-probability words of `topic` as `(word, Pr(w|t))`,
    /// descending.
    pub fn top_words(&self, topic: usize, n: usize) -> Vec<(TermId, f64)> {
        let mut pairs: Vec<(TermId, f64)> = (0..self.vocab_size)
            .map(|w| (w as TermId, self.phi_wk[w * self.num_topics + topic]))
            .collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite phi"));
        pairs.truncate(n);
        pairs
    }

    /// Size accounting for Figure 6: the serialized footprint of the model
    /// structures at 4 bytes per probability (single precision, matching
    /// the ~140 MB the paper reports for LDA200 over the 182k-term WSJ
    /// vocabulary).
    pub fn size_breakdown(&self) -> LdaSizeBreakdown {
        LdaSizeBreakdown {
            phi_bytes: self.phi_wk.len() * 4,
            theta_bytes: self.theta_dk.len() * 4,
            prior_bytes: self.prior.len() * 8,
        }
    }

    /// Checks internal consistency: every stored distribution sums to 1.
    pub fn validate(&self) -> Result<(), String> {
        for k in 0..self.num_topics {
            let sum: f64 = (0..self.vocab_size)
                .map(|w| self.phi_wk[w * self.num_topics + k])
                .sum();
            if (sum - 1.0).abs() > 1e-6 {
                return Err(format!("phi for topic {k} sums to {sum}"));
            }
        }
        for d in 0..self.num_docs() {
            let sum: f64 = self.doc_topics(d).iter().sum();
            if (sum - 1.0).abs() > 1e-6 {
                return Err(format!("theta for doc {d} sums to {sum}"));
            }
        }
        let prior_sum: f64 = self.prior.iter().sum();
        if self.num_docs() > 0 && (prior_sum - 1.0).abs() > 1e-6 {
            return Err(format!("prior sums to {prior_sum}"));
        }
        Ok(())
    }
}

/// Byte-size breakdown of an LDA model (Figure 6 accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LdaSizeBreakdown {
    /// `Pr(w|t)` matrix bytes — the dominant structure.
    pub phi_bytes: usize,
    /// `Pr(t|d)` matrix bytes.
    pub theta_bytes: usize,
    /// Prior vector bytes.
    pub prior_bytes: usize,
}

impl LdaSizeBreakdown {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.phi_bytes + self.theta_bytes + self.prior_bytes
    }

    /// The client-side footprint: the client needs `Pr(w|t)` and the prior
    /// but not the per-document mixtures.
    pub fn client_bytes(&self) -> usize {
        self.phi_bytes + self.prior_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built 2-topic, 3-word, 2-doc model.
    fn toy() -> LdaModel {
        // phi word-major: word0: [0.7, 0.1], word1: [0.2, 0.3], word2: [0.1, 0.6]
        let phi = vec![0.7, 0.1, 0.2, 0.3, 0.1, 0.6];
        // theta doc-major: doc0: [0.9, 0.1], doc1: [0.3, 0.7]
        let theta = vec![0.9, 0.1, 0.3, 0.7];
        LdaModel::from_parts(2, 3, 25.0, 0.1, phi, theta)
    }

    #[test]
    fn accessors() {
        let m = toy();
        assert_eq!(m.num_topics(), 2);
        assert_eq!(m.vocab_size(), 3);
        assert_eq!(m.num_docs(), 2);
        assert_eq!(m.phi(0, 0), 0.7);
        assert_eq!(m.phi(1, 2), 0.6);
        assert_eq!(m.theta(1, 1), 0.7);
        assert_eq!(m.word_topics(1), &[0.2, 0.3]);
        assert_eq!(m.doc_topics(0), &[0.9, 0.1]);
    }

    #[test]
    fn prior_is_mean_theta() {
        let m = toy();
        assert!((m.prior()[0] - 0.6).abs() < 1e-12);
        assert!((m.prior()[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn top_words_sorted() {
        let m = toy();
        let top = m.top_words(0, 2);
        assert_eq!(top[0].0, 0);
        assert_eq!(top[1].0, 1);
        let dist = m.topic_word_dist(1);
        assert_eq!(dist, vec![0.1, 0.3, 0.6]);
    }

    #[test]
    fn validation_accepts_toy() {
        toy().validate().unwrap();
    }

    #[test]
    fn validation_rejects_broken_phi() {
        let phi = vec![0.9, 0.1, 0.2, 0.3, 0.1, 0.6]; // topic 0 sums to 1.2
        let theta = vec![1.0, 0.0];
        let m = LdaModel::from_parts(2, 3, 1.0, 0.1, phi, theta);
        assert!(m.validate().is_err());
    }

    #[test]
    fn size_breakdown() {
        let m = toy();
        let s = m.size_breakdown();
        assert_eq!(s.phi_bytes, 6 * 4);
        assert_eq!(s.theta_bytes, 4 * 4);
        assert_eq!(s.prior_bytes, 2 * 8);
        assert_eq!(s.total(), 24 + 16 + 16);
        assert_eq!(s.client_bytes(), 24 + 16);
    }
}
