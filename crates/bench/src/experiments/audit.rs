//! Experiment `audit` (extension beyond the paper): the cost and the
//! catch-latency of the online privacy-audit plane.
//!
//! Two identical fleets run the same planned workload on the same
//! sharded tier configuration — one with the [`toppriv_service::PrivacyAuditor`]
//! attached, one without — and the drains are timed head-to-head in
//! interleaved passes (median-of, robust to scheduler warm-up and OS
//! noise). The auditor's per-submission work is two hash lookups and an
//! atomic, so its throughput tax must stay within a small budget; the
//! snapshot's invariant block records the verdict.
//!
//! The second half is the chaos proof: a registered cycle on the
//! audited fleet is rigged ([`toppriv_service::PrivacyAuditor::rig_cycle`]) with a mask
//! schedule that violates the fleet invariant, and the experiment
//! **asserts** the ε2 breach is journaled within the very next drain —
//! the audit plane's end-to-end detection-latency guarantee. Alongside,
//! the invariant block checks the p99 service-latency exemplar links to
//! a real `drain_shard` span, the per-tenant gauges are live, the
//! online adversary estimator publishes its drift gauges, and the audit
//! journal survives a seal/unseal round trip.
//!
//! Output: `BENCH_audit.json` (via `$TOPPRIV_BENCH_DIR`) plus one
//! result table.

use crate::context::ExperimentContext;
use crate::obsbench;
use crate::scenarios::{fleet_manager, sharded_tier, FLEET_SEED, SHARDS, TOP_K, WORKERS};
use crate::table::{f3, ResultTable};
use std::sync::Arc;
use std::time::Instant;
use toppriv_adversary::{OnlineEstimatorConfig, OnlineLogEstimator};
use toppriv_obs::InvariantBlock;
use toppriv_service::auditor::{M_TENANT_HEADROOM, M_TENANT_TRACE_EXPOSURE};
use toppriv_service::{CycleScheduler, PlannedQuery, SessionManager};

/// Tenants sharing each fleet.
pub const TENANTS: usize = 8;
/// Cycles each tenant plans per measured wave — sized so one drain is
/// around a thousand submissions, long enough that timer noise does
/// not dominate the overhead comparison.
pub const CYCLES_PER_TENANT: usize = 10;
/// Interleaved off/on measurement passes (median-of).
const PASSES: usize = 5;

/// Median of a set of per-pass throughput readings: robust both to the
/// occasional OS-preempted slow pass (which wrecks a mean) and to one
/// lucky fast pass (which wrecks a best-of).
fn median_qps(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Plans one fresh wave of cycles for every tenant (planning is
/// untimed: the experiment prices the drain path, where the auditor's
/// per-submission hook lives).
fn plan_wave(
    ctx: &ExperimentContext,
    manager: &SessionManager,
    pass: usize,
) -> Vec<Vec<PlannedQuery>> {
    let queries = ctx.sweep_queries();
    let mut plans = Vec::new();
    for (s, id) in manager.session_ids().iter().enumerate() {
        for c in 0..CYCLES_PER_TENANT {
            let q = &queries[(pass * 11 + s * 3 + c) % queries.len()];
            plans.push(manager.plan_cycle(id, &q.tokens, TOP_K).expect("open"));
        }
    }
    plans
}

/// Drains `plans` on `scheduler`, returning `(submissions, seconds)`.
fn timed_drain(scheduler: &CycleScheduler, plans: Vec<Vec<PlannedQuery>>) -> (usize, f64) {
    let queue = CycleScheduler::merge(plans);
    let n = queue.len();
    let t0 = Instant::now();
    let outcomes = scheduler.drain(queue);
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(&outcomes);
    assert_eq!(outcomes.len(), n, "every planned submission must drain");
    (n, secs)
}

/// Runs the audit-plane experiment.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    // Two identical fleets; only the audit plane differs.
    let manager_off = Arc::new(
        SessionManager::with_tier(sharded_tier(ctx, SHARDS), ctx.default_model().clone())
            .with_cache(4096)
            .with_fleet_seed(FLEET_SEED),
    );
    let manager_on = fleet_manager(ctx, sharded_tier(ctx, SHARDS));
    let auditor = manager_on
        .auditor()
        .expect("fleet manager attaches auditor");
    for m in [&manager_off, &manager_on] {
        for s in 0..TENANTS {
            m.open_session(&format!("audit-{s}")).expect("fresh id");
        }
    }
    let scheduler_off = CycleScheduler::for_manager(&manager_off, WORKERS);
    let scheduler_on = CycleScheduler::for_manager(&manager_on, WORKERS);
    obsbench::reset_engine_stages();

    // --- Throughput: interleaved median-of passes. ---------------------
    // One untimed warm-up drain per fleet first: it pays the worker
    // pool's and cache's cold-start cost outside the measurement.
    let mut drained_off = timed_drain(&scheduler_off, plan_wave(ctx, &manager_off, PASSES + 1)).0;
    let mut drained_on = timed_drain(&scheduler_on, plan_wave(ctx, &manager_on, PASSES + 1)).0;
    let mut off_qps = Vec::with_capacity(PASSES);
    let mut on_qps = Vec::with_capacity(PASSES);
    for pass in 0..PASSES {
        let (n, secs) = timed_drain(&scheduler_off, plan_wave(ctx, &manager_off, pass));
        drained_off += n;
        off_qps.push(n as f64 / secs.max(1e-9));
        let (n, secs) = timed_drain(&scheduler_on, plan_wave(ctx, &manager_on, pass));
        drained_on += n;
        on_qps.push(n as f64 / secs.max(1e-9));
    }
    let med_off_qps = median_qps(&mut off_qps);
    let med_on_qps = median_qps(&mut on_qps);
    let overhead_pct = if med_off_qps > 0.0 {
        (med_off_qps - med_on_qps) / med_off_qps * 100.0
    } else {
        0.0
    };
    // Small (quick) corpora drain in milliseconds, so timing noise
    // dominates; the budget widens accordingly.
    let budget_pct = if ctx.scale.name == "standard" {
        5.0
    } else {
        15.0
    };

    let mut inv = InvariantBlock::default();
    inv.check(
        "auditor_overhead_within_budget",
        format!(
            "median-of-{PASSES} drains: {med_off_qps:.0} qps off vs {med_on_qps:.0} qps on \
             ({overhead_pct:+.1}% overhead, budget {budget_pct:.0}%)"
        ),
        overhead_pct <= budget_pct,
    );
    let clean_breaches = auditor.log().breaches();
    inv.check(
        "clean_workload_audits_clean",
        format!(
            "{} cycle(s) audited across {PASSES} passes, {clean_breaches} breach(es)",
            auditor.cycles_audited()
        ),
        auditor.cycles_audited() > 0 && clean_breaches == 0,
    );

    // --- Chaos: rig one registered cycle, catch it within one drain. ---
    let plans = plan_wave(ctx, &manager_on, PASSES);
    let rigged = plans[0][0].clone();
    auditor.rig_cycle(&rigged.session, rigged.scheduled.cycle_id, 0.5, 0.0);
    // Clean slate for the exemplar check: this drain's spans and
    // service-latency samples only.
    let registry = manager_on.metrics_registry().registry().clone();
    for snap in registry.snapshot() {
        if snap.name == toppriv_service::scheduler::M_SERVICE_US {
            let labels: Vec<(&str, &str)> = snap
                .labels
                .iter()
                .map(|l| (l.key.as_str(), l.value.as_str()))
                .collect();
            registry
                .histogram(toppriv_service::scheduler::M_SERVICE_US, &labels)
                .clear();
        }
    }
    toppriv_obs::tracer().clear();
    let breaches_before = auditor.log().breaches();
    let (n, secs) = timed_drain(&scheduler_on, plans);
    drained_on += n;
    let breaches_after = auditor.log().breaches();
    let caught = breaches_after == breaches_before + 1;
    inv.check(
        "injected_breach_caught_within_one_drain",
        format!(
            "rigged cycle {} of {}: breaches {breaches_before} -> {breaches_after} \
             after one {n}-submission drain ({secs:.3}s)",
            rigged.scheduled.cycle_id, rigged.session
        ),
        caught,
    );
    assert!(
        caught,
        "audit plane missed the injected ε2 breach: {breaches_before} -> {breaches_after}"
    );
    let breach_event = auditor
        .log()
        .events()
        .into_iter()
        .rev()
        .find(|e| e.code == "eps2_breach");
    inv.check(
        "breach_event_names_tenant_and_cycle",
        match &breach_event {
            Some(e) => format!(
                "journaled: tenant {} cycle {} ({})",
                e.tenant, e.cycle, e.detail
            ),
            None => "no eps2_breach event in journal".into(),
        },
        breach_event.as_ref().is_some_and(|e| {
            e.tenant == rigged.session && e.cycle == rigged.scheduled.cycle_id as u64
        }),
    );
    let health = auditor.health();
    inv.check(
        "breach_degrades_health",
        format!(
            "health after injection: {} ({})",
            health.verdict(),
            health.detail
        ),
        !health.healthy && health.breaches >= 1,
    );

    // --- Exemplar: the p99 service-latency bucket links to a real
    // `drain_shard` span of the last drain. ------------------------------
    let exemplar = registry
        .merged_histogram(toppriv_service::scheduler::M_SERVICE_US)
        .and_then(|h| h.exemplar(0.99));
    let linked = exemplar.is_some_and(|id| {
        toppriv_obs::tracer()
            .events()
            .iter()
            .any(|e| e.name == "drain_shard" && e.id == id)
    });
    inv.check(
        "p99_exemplar_links_drain_shard_span",
        format!(
            "p99 exemplar span id {exemplar:?} resolved against the trace journal \
             ({n} submissions in the exemplar drain)"
        ),
        linked,
    );

    // --- Per-tenant gauges are live in micro-units. --------------------
    let trace_gauge = registry
        .gauge(M_TENANT_TRACE_EXPOSURE, &[("tenant", "audit-0")])
        .get();
    let headroom_gauge = registry
        .gauge(M_TENANT_HEADROOM, &[("tenant", "audit-0")])
        .get();
    inv.check(
        "tenant_gauges_live",
        format!(
            "audit-0: trace_exposure {trace_gauge} µ-units, budget_headroom {headroom_gauge} µ-units"
        ),
        trace_gauge > 0 && headroom_gauge != 0,
    );

    // --- Online adversary estimator publishes drift gauges. ------------
    let estimator = OnlineLogEstimator::new(
        ctx.default_model().clone(),
        OnlineEstimatorConfig::default(),
    );
    let shard_logs = manager_on
        .tier()
        .as_sharded()
        .expect("audit tier is sharded")
        .shard_logs();
    let s1 = estimator.sample(&shard_logs, &registry);
    let s2 = estimator.sample(&shard_logs, &registry);
    inv.check(
        "adversary_drift_published",
        format!(
            "window {} queries, top boost {:.3e}, repeat-window drift {:.3e}",
            s1.window_len, s1.top_boost, s2.drift
        ),
        s1.window_len > 0 && s2.drift == 0.0,
    );

    // --- Journal survives the CRC-sealed spill codec. ------------------
    let sealed = auditor.seal_journal();
    let roundtrip = toppriv_service::unseal_audit_journal(&sealed);
    inv.check(
        "journal_spill_roundtrips",
        format!(
            "{} event(s) sealed into {} bytes",
            auditor.log().events().len(),
            sealed.len()
        ),
        roundtrip.is_ok_and(|events| events == auditor.log().events()),
    );

    // --- Emit the bench trail. ------------------------------------------
    let mut snap = obsbench::service_bench_snapshot(
        "audit",
        &registry,
        med_on_qps,
        format!(
            "{TENANTS} tenants, {SHARDS} shards, {WORKERS} workers, scale {}; \
             auditor off {med_off_qps:.0} qps vs on {med_on_qps:.0} qps \
             ({overhead_pct:+.1}% overhead); 1 rigged breach injected",
            ctx.scale.name
        ),
    );
    snap.invariants = inv;
    obsbench::emit_bench(&snap);
    for c in snap.invariants.checks.iter().filter(|c| !c.pass) {
        eprintln!("  audit invariant FAILED {}: {}", c.name, c.detail);
    }

    manager_off.tier().clear_query_logs();
    manager_on.tier().clear_query_logs();

    let mut table = ResultTable::new(
        "ext8_audit_plane",
        "Online privacy-audit plane: auditor-off vs auditor-on drain throughput \
         (median of interleaved passes) and breach catch latency (one drain)",
        vec![
            "mode".into(),
            "median_qps".into(),
            "drained".into(),
            "overhead_pct".into(),
            "cycles_audited".into(),
            "breaches".into(),
            "warnings".into(),
        ],
    );
    table.push_row(vec![
        "auditor_off".into(),
        f3(med_off_qps),
        drained_off.to_string(),
        f3(0.0),
        "0".into(),
        "0".into(),
        "0".into(),
    ]);
    table.push_row(vec![
        "auditor_on".into(),
        f3(med_on_qps),
        drained_on.to_string(),
        f3(overhead_pct),
        auditor.cycles_audited().to_string(),
        auditor.log().breaches().to_string(),
        auditor.log().warnings().to_string(),
    ]);
    vec![table]
}
