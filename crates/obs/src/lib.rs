//! # toppriv-obs — hand-rolled observability for the TopPriv fleet
//!
//! The offline build environment rules out `tracing`, `prometheus`, and
//! `hdrhistogram`, so this crate provides the minimal production set by
//! hand, in the same spirit as the vendored serde/proptest stand-ins:
//!
//! - [`Histogram`] — log-linear HDR-style latency histograms: bounded
//!   memory, ~1% relative bucket error ([`RELATIVE_ERROR`]), lock-free
//!   recording, exact merges;
//! - [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s, and
//!   histograms with label support (`shard`, `session`, `stage`);
//!   handles are `Arc`s over atomics so hot paths never lock;
//! - [`Tracer`] / [`Span`] — request-lifecycle spans with ids and
//!   parent links, journaled into a fixed ring buffer;
//! - [`AuditLog`] / [`HealthReport`] — the bounded audit-event journal
//!   and aggregated verdict behind the service-layer privacy auditor;
//! - exposition — [`render_prometheus`], [`render_ndjson`], and the
//!   [`BenchSnapshot`] writer behind the repo's `BENCH_*.json` files.
//!
//! Process-wide instrumentation (the search engines, index build,
//! pacing) records into [`global()`]; service-level components keep
//! per-instance registries so experiments and tests stay isolated, and
//! can be pointed at the global one for unified exposition.
//!
//! ```
//! use toppriv_obs::{MetricsRegistry, render_prometheus};
//!
//! let reg = MetricsRegistry::new();
//! let lat = reg.histogram("submit_us", &[("shard", "0")]);
//! lat.record(120);
//! reg.counter("submits_total", &[("shard", "0")]).inc();
//! assert!(render_prometheus(&reg).contains("submits_total{shard=\"0\"} 1"));
//! ```

#![warn(missing_docs)]

mod audit;
mod expo;
mod hist;
mod registry;
mod span;

pub use audit::{AuditEvent, AuditLog, AuditSeverity, HealthReport};
pub use expo::{
    bench_dir, host_cores, imbalance, parse_ndjson_line, render_ndjson, render_prometheus,
    write_bench_snapshot, BenchSnapshot, InvariantBlock, InvariantCheck, StageStats,
};
pub use hist::{Histogram, HistogramSnapshot, NUM_BUCKETS, RELATIVE_ERROR, SUBBUCKETS};
pub use registry::{
    Counter, Gauge, HistogramHandle, Label, MetricSnapshot, MetricValue, MetricsRegistry,
};
pub use span::{Span, SpanEvent, Tracer, ROOT};

use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a mutex, recovering the inner value if a previous holder
/// panicked. Observability must degrade, never take the process down:
/// a poisoned metrics lock yields the last written state instead of a
/// cascading panic.
pub fn recover_lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Read-locks an `RwLock`, recovering from poisoning (see
/// [`recover_lock`]).
pub fn recover_read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Write-locks an `RwLock`, recovering from poisoning (see
/// [`recover_lock`]).
pub fn recover_write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

static GLOBAL_REGISTRY: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
static GLOBAL_TRACER: OnceLock<Arc<Tracer>> = OnceLock::new();

/// The process-global metrics registry. Engine-layer instrumentation
/// (scatter/gather latency, index shard sizes, pacing jitter) records
/// here; `toppriv-serve` and the bench snapshot writers read it.
pub fn global() -> &'static Arc<MetricsRegistry> {
    GLOBAL_REGISTRY.get_or_init(|| Arc::new(MetricsRegistry::new()))
}

/// The process-global tracer (journal capacity 4096 events).
pub fn tracer() -> &'static Arc<Tracer> {
    GLOBAL_TRACER.get_or_init(|| Arc::new(Tracer::new(4096)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        global().counter("lib_test_total", &[]).inc();
        assert!(global().counter_total("lib_test_total") >= 1);
    }

    #[test]
    fn recover_helpers_survive_poison() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*recover_lock(&m), 5);

        let l = Arc::new(RwLock::new(7u32));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert_eq!(*recover_read(&l), 7);
        *recover_write(&l) = 8;
        assert_eq!(*recover_read(&l), 8);
    }

    #[test]
    fn tracer_spans_record() {
        let t = tracer();
        let before = t.recorded();
        {
            let _s = t.span("lib_test");
        }
        assert!(t.recorded() > before);
    }
}
