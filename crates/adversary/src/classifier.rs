//! A learning adversary: a multinomial naive-Bayes topic classifier.
//!
//! Section IV-D analyzes attacks that reuse the LDA model. A stronger —
//! and in an enterprise entirely realistic — adversary trains a dedicated
//! *supervised* classifier on the corpus it hosts (it knows its own
//! document taxonomy) and classifies the query stream:
//!
//! - **intention recovery**: classify the bag of all terms the client
//!   submitted in a cycle and ask whether the predicted topic is the
//!   user's true interest;
//! - **genuine-query identification**: classify every query of a cycle
//!   separately and call the one the classifier is most confident about
//!   the genuine query.
//!
//! Against an unprotected query the classifier is a near-oracle (that is
//! the point of training it), so the attack isolates exactly what the
//! ghost queries buy.

use serde::{Deserialize, Serialize};
use toppriv_core::CycleResult;
use tsearch_text::TermId;

/// A multinomial naive-Bayes classifier over term ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NaiveBayes {
    num_classes: usize,
    vocab_size: usize,
    /// `ln Pr(c)`.
    log_prior: Vec<f64>,
    /// `ln Pr(w|c)`, class-major: `log_like[c * V + w]`.
    log_like: Vec<f64>,
}

impl NaiveBayes {
    /// Trains from labeled token sequences with Laplace smoothing
    /// `smoothing > 0`. Labels must be `< num_classes`.
    pub fn train(
        examples: &[(&[TermId], usize)],
        num_classes: usize,
        vocab_size: usize,
        smoothing: f64,
    ) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(smoothing > 0.0, "smoothing must be positive");
        let mut class_count = vec![0u64; num_classes];
        let mut word_count = vec![0u64; num_classes * vocab_size];
        let mut class_tokens = vec![0u64; num_classes];
        for (tokens, label) in examples {
            assert!(*label < num_classes, "label {label} out of range");
            class_count[*label] += 1;
            class_tokens[*label] += tokens.len() as u64;
            for &w in *tokens {
                word_count[*label * vocab_size + w as usize] += 1;
            }
        }
        let total = examples.len().max(1) as f64;
        let log_prior: Vec<f64> = class_count
            .iter()
            .map(|&n| ((n as f64 + smoothing) / (total + smoothing * num_classes as f64)).ln())
            .collect();
        let mut log_like = vec![0.0f64; num_classes * vocab_size];
        for c in 0..num_classes {
            let denom = class_tokens[c] as f64 + smoothing * vocab_size as f64;
            for w in 0..vocab_size {
                let n = word_count[c * vocab_size + w] as f64;
                log_like[c * vocab_size + w] = ((n + smoothing) / denom).ln();
            }
        }
        NaiveBayes {
            num_classes,
            vocab_size,
            log_prior,
            log_like,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Normalized posterior `Pr(c|tokens)` via log-sum-exp.
    pub fn posterior(&self, tokens: &[TermId]) -> Vec<f64> {
        let mut scores = self.log_prior.clone();
        for &w in tokens {
            debug_assert!((w as usize) < self.vocab_size, "token in vocabulary");
            for (c, s) in scores.iter_mut().enumerate() {
                *s += self.log_like[c * self.vocab_size + w as usize];
            }
        }
        let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for s in scores.iter_mut() {
            *s = (*s - max).exp();
            sum += *s;
        }
        scores.iter_mut().for_each(|s| *s /= sum);
        scores
    }

    /// The maximum-posterior class and its probability.
    pub fn classify(&self, tokens: &[TermId]) -> (usize, f64) {
        let post = self.posterior(tokens);
        post.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite posterior"))
            .map(|(c, &p)| (c, p))
            .expect("at least one class")
    }
}

/// Outcome of the classifier attack over a batch of cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassifierAttackReport {
    /// Accuracy of the classifier on the *unprotected* genuine queries —
    /// the oracle reference showing the classifier itself works.
    pub unprotected_recovery: f64,
    /// Fraction of cycles whose pooled term bag classifies to the user's
    /// true topic.
    pub cycle_recovery: f64,
    /// Chance rate of topic recovery (1 / number of classes).
    pub topic_chance: f64,
    /// Fraction of cycles where the maximum-confidence query is genuine.
    pub genuine_identification: f64,
    /// Chance rate of genuine identification (mean 1/υ).
    pub genuine_chance: f64,
    /// Cycles evaluated.
    pub cycles: usize,
}

/// Runs the classifier attack. `true_topics[i]` is the ground-truth topic
/// of cycle `i`'s user query (the workload's first target topic).
pub fn run_classifier_attack(
    classifier: &NaiveBayes,
    cycles: &[CycleResult],
    true_topics: &[usize],
) -> ClassifierAttackReport {
    assert_eq!(cycles.len(), true_topics.len(), "one label per cycle");
    let mut unprotected = 0usize;
    let mut pooled = 0usize;
    let mut ident = 0usize;
    let mut chance = 0.0f64;
    for (cycle, &truth) in cycles.iter().zip(true_topics) {
        let genuine = &cycle.genuine().tokens;
        if classifier.classify(genuine).0 == truth {
            unprotected += 1;
        }
        let bag: Vec<TermId> = cycle
            .cycle
            .iter()
            .flat_map(|q| q.tokens.iter().copied())
            .collect();
        if classifier.classify(&bag).0 == truth {
            pooled += 1;
        }
        let best = cycle
            .cycle
            .iter()
            .enumerate()
            .map(|(i, q)| (i, classifier.classify(&q.tokens).1))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite confidence"))
            .map(|(i, _)| i)
            .expect("non-empty cycle");
        if best == cycle.genuine_index {
            ident += 1;
        }
        chance += 1.0 / cycle.cycle_len() as f64;
    }
    let n = cycles.len().max(1) as f64;
    ClassifierAttackReport {
        unprotected_recovery: unprotected as f64 / n,
        cycle_recovery: pooled as f64 / n,
        topic_chance: 1.0 / classifier.num_classes() as f64,
        genuine_identification: ident as f64 / n,
        genuine_chance: chance / n,
        cycles: cycles.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toppriv_core::{CycleQuery, PrivacyMetrics};

    /// Two word blocks: class 0 uses words 0–4, class 1 uses 5–9.
    fn toy_nb() -> NaiveBayes {
        let docs: Vec<(Vec<TermId>, usize)> = (0..40)
            .map(|d| {
                let class = d % 2;
                let tokens: Vec<TermId> = (0..30).map(|i| (class as u32 * 5) + i % 5).collect();
                (tokens, class)
            })
            .collect();
        let refs: Vec<(&[TermId], usize)> = docs.iter().map(|(t, c)| (t.as_slice(), *c)).collect();
        NaiveBayes::train(&refs, 2, 10, 1.0)
    }

    #[test]
    fn learns_block_structure() {
        let nb = toy_nb();
        let (c0, conf0) = nb.classify(&[0, 1, 2]);
        let (c1, conf1) = nb.classify(&[5, 6, 7]);
        assert_eq!(c0, 0);
        assert_eq!(c1, 1);
        assert!(conf0 > 0.9 && conf1 > 0.9);
    }

    #[test]
    fn posterior_is_a_distribution() {
        let nb = toy_nb();
        for tokens in [&[0u32, 5][..], &[9], &[]] {
            let post = nb.posterior(tokens);
            assert_eq!(post.len(), 2);
            assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(post.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn empty_query_falls_back_to_prior() {
        let nb = toy_nb();
        let post = nb.posterior(&[]);
        assert!((post[0] - 0.5).abs() < 1e-9, "balanced training set");
    }

    #[test]
    fn smoothing_handles_unseen_mixtures() {
        let nb = toy_nb();
        // A mixed query does not crash and yields a proper argmax.
        let (c, conf) = nb.classify(&[0, 5, 1, 6]);
        assert!(c < 2);
        assert!(conf >= 0.5);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn rejects_out_of_range_labels() {
        NaiveBayes::train(&[(&[0u32][..], 5)], 2, 10, 1.0);
    }

    fn mk_cycle(queries: Vec<Vec<TermId>>, genuine_index: usize) -> CycleResult {
        let cycle: Vec<CycleQuery> = queries
            .into_iter()
            .enumerate()
            .map(|(i, tokens)| CycleQuery {
                tokens,
                is_genuine: i == genuine_index,
                masking_topic: (i != genuine_index).then_some(0),
            })
            .collect();
        CycleResult {
            cycle,
            genuine_index,
            intention: vec![0],
            solo_boosts: vec![],
            cycle_boosts: vec![],
            masking_topics: vec![],
            ineffective_topics: vec![],
            satisfied: true,
            metrics: PrivacyMetrics::default(),
        }
    }

    #[test]
    fn attack_recovers_unprotected_topic() {
        let nb = toy_nb();
        // Cycle = genuine alone: pooled bag == genuine query.
        let cycles = vec![mk_cycle(vec![vec![0, 1, 2, 3]], 0)];
        let report = run_classifier_attack(&nb, &cycles, &[0]);
        assert_eq!(report.unprotected_recovery, 1.0);
        assert_eq!(report.cycle_recovery, 1.0);
    }

    #[test]
    fn decoys_from_other_class_flip_pooled_classification() {
        let nb = toy_nb();
        // Genuine on class 0, two heavier ghosts on class 1.
        let cycles = vec![mk_cycle(
            vec![
                vec![0, 1, 2],
                vec![5, 6, 7, 8, 9, 5, 6, 7],
                vec![9, 8, 7, 6, 5, 9, 8, 7],
            ],
            0,
        )];
        let report = run_classifier_attack(&nb, &cycles, &[0]);
        assert_eq!(report.unprotected_recovery, 1.0, "oracle still works solo");
        assert_eq!(report.cycle_recovery, 0.0, "pooled bag points elsewhere");
    }

    #[test]
    #[should_panic(expected = "one label per cycle")]
    fn attack_requires_aligned_labels() {
        let nb = toy_nb();
        run_classifier_attack(&nb, &[], &[1]);
    }
}
