//! Driver wrapper for the fleet scenario matrix (`reproduce --
//! scenarios`): runs every scenario in [`crate::scenarios::SCENARIOS`]
//! order, summarizes the verdicts as a result table, and **aborts the
//! process** if any invariant failed — the nightly CI job relies on the
//! non-zero exit, so a red scenario can never look like a green run.

use crate::context::ExperimentContext;
use crate::scenarios;
use crate::table::ResultTable;

/// Runs the scenario matrix and panics if any invariant failed.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let reports = scenarios::run_all(ctx);
    let mut table = ResultTable::new(
        "scenarios",
        "Fleet scenario matrix: invariant verdicts and sustained throughput",
        vec![
            "scenario".into(),
            "pass".into(),
            "checks".into(),
            "failed".into(),
            "qps".into(),
            "cache_hit_rate".into(),
            "shard_imbalance".into(),
        ],
    );
    for r in &reports {
        let snap = &r.snapshot;
        let failed: Vec<&str> = snap
            .invariants
            .checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| c.name.as_str())
            .collect();
        table.push_row(vec![
            r.name().to_string(),
            r.pass().to_string(),
            snap.invariants.checks.len().to_string(),
            if failed.is_empty() {
                "-".to_string()
            } else {
                failed.join(" ")
            },
            format!("{:.0}", snap.qps),
            format!("{:.3}", snap.cache_hit_rate),
            format!("{:.3}", snap.shard_imbalance),
        ]);
    }
    let failing: Vec<String> = reports
        .iter()
        .filter(|r| !r.pass())
        .map(|r| r.name().to_string())
        .collect();
    assert!(
        failing.is_empty(),
        "scenario invariant failures: {failing:?} (see BENCH_scenario_<name>.json)"
    );
    vec![table]
}
