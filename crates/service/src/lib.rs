//! # toppriv-service
//!
//! The multi-tenant private-search service layer: runs many TopPriv
//! client sessions concurrently against **one** shared `LdaModel` and
//! `SearchEngine`.
//!
//! The paper's TopPriv (Figure 1) is a single-user client module; the
//! production question it leaves open is the server-side cost of decoy
//! traffic at fleet scale — each protected query multiplies engine load
//! by the cycle length υ (the seed's `load` experiment measures ~7× at
//! the paper's defaults). This crate amortizes that cost three ways:
//!
//! - **shared models** ([`SessionManager`]): the ~140 MB LDA model and
//!   the search tier exist once, behind `Arc`s; per-tenant state is just
//!   a `GhostGenerator`, a `SessionTracker`, and a `PacingScheduler`;
//! - **a term-sharded search tier** ([`SearchTier`]): the same service
//!   stack runs over one `SearchEngine` or a `ShardedEngine` whose
//!   postings are split across N term-hash shards, each with its own
//!   bounded query log — no engine-wide mutex on the submission path;
//! - **a global cycle scheduler** ([`CycleScheduler`]): per-session
//!   pacing schedules are merged into one time-ordered queue, then
//!   partitioned into per-shard queues drained independently by a
//!   `std::thread` worker pool;
//! - **a sharded LRU result cache** ([`ResultCache`]): ghost generation
//!   is deterministic per query content (under the fleet's secret seed),
//!   so duplicate decoys across tenants are served from cache instead of
//!   the engine.
//!
//! [`ServiceMetrics`] tracks cache hit rate, global and per-shard queue
//! depth, p50/p99 submit latency, and per-session privacy metrics
//! (exposure, mask level, satisfied rate, trace exposure). Since PR 6
//! all of it lives in a `toppriv_obs::MetricsRegistry` — lock-free
//! counters/gauges plus log-linear HDR histograms — and the request
//! lifecycle is traced (`plan_cycle`/`search` spans, scheduler `drain`
//! with per-shard children). The `toppriv-serve` binary exposes
//! everything over newline-delimited JSON (stdin or TCP; `MetricsNdjson`
//! and `MetricsProm` dump the registry) and ships a synthetic
//! multi-tenant demo (`--demo`, sharded with `--shards N`).
//!
//! ## Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use toppriv_service::SessionManager;
//! # let engine: Arc<tsearch_search::SearchEngine> = unimplemented!();
//! # let model: Arc<tsearch_lda::LdaModel> = unimplemented!();
//!
//! let manager = SessionManager::new(engine, model).with_cache(4096);
//! manager.open_session("alice").unwrap();
//! let outcome = manager.search("alice", "apache helicopter", 10).unwrap();
//! assert!(outcome.report.metrics.exposure <= outcome.report.metrics.mask_level);
//! ```

#![warn(missing_docs)]

pub mod auditor;
pub mod cache;
pub mod fault;
pub mod metrics;
pub mod persist;
pub mod planner;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod session;
pub mod tier;

pub use auditor::{AuditConfig, PrivacyAuditor};
pub use cache::{CacheKey, ResultCache};
pub use fault::{FaultKind, FaultPlane, FaultSpec, SubmissionPredicate, ALL_FAULT_KINDS};
pub use metrics::{GlobalMetrics, MetricsSnapshot, ServiceMetrics, SessionMetrics};
pub use persist::{
    seal_audit_journal, seal_query_log, seal_session_state, unseal_audit_journal, unseal_query_log,
    unseal_session_state, PersistError, SessionState,
};
pub use planner::{GhostPlanner, PlannerConfig};
pub use protocol::{Op, Request, Response};
pub use scheduler::{
    CycleScheduler, DrainError, DrainPolicy, PlannedQuery, ResilientReport, ShardFailure,
    SubmissionTag, SubmitOutcome,
};
pub use server::{handle, serve_lines, serve_tcp};
pub use session::{
    FormulatedCycle, RolledBackCycle, SearchOutcome, ServiceError, SessionConfig, SessionManager,
};
pub use tier::SearchTier;

// Re-export the observability substrate so service consumers can reach
// the registry/exposition types without a separate dependency.
pub use toppriv_obs as obs;
