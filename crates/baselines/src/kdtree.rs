//! A kd-tree over factor-space points.
//!
//! Reference \[10\] builds its canonical queries with "a kd-tree nearest
//! neighbor retrieval" over the LSI factor space; this is that structure.

use serde::{Deserialize, Serialize};

/// A static kd-tree over fixed-dimension points, built once from a batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KdTree {
    dim: usize,
    /// Flattened points in original insertion order.
    points: Vec<f64>,
    /// Tree nodes (indices into `points`), stored as a binary heap layout
    /// is avoided; explicit node records instead.
    nodes: Vec<Node>,
    root: Option<usize>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    /// Index of the point this node holds.
    point: usize,
    /// Split axis.
    axis: usize,
    left: Option<usize>,
    right: Option<usize>,
}

impl KdTree {
    /// Builds a tree over `points` (each of dimension `dim`).
    pub fn build(points: &[Vec<f64>], dim: usize) -> Self {
        assert!(points.iter().all(|p| p.len() == dim), "dimension mismatch");
        let flat: Vec<f64> = points.iter().flat_map(|p| p.iter().copied()).collect();
        let mut tree = KdTree {
            dim,
            points: flat,
            nodes: Vec::with_capacity(points.len()),
            root: None,
        };
        let mut indices: Vec<usize> = (0..points.len()).collect();
        tree.root = tree.build_recursive(&mut indices, 0);
        tree
    }

    fn coord(&self, point: usize, axis: usize) -> f64 {
        self.points[point * self.dim + axis]
    }

    fn point(&self, point: usize) -> &[f64] {
        &self.points[point * self.dim..(point + 1) * self.dim]
    }

    fn build_recursive(&mut self, indices: &mut [usize], depth: usize) -> Option<usize> {
        if indices.is_empty() {
            return None;
        }
        let axis = depth % self.dim.max(1);
        indices.sort_by(|&a, &b| {
            self.coord(a, axis)
                .partial_cmp(&self.coord(b, axis))
                .expect("finite coordinates")
        });
        let mid = indices.len() / 2;
        let point = indices[mid];
        let node_index = self.nodes.len();
        self.nodes.push(Node {
            point,
            axis,
            left: None,
            right: None,
        });
        // Split into owned halves to satisfy the borrow checker.
        let mut left: Vec<usize> = indices[..mid].to_vec();
        let mut right: Vec<usize> = indices[mid + 1..].to_vec();
        let left_child = self.build_recursive(&mut left, depth + 1);
        let right_child = self.build_recursive(&mut right, depth + 1);
        self.nodes[node_index].left = left_child;
        self.nodes[node_index].right = right_child;
        Some(node_index)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nearest neighbor of `query` by Euclidean distance, excluding point
    /// indices for which `exclude` returns true. Returns `(index, dist)`.
    pub fn nearest_filtered(
        &self,
        query: &[f64],
        exclude: &dyn Fn(usize) -> bool,
    ) -> Option<(usize, f64)> {
        assert_eq!(query.len(), self.dim);
        let mut best: Option<(usize, f64)> = None;
        if let Some(root) = self.root {
            self.search(root, query, exclude, &mut best);
        }
        best.map(|(i, d2)| (i, d2.sqrt()))
    }

    /// Nearest neighbor of `query` (no exclusion).
    pub fn nearest(&self, query: &[f64]) -> Option<(usize, f64)> {
        self.nearest_filtered(query, &|_| false)
    }

    /// The `k` nearest neighbors, closest first (simple repeated-search
    /// implementation; fine for the small canonical-query sets of \[10\]).
    pub fn k_nearest(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut found: Vec<(usize, f64)> = Vec::with_capacity(k);
        for _ in 0..k {
            let taken: Vec<usize> = found.iter().map(|&(i, _)| i).collect();
            match self.nearest_filtered(query, &|i| taken.contains(&i)) {
                Some(hit) => found.push(hit),
                None => break,
            }
        }
        found
    }

    fn search(
        &self,
        node_index: usize,
        query: &[f64],
        exclude: &dyn Fn(usize) -> bool,
        best: &mut Option<(usize, f64)>,
    ) {
        let node = &self.nodes[node_index];
        let point = self.point(node.point);
        if !exclude(node.point) {
            let d2: f64 = point
                .iter()
                .zip(query)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if best.map(|(_, bd)| d2 < bd).unwrap_or(true) {
                *best = Some((node.point, d2));
            }
        }
        let diff = query[node.axis] - self.coord(node.point, node.axis);
        let (near, far) = if diff < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.search(n, query, exclude, best);
        }
        // Visit the far side only if the splitting plane is closer than
        // the current best.
        let must_check_far = best.map(|(_, bd)| diff * diff < bd).unwrap_or(true);
        if must_check_far {
            if let Some(f) = far {
                self.search(f, query, exclude, best);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_nearest(points: &[Vec<f64>], query: &[f64]) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for (i, p) in points.iter().enumerate() {
            let d2: f64 = p.iter().zip(query).map(|(a, b)| (a - b) * (a - b)).sum();
            if d2 < best.1 {
                best = (i, d2);
            }
        }
        (best.0, best.1.sqrt())
    }

    #[test]
    fn matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(11);
        for dim in [2usize, 5, 10] {
            let points: Vec<Vec<f64>> = (0..200)
                .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
                .collect();
            let tree = KdTree::build(&points, dim);
            for _ in 0..50 {
                let q: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>()).collect();
                let (ti, td) = tree.nearest(&q).unwrap();
                let (bi, bd) = brute_nearest(&points, &q);
                assert_eq!(ti, bi, "dim {dim}");
                assert!((td - bd).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn k_nearest_sorted_and_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let points: Vec<Vec<f64>> = (0..100)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let tree = KdTree::build(&points, 2);
        let q = vec![0.5, 0.5];
        let knn = tree.k_nearest(&q, 10);
        assert_eq!(knn.len(), 10);
        for pair in knn.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        let set: std::collections::HashSet<usize> = knn.iter().map(|&(i, _)| i).collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn exclusion_filter() {
        let points = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let tree = KdTree::build(&points, 2);
        let (i, _) = tree.nearest(&[0.1, 0.1]).unwrap();
        assert_eq!(i, 0);
        let (i, _) = tree.nearest_filtered(&[0.1, 0.1], &|p| p == 0).unwrap();
        assert_eq!(i, 1);
        assert!(tree.nearest_filtered(&[0.1, 0.1], &|_| true).is_none());
    }

    #[test]
    fn empty_tree() {
        let tree = KdTree::build(&[], 3);
        assert!(tree.is_empty());
        assert!(tree.nearest(&[0.0, 0.0, 0.0]).is_none());
        assert!(tree.k_nearest(&[0.0, 0.0, 0.0], 5).is_empty());
    }
}
