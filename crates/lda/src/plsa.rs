//! Probabilistic Latent Semantic Analysis (pLSA) via EM.
//!
//! Appendix A of the paper discusses pLSA as an alternative topic model
//! and rejects it because "the generative semantics of pLSA is not well
//! defined … it is not clear how to assign probability to a query
//! encountered at runtime that was not part of the training corpus". This
//! module implements pLSA so that limitation can be demonstrated rather
//! than asserted: training recovers `Pr(w|t)` / `Pr(t|d)` tables of the
//! same shape as LDA's, but there is no principled fold-in posterior —
//! only the heuristic re-fitting also provided here for comparison.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tsearch_text::TermId;

/// pLSA training parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlsaConfig {
    /// Number of topics K.
    pub num_topics: usize,
    /// EM iterations.
    pub iterations: usize,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl PlsaConfig {
    /// Default configuration for K topics.
    pub fn with_topics(num_topics: usize) -> Self {
        Self {
            num_topics,
            iterations: 50,
            seed: 0x915A,
        }
    }
}

/// A trained pLSA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlsaModel {
    num_topics: usize,
    vocab_size: usize,
    /// `Pr(w|t)`, word-major (`phi[w * K + t]`).
    phi_wk: Vec<f64>,
    /// `Pr(t|d)`, doc-major.
    theta_dk: Vec<f64>,
    /// Final training log-likelihood.
    log_likelihood: f64,
}

/// Per-document distinct-term counts, the sufficient statistics of pLSA.
fn term_counts(doc: &[TermId]) -> Vec<(u32, f64)> {
    let mut sorted: Vec<u32> = doc.to_vec();
    sorted.sort_unstable();
    let mut out = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let w = sorted[i];
        let mut j = i;
        while j < sorted.len() && sorted[j] == w {
            j += 1;
        }
        out.push((w, (j - i) as f64));
        i = j;
    }
    out
}

impl PlsaModel {
    /// Trains pLSA with EM on token documents.
    pub fn train(docs: &[&[TermId]], vocab_size: usize, config: PlsaConfig) -> Self {
        let k = config.num_topics;
        assert!(k > 0 && vocab_size > 0);
        let counts: Vec<Vec<(u32, f64)>> = docs.iter().map(|d| term_counts(d)).collect();
        let num_docs = docs.len();
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Random-normalized initialization.
        let mut phi = vec![0.0f64; vocab_size * k];
        for t in 0..k {
            let mut sum = 0.0;
            for w in 0..vocab_size {
                let v = 0.5 + rng.gen::<f64>();
                phi[w * k + t] = v;
                sum += v;
            }
            for w in 0..vocab_size {
                phi[w * k + t] /= sum;
            }
        }
        let mut theta = vec![0.0f64; num_docs * k];
        for d in 0..num_docs {
            let mut sum = 0.0;
            for t in 0..k {
                let v = 0.5 + rng.gen::<f64>();
                theta[d * k + t] = v;
                sum += v;
            }
            for t in 0..k {
                theta[d * k + t] /= sum;
            }
        }

        let mut log_likelihood = f64::NEG_INFINITY;
        let mut phi_acc = vec![0.0f64; vocab_size * k];
        let mut post = vec![0.0f64; k];
        for _ in 0..config.iterations {
            phi_acc.iter_mut().for_each(|x| *x = 0.0);
            let mut ll = 0.0;
            for (d, doc_counts) in counts.iter().enumerate() {
                let theta_row = &theta[d * k..(d + 1) * k];
                let mut theta_acc = vec![0.0f64; k];
                for &(w, n) in doc_counts {
                    // E-step: Pr(t | d, w) ∝ Pr(w|t) Pr(t|d).
                    let phi_row = &phi[w as usize * k..(w as usize + 1) * k];
                    let mut total = 0.0;
                    for t in 0..k {
                        post[t] = phi_row[t] * theta_row[t];
                        total += post[t];
                    }
                    if total <= 0.0 {
                        continue;
                    }
                    ll += n * total.ln();
                    // M-step accumulation.
                    for t in 0..k {
                        let r = n * post[t] / total;
                        phi_acc[w as usize * k + t] += r;
                        theta_acc[t] += r;
                    }
                }
                // M-step for theta of this doc.
                let doc_total: f64 = theta_acc.iter().sum();
                if doc_total > 0.0 {
                    for t in 0..k {
                        theta[d * k + t] = theta_acc[t] / doc_total;
                    }
                }
            }
            // M-step for phi.
            for t in 0..k {
                let mut sum = 0.0;
                for w in 0..vocab_size {
                    sum += phi_acc[w * k + t];
                }
                if sum > 0.0 {
                    for w in 0..vocab_size {
                        phi[w * k + t] = phi_acc[w * k + t] / sum;
                    }
                }
            }
            log_likelihood = ll;
        }
        PlsaModel {
            num_topics: k,
            vocab_size,
            phi_wk: phi,
            theta_dk: theta,
            log_likelihood,
        }
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Final training log-likelihood.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// `Pr(w|t)`.
    pub fn phi(&self, topic: usize, word: TermId) -> f64 {
        self.phi_wk[word as usize * self.num_topics + topic]
    }

    /// `Pr(t|d)` for a training document.
    pub fn theta(&self, doc: usize, topic: usize) -> f64 {
        self.theta_dk[doc * self.num_topics + topic]
    }

    /// Top-n words of a topic.
    pub fn top_words(&self, topic: usize, n: usize) -> Vec<(TermId, f64)> {
        let mut pairs: Vec<(TermId, f64)> = (0..self.vocab_size)
            .map(|w| (w as TermId, self.phi_wk[w * self.num_topics + topic]))
            .collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        pairs.truncate(n);
        pairs
    }

    /// The *heuristic* fold-in the paper warns about: re-run EM on the
    /// query alone with `Pr(w|t)` frozen. Unlike LDA's collapsed-Gibbs
    /// fold-in, this has no generative justification — the query was not
    /// part of the training corpus and pLSA assigns it no probability.
    /// Provided so the Appendix A comparison can run both models through
    /// the same evaluation.
    pub fn heuristic_fold_in(&self, tokens: &[TermId], iterations: usize) -> Vec<f64> {
        let k = self.num_topics;
        if tokens.is_empty() {
            return vec![1.0 / k as f64; k];
        }
        let counts = term_counts(tokens);
        let mut theta = vec![1.0 / k as f64; k];
        let mut post = vec![0.0f64; k];
        for _ in 0..iterations.max(1) {
            let mut acc = vec![0.0f64; k];
            for &(w, n) in &counts {
                let phi_row = &self.phi_wk[w as usize * k..(w as usize + 1) * k];
                let mut total = 0.0;
                for t in 0..k {
                    post[t] = phi_row[t] * theta[t];
                    total += post[t];
                }
                if total <= 0.0 {
                    continue;
                }
                for t in 0..k {
                    acc[t] += n * post[t] / total;
                }
            }
            let sum: f64 = acc.iter().sum();
            if sum > 0.0 {
                for t in 0..k {
                    theta[t] = acc[t] / sum;
                }
            }
        }
        theta
    }

    /// Validates that phi columns and theta rows are distributions.
    pub fn validate(&self) -> Result<(), String> {
        for t in 0..self.num_topics {
            let sum: f64 = (0..self.vocab_size)
                .map(|w| self.phi_wk[w * self.num_topics + t])
                .sum();
            if (sum - 1.0).abs() > 1e-6 {
                return Err(format!("pLSA phi for topic {t} sums to {sum}"));
            }
        }
        let num_docs = self.theta_dk.len() / self.num_topics;
        for d in 0..num_docs {
            let sum: f64 = self.theta_dk[d * self.num_topics..(d + 1) * self.num_topics]
                .iter()
                .sum();
            if (sum - 1.0).abs() > 1e-6 {
                return Err(format!("pLSA theta for doc {d} sums to {sum}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_docs() -> Vec<Vec<TermId>> {
        let mut docs = Vec::new();
        for d in 0..40 {
            let base: u32 = if d % 2 == 0 { 0 } else { 5 };
            docs.push((0..30).map(|i| base + (i % 5) as u32).collect::<Vec<_>>());
        }
        docs
    }

    fn train(k: usize) -> PlsaModel {
        let docs = block_docs();
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        PlsaModel::train(&refs, 10, PlsaConfig::with_topics(k))
    }

    #[test]
    fn model_is_valid() {
        let model = train(2);
        model.validate().unwrap();
        assert_eq!(model.num_topics(), 2);
        assert!(model.log_likelihood().is_finite());
    }

    #[test]
    fn recovers_separated_topics() {
        let model = train(2);
        let t0_low = model.top_words(0, 5).iter().all(|&(w, _)| w < 5);
        let t1_low = model.top_words(1, 5).iter().all(|&(w, _)| w < 5);
        assert_ne!(t0_low, t1_low, "pLSA should split the two blocks");
    }

    #[test]
    fn likelihood_improves_with_iterations() {
        let docs = block_docs();
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        let short = PlsaModel::train(
            &refs,
            10,
            PlsaConfig {
                iterations: 2,
                ..PlsaConfig::with_topics(2)
            },
        );
        let long = PlsaModel::train(
            &refs,
            10,
            PlsaConfig {
                iterations: 40,
                ..PlsaConfig::with_topics(2)
            },
        );
        assert!(long.log_likelihood() >= short.log_likelihood());
    }

    #[test]
    fn fold_in_is_a_distribution_and_peaks_correctly() {
        let model = train(2);
        let post = model.heuristic_fold_in(&[0, 1, 2], 20);
        let sum: f64 = post.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let low_topic = if model.phi(0, 0) > model.phi(1, 0) {
            0
        } else {
            1
        };
        assert!(post[low_topic] > 0.5, "{post:?}");
        // Empty query: uniform.
        assert_eq!(model.heuristic_fold_in(&[], 5), vec![0.5, 0.5]);
    }

    #[test]
    fn deterministic() {
        let a = train(2);
        let b = train(2);
        assert_eq!(a.phi(0, 0), b.phi(0, 0));
    }
}
