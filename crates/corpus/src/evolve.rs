//! Corpus evolution: new topics and documents arriving after deployment.
//!
//! An enterprise corpus is not static — projects start, products launch,
//! vocabulary grows. TopPriv's client model is trained once ("we train an
//! LDA model once and retain it for subsequent query processing",
//! Section IV-B), so topic drift silently erodes protection: a query on a
//! topic the stale model has never seen infers to *no* intention, gets no
//! ghosts, and is fully exposed to an adversary whose model is current.
//!
//! [`SyntheticCorpus::evolve`] grows a generated corpus with fresh topics
//! (new term blocks appended after the existing vocabulary, sharing the
//! old polysemous pool) and new documents biased towards the new topics.
//! Experiment `staleness` quantifies the resulting exposure and the
//! retrain/mitigation trade-off.

use crate::dist::{sample_dirichlet, sample_log_normal, Categorical};
use crate::generator::SyntheticCorpus;
use crate::spec::{GeneratedDoc, TopicGroundTruth};
use crate::words::generate_words;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsearch_text::TermId;

/// How the corpus grows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvolutionConfig {
    /// Ground-truth topics to add.
    pub new_topics: usize,
    /// Documents to add.
    pub new_docs: usize,
    /// Probability that a new document draws its topics from the *new*
    /// topic set (otherwise from the old set) — topical drift strength.
    pub new_topic_share: f64,
    /// Seed for the evolution (independent of the original corpus seed).
    pub seed: u64,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig {
            new_topics: 8,
            new_docs: 800,
            new_topic_share: 0.7,
            seed: 0xeb01_5e5d,
        }
    }
}

impl SyntheticCorpus {
    /// Returns an evolved copy: the original documents and topics are
    /// retained verbatim (ids unchanged); `new_topics` fresh topics get
    /// term blocks appended after the current vocabulary; `new_docs`
    /// documents mix old and new topics per `new_topic_share`.
    ///
    /// The embedded `config` keeps the original generation parameters,
    /// with `num_docs`/`num_topics` updated; `config.vocab_size()` no
    /// longer describes the grown vocabulary — use `vocab.len()`.
    pub fn evolve(&self, evolution: EvolutionConfig) -> SyntheticCorpus {
        assert!(
            (0.0..=1.0).contains(&evolution.new_topic_share),
            "share in [0,1]"
        );
        assert!(evolution.new_topics > 0, "evolution must add topics");
        let config = &self.config;
        let mut rng = StdRng::seed_from_u64(evolution.seed);
        let mut corpus = self.clone();

        // --- Vocabulary growth: fresh blocks after the current vocab ----
        let old_vocab = corpus.vocab.len();
        let grown = old_vocab + evolution.new_topics * config.terms_per_topic;
        // generate_words is deterministic and prefix-stable, so the
        // suffix beyond the old size is collision-free new surface forms.
        let words = generate_words(grown, 4);
        for w in &words[old_vocab..] {
            corpus.vocab.intern(w);
        }
        debug_assert_eq!(corpus.vocab.len(), grown);

        // --- New topic distributions (same recipe as generation) --------
        let shared_start = (config.num_topics * config.terms_per_topic) as u32;
        let shared_range = shared_start..shared_start + config.shared_pool_terms as u32;
        let old_num_topics = corpus.topics.len();
        let mut new_samplers: Vec<(Vec<TermId>, Categorical)> = Vec::new();
        for i in 0..evolution.new_topics {
            let t = old_num_topics + i;
            let start = (old_vocab + i * config.terms_per_topic) as u32;
            let core: Vec<TermId> = (start..start + config.terms_per_topic as u32).collect();
            let mut order: Vec<usize> = (0..core.len()).collect();
            for j in (1..order.len()).rev() {
                let k = rng.gen_range(0..=j);
                order.swap(j, k);
            }
            let core_mass = 1.0 - config.shared_weight;
            let zipf_norm: f64 = (1..=core.len())
                .map(|r| (r as f64).powf(-config.zipf_exponent))
                .sum();
            let mut term_weights: Vec<(TermId, f64)> = order
                .iter()
                .enumerate()
                .map(|(rank, &slot)| {
                    let w = ((rank + 1) as f64).powf(-config.zipf_exponent) / zipf_norm * core_mass;
                    (core[slot], w)
                })
                .collect();
            // New topics share the *existing* polysemous pool, so old and
            // new topics overlap in vocabulary like real drifting corpora.
            if config.shared_pool_terms > 0 && config.shared_weight > 0.0 {
                let pick = (config.shared_pool_terms / 6).max(1);
                let mut pool: Vec<TermId> = shared_range.clone().collect();
                for j in (1..pool.len()).rev() {
                    let k = rng.gen_range(0..=j);
                    pool.swap(j, k);
                }
                let per = config.shared_weight / pick as f64;
                for &term in pool.iter().take(pick) {
                    term_weights.push((term, per));
                }
            }
            term_weights.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
            let weights: Vec<f64> = term_weights.iter().map(|&(_, w)| w).collect();
            let terms: Vec<TermId> = term_weights.iter().map(|&(w, _)| w).collect();
            new_samplers.push((terms, Categorical::new(&weights).expect("weights positive")));
            corpus.topics.push(TopicGroundTruth {
                id: t,
                name: format!("topic-{t:03}"),
                term_weights,
            });
        }

        // Old-topic samplers must be rebuilt from the retained ground
        // truth (the generator does not persist its samplers).
        let old_samplers: Vec<(Vec<TermId>, Categorical)> = self
            .topics
            .iter()
            .map(|topic| {
                let terms: Vec<TermId> = topic.term_weights.iter().map(|&(w, _)| w).collect();
                let weights: Vec<f64> = topic.term_weights.iter().map(|&(_, w)| w).collect();
                (terms, Categorical::new(&weights).expect("weights positive"))
            })
            .collect();

        // Background distribution, identical to generation.
        let background_start = shared_range.end;
        let background_terms: Vec<TermId> =
            (background_start..background_start + config.background_terms as u32).collect();
        let background_weights: Vec<f64> = (1..=background_terms.len())
            .map(|r| (r as f64).powf(-config.zipf_exponent))
            .collect();
        let background_sampler =
            Categorical::new(&background_weights).expect("background weights positive");

        // --- New documents ----------------------------------------------
        let topic_count_sampler =
            Categorical::new(&config.topic_count_weights).expect("topic count weights");
        let num_new_topics = evolution.new_topics;
        for n in 0..evolution.new_docs {
            let id = (self.docs.len() + n) as u32;
            let len = sample_log_normal(&mut rng, config.doc_len_mean.ln(), config.doc_len_sigma)
                .round() as usize;
            let len = len.clamp(config.min_doc_len, config.max_doc_len);
            let from_new = rng.gen::<f64>() < evolution.new_topic_share;
            let pool_size = if from_new {
                num_new_topics
            } else {
                old_num_topics
            };
            let k = (topic_count_sampler.sample(&mut rng) + 1).min(pool_size);
            let mut chosen: Vec<usize> = Vec::with_capacity(k);
            while chosen.len() < k {
                let t = rng.gen_range(0..pool_size);
                let t = if from_new { old_num_topics + t } else { t };
                if !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
            let weights = sample_dirichlet(&mut rng, config.mixture_alpha, k);
            let mut mixture: Vec<(usize, f64)> = chosen
                .iter()
                .copied()
                .zip(weights.iter().copied())
                .collect();
            mixture.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            let mixture_sampler = Categorical::new(&weights).expect("mixture weights");

            let mut tokens: Vec<TermId> = Vec::with_capacity(len);
            for _ in 0..len {
                if rng.gen::<f64>() < config.background_weight {
                    tokens.push(background_terms[background_sampler.sample(&mut rng)]);
                } else {
                    let z = chosen[mixture_sampler.sample(&mut rng)];
                    let (terms, sampler) = if z < old_num_topics {
                        &old_samplers[z]
                    } else {
                        &new_samplers[z - old_num_topics]
                    };
                    tokens.push(terms[sampler.sample(&mut rng)]);
                }
            }
            corpus.vocab.observe_document(&tokens);
            let mut text = String::with_capacity(len * 8);
            for (i, &tok) in tokens.iter().enumerate() {
                if i > 0 {
                    text.push(' ');
                }
                text.push_str(corpus.vocab.term(tok));
            }
            corpus.docs.push(GeneratedDoc {
                id,
                text,
                tokens,
                mixture,
            });
        }

        corpus.config.num_docs += evolution.new_docs;
        corpus.config.num_topics += evolution.new_topics;
        corpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CorpusConfig;

    fn evolved() -> (SyntheticCorpus, SyntheticCorpus, EvolutionConfig) {
        let base = SyntheticCorpus::generate(CorpusConfig::tiny());
        let evo = EvolutionConfig {
            new_topics: 3,
            new_docs: 40,
            new_topic_share: 0.8,
            seed: 7,
        };
        let grown = base.evolve(evo);
        (base, grown, evo)
    }

    #[test]
    fn originals_retained_verbatim() {
        let (base, grown, _) = evolved();
        assert_eq!(grown.docs.len(), base.docs.len() + 40);
        for (a, b) in base.docs.iter().zip(&grown.docs) {
            assert_eq!(a.tokens, b.tokens);
            assert_eq!(a.id, b.id);
        }
        for (a, b) in base.topics.iter().zip(&grown.topics) {
            assert_eq!(a.term_weights, b.term_weights);
        }
    }

    #[test]
    fn vocabulary_grows_by_new_blocks() {
        let (base, grown, _) = evolved();
        assert_eq!(
            grown.vocab.len(),
            base.vocab.len() + 3 * base.config.terms_per_topic
        );
        assert_eq!(grown.num_topics(), base.num_topics() + 3);
    }

    #[test]
    fn new_docs_use_new_terms() {
        let (base, grown, _) = evolved();
        let old_vocab = base.vocab.len() as u32;
        let new_docs = &grown.docs[base.docs.len()..];
        let uses_new = new_docs
            .iter()
            .filter(|d| d.tokens.iter().any(|&t| t >= old_vocab))
            .count();
        // 80% of new docs target new topics and should emit new-block terms.
        assert!(
            uses_new * 10 >= new_docs.len() * 5,
            "only {uses_new}/{} new docs touch new vocabulary",
            new_docs.len()
        );
        // Every token id stays within the grown vocabulary.
        for d in new_docs {
            assert!(d.tokens.iter().all(|&t| (t as usize) < grown.vocab.len()));
        }
    }

    #[test]
    fn old_docs_never_use_new_terms() {
        let (base, grown, _) = evolved();
        let old_vocab = base.vocab.len() as u32;
        for d in &grown.docs[..base.docs.len()] {
            assert!(d.tokens.iter().all(|&t| t < old_vocab));
        }
    }

    #[test]
    fn new_topic_mixtures_reference_new_ids() {
        let (base, grown, _) = evolved();
        let new_docs = &grown.docs[base.docs.len()..];
        let targets_new = new_docs
            .iter()
            .filter(|d| d.mixture.iter().any(|&(t, _)| t >= base.num_topics()))
            .count();
        assert!(targets_new > 0, "some docs must target the new topics");
        for d in new_docs {
            let total: f64 = d.mixture.iter().map(|&(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn evolution_is_deterministic() {
        let (_, a, evo) = evolved();
        let base = SyntheticCorpus::generate(CorpusConfig::tiny());
        let b = base.evolve(evo);
        for (da, db) in a.docs.iter().zip(&b.docs) {
            assert_eq!(da.tokens, db.tokens);
        }
    }

    #[test]
    #[should_panic(expected = "add topics")]
    fn rejects_empty_evolution() {
        let base = SyntheticCorpus::generate(CorpusConfig::tiny());
        base.evolve(EvolutionConfig {
            new_topics: 0,
            ..Default::default()
        });
    }
}
