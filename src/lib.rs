//! # toppriv
//!
//! Facade crate for the TopPriv reproduction and its production service
//! layer. Re-exports every subsystem under a stable module path and
//! provides [`build_demo_stack`] — the three-piece demo stack (corpus,
//! engine, shared LDA model) that the examples and the `toppriv-serve`
//! demo mode are built on.
//!
//! Layering (each layer only depends on the ones above it):
//!
//! - substrates: [`text`], [`index`], [`store`], [`corpus`];
//! - models and engines: [`lda`], [`search`];
//! - the paper's client module: [`core`] (with [`baselines`] and
//!   [`adversary`] for the evaluation);
//! - the multi-tenant service layer: [`service`].

pub use toppriv_adversary as adversary;
pub use toppriv_baselines as baselines;
pub use toppriv_core as core;
pub use toppriv_service as service;
pub use tsearch_corpus as corpus;
pub use tsearch_index as index;
pub use tsearch_lda as lda;
pub use tsearch_search as search;
pub use tsearch_store as store;
pub use tsearch_text as text;

pub use toppriv_core::{
    BeliefEngine, GhostConfig, GhostGenerator, PrivacyRequirement, TrustedClient,
};
pub use toppriv_service::{ResultCache, ServiceMetrics, SessionManager};
pub use tsearch_corpus::{CorpusConfig, SyntheticCorpus};
pub use tsearch_lda::LdaModel;
pub use tsearch_search::{ScoringModel, SearchEngine};

use std::sync::Arc;
use tsearch_lda::{LdaConfig, LdaTrainer};
use tsearch_text::Analyzer;

/// Builds the demo stack: a synthetic corpus, a search engine hosting it,
/// and an LDA model trained on it (wrapped in an [`Arc`] so any number of
/// belief engines, clients, and service sessions can share it).
pub fn build_demo_stack(
    config: CorpusConfig,
    topics: usize,
    iterations: usize,
) -> (SyntheticCorpus, SearchEngine, Arc<LdaModel>) {
    let corpus = SyntheticCorpus::generate(config);
    let docs = corpus.token_docs();
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let engine = SearchEngine::build(
        &docs,
        &texts,
        Analyzer::new(),
        corpus.vocab.clone(),
        ScoringModel::TfIdfCosine,
    );
    let model = Arc::new(LdaTrainer::train(
        &docs,
        corpus.vocab.len(),
        LdaConfig {
            iterations,
            ..LdaConfig::with_topics(topics)
        },
    ));
    (corpus, engine, model)
}
