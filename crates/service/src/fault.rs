//! The fleet fault plane: seeded, deterministic fault injection.
//!
//! PR 7/8 grew ad-hoc chaos hooks one at a time —
//! [`crate::CycleScheduler::with_worker_fault`] panicked drain workers,
//! [`crate::PrivacyAuditor::rig_cycle`] forged audit facts — each with
//! its own wiring and its own notion of "when". [`FaultPlane`] subsumes
//! them behind one API: a set of [`FaultSpec`]s, each naming a
//! [`FaultKind`], a firing rate, and optional scoping (one shard, a
//! fire budget, a stall duration, a legacy submission predicate). The
//! plane is threaded through the scheduler (worker panics, shard
//! stalls, cache poisoning), the auditor and persist layer (store
//! write/read errors on journal and session spills), and the session
//! manager (transient model-swap failure) — the same object, consulted
//! at every layer, so one seed reproduces one fleet-wide fault
//! schedule.
//!
//! ## Determinism
//!
//! Whether a fault fires is a pure function of `(plane seed, fault
//! kind, decision key, attempt)` — **never** of wall clock, thread
//! scheduling, or iteration order. The decision key for a submission is
//! a content hash (session, cycle id, simulated time, tokens), so the
//! same planned queue under the same seed yields the same faults no
//! matter how drain workers interleave; the attempt number is mixed in
//! so a retry of the same submission re-flips an **independent**
//! deterministic coin — which is what lets bounded retry heal
//! rate-based faults. (A [`FaultSpec::max_fires`] budget is the one
//! concession to global state: the budget counter is atomic, so under
//! concurrency *which* eligible decision consumes the last token can
//! vary, while the total never exceeds the budget.)
//!
//! ```
//! use toppriv_service::fault::{FaultKind, FaultPlane, FaultSpec};
//!
//! let plane = FaultPlane::new(7).with_spec(FaultSpec::rate(FaultKind::WorkerPanic, 0.5));
//! // Deterministic: the same key always decides the same way...
//! assert_eq!(
//!     plane.fires_key(FaultKind::WorkerPanic, 42, 0),
//!     plane.fires_key(FaultKind::WorkerPanic, 42, 0),
//! );
//! // ...and a retry (attempt 1) flips an independent coin.
//! let _ = plane.fires_key(FaultKind::WorkerPanic, 42, 1);
//! ```

use crate::scheduler::PlannedQuery;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The fault taxonomy (see ARCHITECTURE.md, "Fault model &
/// degradation"). Each kind is injected at a different layer but
/// decided by the same seeded plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A drain worker panics mid-resolve (scheduler layer).
    WorkerPanic,
    /// A drain worker stalls for [`FaultSpec::stall_ms`] before
    /// resolving — the hung-shard simulation the per-drain deadline
    /// watchdog exists for (scheduler layer).
    ShardStall,
    /// A store write (audit-journal or session spill) fails with an
    /// injected I/O error, ENOSPC-style (store layer).
    StoreWrite,
    /// A store read (spill load) fails with an injected I/O error
    /// (store layer).
    StoreRead,
    /// A cached result entry is corrupted before a submission resolves;
    /// the cache's validation path must detect and heal it (cache
    /// layer).
    CachePoison,
    /// A model swap transiently fails (session-manager layer); the
    /// caller retries the swap.
    ModelSwapFail,
}

impl FaultKind {
    /// Per-kind hash salt: the same key must decide independently for
    /// different kinds.
    fn salt(self) -> u64 {
        match self {
            FaultKind::WorkerPanic => 0x9E6C_0001,
            FaultKind::ShardStall => 0x9E6C_0002,
            FaultKind::StoreWrite => 0x9E6C_0003,
            FaultKind::StoreRead => 0x9E6C_0004,
            FaultKind::CachePoison => 0x9E6C_0005,
            FaultKind::ModelSwapFail => 0x9E6C_0006,
        }
    }

    /// Stable display name (used in panic payloads and reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::WorkerPanic => "worker_panic",
            FaultKind::ShardStall => "shard_stall",
            FaultKind::StoreWrite => "store_write",
            FaultKind::StoreRead => "store_read",
            FaultKind::CachePoison => "cache_poison",
            FaultKind::ModelSwapFail => "model_swap_fail",
        }
    }
}

/// Every kind, in taxonomy order (for reporting sweeps).
pub const ALL_FAULT_KINDS: [FaultKind; 6] = [
    FaultKind::WorkerPanic,
    FaultKind::ShardStall,
    FaultKind::StoreWrite,
    FaultKind::StoreRead,
    FaultKind::CachePoison,
    FaultKind::ModelSwapFail,
];

/// Legacy submission predicate (the old
/// [`crate::CycleScheduler::with_worker_fault`] hook): a submission it
/// selects fires the spec unconditionally, on every attempt.
pub type SubmissionPredicate = Arc<dyn Fn(&PlannedQuery) -> bool + Send + Sync>;

/// One scheduled fault: what fires, how often, and where.
#[derive(Clone)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Per-decision firing probability in `[0, 1]` (deterministic: the
    /// seeded key hash is compared against this rate).
    pub rate: f64,
    /// Restrict to one shard (`None` = any shard / not shard-scoped).
    pub shard: Option<usize>,
    /// Stop firing after this many fires (0 = unlimited).
    pub max_fires: u64,
    /// [`FaultKind::ShardStall`] duration in milliseconds.
    pub stall_ms: u64,
    /// Legacy predicate: when set, the spec fires exactly for the
    /// submissions it selects (rate/key hashing is bypassed).
    pub predicate: Option<SubmissionPredicate>,
}

impl std::fmt::Debug for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultSpec")
            .field("kind", &self.kind)
            .field("rate", &self.rate)
            .field("shard", &self.shard)
            .field("max_fires", &self.max_fires)
            .field("stall_ms", &self.stall_ms)
            .field("predicate", &self.predicate.is_some())
            .finish()
    }
}

impl FaultSpec {
    /// A rate-based spec: each decision fires with probability `rate`.
    pub fn rate(kind: FaultKind, rate: f64) -> Self {
        FaultSpec {
            kind,
            rate: rate.clamp(0.0, 1.0),
            shard: None,
            max_fires: 0,
            stall_ms: 0,
            predicate: None,
        }
    }

    /// A one-shot spec: fires on the first eligible decision, then
    /// never again.
    pub fn once(kind: FaultKind) -> Self {
        FaultSpec {
            max_fires: 1,
            ..Self::rate(kind, 1.0)
        }
    }

    /// A predicate spec (the legacy `with_worker_fault` semantics):
    /// fires exactly for the submissions `predicate` selects.
    pub fn predicate(kind: FaultKind, predicate: SubmissionPredicate) -> Self {
        FaultSpec {
            predicate: Some(predicate),
            ..Self::rate(kind, 1.0)
        }
    }

    /// Scopes the spec to one shard.
    pub fn on_shard(mut self, shard: usize) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Caps total fires.
    pub fn limit(mut self, max_fires: u64) -> Self {
        self.max_fires = max_fires;
        self
    }

    /// Sets the stall duration ([`FaultKind::ShardStall`] only).
    pub fn stalling_ms(mut self, ms: u64) -> Self {
        self.stall_ms = ms;
        self
    }
}

/// One spec plus its runtime counters.
struct SpecState {
    spec: FaultSpec,
    fired: AtomicU64,
    checked: AtomicU64,
}

/// The seeded fault plane (see the module docs).
pub struct FaultPlane {
    seed: u64,
    specs: Vec<SpecState>,
}

impl std::fmt::Debug for FaultPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlane")
            .field("seed", &self.seed)
            .field(
                "specs",
                &self.specs.iter().map(|s| &s.spec).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// splitmix64: the standard 64-bit finalizer-style mixer; full-avalanche
/// and dependency-free, which is all a deterministic fault coin needs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlane {
    /// An empty plane (no faults) under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlane {
            seed,
            specs: Vec::new(),
        }
    }

    /// Adds one fault spec.
    pub fn with_spec(mut self, spec: FaultSpec) -> Self {
        self.specs.push(SpecState {
            spec,
            fired: AtomicU64::new(0),
            checked: AtomicU64::new(0),
        });
        self
    }

    /// The plane's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The deterministic decision key of arbitrary content bytes — what
    /// store-layer injection keys on (a spill path, a container name),
    /// so the same path fails the same way on every run.
    pub fn key_of(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in bytes {
            h = splitmix64(h ^ u64::from(*b));
        }
        h
    }

    /// The deterministic decision key of one planned submission: a
    /// content hash over (session, cycle id, simulated time bits,
    /// tokens). Thread interleaving cannot change it.
    pub fn submission_key(plan: &PlannedQuery) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in plan.session.as_bytes() {
            h = splitmix64(h ^ u64::from(*b));
        }
        h = splitmix64(h ^ plan.scheduled.cycle_id as u64);
        h = splitmix64(h ^ plan.scheduled.time_secs.to_bits());
        for t in &plan.scheduled.tokens {
            h = splitmix64(h ^ u64::from(*t));
        }
        h
    }

    /// Whether `spec` fires for `(key, attempt)` — the pure coin flip,
    /// before budget accounting.
    fn coin(&self, spec: &FaultSpec, key: u64, attempt: u32) -> bool {
        if spec.rate <= 0.0 {
            return false;
        }
        if spec.rate >= 1.0 {
            return true;
        }
        let mixed = splitmix64(
            self.seed
                ^ spec.kind.salt()
                ^ key
                ^ (u64::from(attempt) + 1).wrapping_mul(0xA24B_AED4_963E_E407),
        );
        // Compare the uniform 64-bit draw against the rate threshold.
        (mixed as f64) < spec.rate * (u64::MAX as f64)
    }

    /// Consumes one fire token from the spec's budget. Returns `false`
    /// when the budget is exhausted.
    fn take_token(state: &SpecState) -> bool {
        if state.spec.max_fires == 0 {
            state.fired.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        loop {
            let fired = state.fired.load(Ordering::Relaxed);
            if fired >= state.spec.max_fires {
                return false;
            }
            if state
                .fired
                .compare_exchange(fired, fired + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }

    fn decide(
        &self,
        kind: FaultKind,
        shard: Option<usize>,
        key: u64,
        attempt: u32,
        plan: Option<&PlannedQuery>,
    ) -> Option<&FaultSpec> {
        for state in &self.specs {
            if state.spec.kind != kind {
                continue;
            }
            if let (Some(want), Some(is)) = (state.spec.shard, shard) {
                if want != is {
                    continue;
                }
            }
            state.checked.fetch_add(1, Ordering::Relaxed);
            let fires = match (&state.spec.predicate, plan) {
                (Some(predicate), Some(plan)) => predicate(plan),
                (Some(_), None) => false,
                (None, _) => self.coin(&state.spec, key, attempt),
            };
            if fires && Self::take_token(state) {
                return Some(&state.spec);
            }
        }
        None
    }

    /// Whether `kind` fires for a bare decision key (store / model-swap
    /// layers, which have no submission in hand).
    pub fn fires_key(&self, kind: FaultKind, key: u64, attempt: u32) -> bool {
        self.decide(kind, None, key, attempt, None).is_some()
    }

    /// Whether `kind` fires for one planned submission on `shard` at
    /// retry `attempt`.
    pub fn fires_submission(
        &self,
        kind: FaultKind,
        shard: usize,
        plan: &PlannedQuery,
        attempt: u32,
    ) -> bool {
        self.decide(
            kind,
            Some(shard),
            Self::submission_key(plan),
            attempt,
            Some(plan),
        )
        .is_some()
    }

    /// The stall duration to inject for one submission, when a
    /// [`FaultKind::ShardStall`] spec fires for it.
    pub fn stall_for(
        &self,
        shard: usize,
        plan: &PlannedQuery,
        attempt: u32,
    ) -> Option<std::time::Duration> {
        self.decide(
            FaultKind::ShardStall,
            Some(shard),
            Self::submission_key(plan),
            attempt,
            Some(plan),
        )
        .map(|spec| std::time::Duration::from_millis(spec.stall_ms))
    }

    /// The injected I/O error for one store operation, when a
    /// [`FaultKind::StoreWrite`] / [`FaultKind::StoreRead`] spec fires
    /// for `key` (e.g. the journal sequence number or a path hash).
    pub fn io_error(&self, kind: FaultKind, key: u64) -> Option<std::io::Error> {
        debug_assert!(matches!(kind, FaultKind::StoreWrite | FaultKind::StoreRead));
        if self.fires_key(kind, key, 0) {
            Some(std::io::Error::other(format!(
                "injected {} fault (no space left on device)",
                kind.name()
            )))
        } else {
            None
        }
    }

    /// Total fires of `kind` so far (across all its specs).
    pub fn fired(&self, kind: FaultKind) -> u64 {
        self.specs
            .iter()
            .filter(|s| s.spec.kind == kind)
            .map(|s| s.fired.load(Ordering::Relaxed))
            .sum()
    }

    /// Total decisions consulted for `kind` so far.
    pub fn checked(&self, kind: FaultKind) -> u64 {
        self.specs
            .iter()
            .filter(|s| s.spec.kind == kind)
            .map(|s| s.checked.load(Ordering::Relaxed))
            .sum()
    }

    /// One-line fire report across the taxonomy (for scenario notes).
    pub fn report(&self) -> String {
        let mut parts = Vec::new();
        for kind in ALL_FAULT_KINDS {
            let fired = self.fired(kind);
            let checked = self.checked(kind);
            if checked > 0 || fired > 0 {
                parts.push(format!("{} {fired}/{checked}", kind.name()));
            }
        }
        if parts.is_empty() {
            "no faults configured".to_string()
        } else {
            parts.join(", ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toppriv_core::ScheduledQuery;

    fn plan(session: &str, cycle_id: usize, tokens: Vec<u32>) -> PlannedQuery {
        PlannedQuery {
            session: session.to_string(),
            scheduled: ScheduledQuery {
                time_secs: 1.5,
                tokens,
                is_genuine: true,
                cycle_id,
            },
            k: 10,
            shards: vec![0],
            subscribers: Vec::new(),
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlane::new(1).with_spec(FaultSpec::rate(FaultKind::WorkerPanic, 0.5));
        let b = FaultPlane::new(1).with_spec(FaultSpec::rate(FaultKind::WorkerPanic, 0.5));
        let c = FaultPlane::new(2).with_spec(FaultSpec::rate(FaultKind::WorkerPanic, 0.5));
        let mut diverged = false;
        for key in 0..256u64 {
            assert_eq!(
                a.fires_key(FaultKind::WorkerPanic, key, 0),
                b.fires_key(FaultKind::WorkerPanic, key, 0),
                "same seed, same key, same verdict"
            );
            if a.fires_key(FaultKind::WorkerPanic, key, 0)
                != c.fires_key(FaultKind::WorkerPanic, key, 0)
            {
                diverged = true;
            }
        }
        assert!(diverged, "a different seed yields a different schedule");
    }

    #[test]
    fn rate_is_roughly_honored() {
        let plane = FaultPlane::new(99).with_spec(FaultSpec::rate(FaultKind::WorkerPanic, 0.05));
        let fired = (0..10_000u64)
            .filter(|&k| plane.fires_key(FaultKind::WorkerPanic, k, 0))
            .count();
        assert!(
            (300..=700).contains(&fired),
            "5% over 10k draws, got {fired}"
        );
    }

    #[test]
    fn attempts_flip_independent_coins() {
        let plane = FaultPlane::new(7).with_spec(FaultSpec::rate(FaultKind::WorkerPanic, 0.5));
        let healed = (0..256u64).filter(|&k| {
            plane.fires_key(FaultKind::WorkerPanic, k, 0)
                && !plane.fires_key(FaultKind::WorkerPanic, k, 1)
        });
        assert!(healed.count() > 0, "a retry must be able to heal");
    }

    #[test]
    fn max_fires_caps_the_budget() {
        let plane = FaultPlane::new(3).with_spec(FaultSpec::once(FaultKind::StoreWrite));
        assert!(plane.io_error(FaultKind::StoreWrite, 0).is_some());
        assert!(plane.io_error(FaultKind::StoreWrite, 1).is_none());
        assert_eq!(plane.fired(FaultKind::StoreWrite), 1);
    }

    #[test]
    fn shard_scope_filters() {
        let plane = FaultPlane::new(3).with_spec(
            FaultSpec::rate(FaultKind::ShardStall, 1.0)
                .on_shard(2)
                .stalling_ms(50),
        );
        let p = plan("s", 0, vec![1, 2]);
        assert!(plane.stall_for(2, &p, 0).is_some());
        assert!(plane.stall_for(1, &p, 0).is_none());
        assert_eq!(
            plane.stall_for(2, &p, 1).unwrap(),
            std::time::Duration::from_millis(50)
        );
    }

    #[test]
    fn predicate_specs_subsume_the_legacy_hook() {
        let plane = FaultPlane::new(0).with_spec(FaultSpec::predicate(
            FaultKind::WorkerPanic,
            Arc::new(|p: &PlannedQuery| p.session == "poisoned"),
        ));
        let bad = plan("poisoned", 0, vec![1]);
        let good = plan("healthy", 0, vec![1]);
        for attempt in 0..3 {
            assert!(plane.fires_submission(FaultKind::WorkerPanic, 0, &bad, attempt));
            assert!(!plane.fires_submission(FaultKind::WorkerPanic, 0, &good, attempt));
        }
    }

    #[test]
    fn submission_key_is_content_derived() {
        let a = FaultPlane::submission_key(&plan("s", 0, vec![1, 2]));
        let b = FaultPlane::submission_key(&plan("s", 0, vec![1, 2]));
        let c = FaultPlane::submission_key(&plan("s", 1, vec![1, 2]));
        let d = FaultPlane::submission_key(&plan("t", 0, vec![1, 2]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn report_summarizes_fires() {
        let plane = FaultPlane::new(1).with_spec(FaultSpec::once(FaultKind::StoreWrite));
        assert!(plane.io_error(FaultKind::StoreWrite, 9).is_some());
        let report = plane.report();
        assert!(report.contains("store_write 1/1"), "{report}");
    }
}
