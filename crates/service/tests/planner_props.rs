//! Property test for the cross-session ghost planner: over random
//! corpora/models, fleet seeds, tenant counts (2–8), and workloads,
//! every tenant's genuine rankings under planner-coalesced submissions
//! are **identical** to the unplanned baseline — decoy sharing may only
//! change who pays for a submission, never what any tenant's genuine
//! queries return.
//!
//! Corpus + LDA builds are the expensive part, so the sampled corpus
//! dimension selects from a small pool of lazily-built random stacks
//! (distinct seeds, sizes, and topic counts) while fleet seeds, tenant
//! counts, and query assignment stay fully sampled per case.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use toppriv_service::{CycleScheduler, GhostPlanner, PlannerConfig, SessionManager, SubmitOutcome};
use tsearch_corpus::{
    generate_workload, BenchmarkQuery, CorpusConfig, SyntheticCorpus, WorkloadConfig,
};
use tsearch_lda::{LdaConfig, LdaModel, LdaTrainer};
use tsearch_search::{ScoringModel, SearchEngine};
use tsearch_text::Analyzer;

struct Stack {
    engine: Arc<SearchEngine>,
    model: Arc<LdaModel>,
    queries: Vec<BenchmarkQuery>,
}

fn build_stack(seed: u64, num_topics: usize, num_docs: usize) -> Stack {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs,
        num_topics,
        terms_per_topic: 40,
        seed,
        ..CorpusConfig::default()
    });
    let docs = corpus.token_docs();
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let engine = Arc::new(SearchEngine::build(
        &docs,
        &texts,
        Analyzer::new(),
        corpus.vocab.clone(),
        ScoringModel::TfIdfCosine,
    ));
    let model = Arc::new(LdaTrainer::train(
        &docs,
        corpus.vocab.len(),
        LdaConfig {
            iterations: 12,
            ..LdaConfig::with_topics(num_topics)
        },
    ));
    let queries = generate_workload(
        &corpus,
        &WorkloadConfig {
            num_queries: 12,
            seed: seed ^ 0x9E37,
            ..WorkloadConfig::default()
        },
    );
    Stack {
        engine,
        model,
        queries,
    }
}

/// Pool of random stacks, built once each.
fn stacks() -> &'static [Stack; 3] {
    static STACKS: OnceLock<[Stack; 3]> = OnceLock::new();
    STACKS.get_or_init(|| {
        [
            build_stack(11, 4, 160),
            build_stack(5003, 6, 200),
            build_stack(0xBEEF, 8, 240),
        ]
    })
}

/// Genuine hits per (session, cycle), score compared bitwise.
fn genuine_hits(outcomes: &[SubmitOutcome]) -> HashMap<(String, usize), Vec<(u32, u64)>> {
    let mut map = HashMap::new();
    for o in outcomes {
        if o.is_genuine {
            let prev = map.insert(
                (o.session.clone(), o.cycle_id),
                o.hits
                    .iter()
                    .map(|h| (h.doc_id, h.score.to_bits()))
                    .collect::<Vec<_>>(),
            );
            assert!(prev.is_none(), "one genuine outcome per cycle");
        }
    }
    map
}

proptest! {
    #[test]
    fn planned_rankings_match_unplanned_baseline(
        stack_idx in 0usize..3,
        tenants in 2usize..=8,
        fleet_seed: u64,
        query_salt in 0usize..64,
        rounds in 1usize..=2,
    ) {
        let stack = &stacks()[stack_idx];
        let baseline = Arc::new(
            SessionManager::new(stack.engine.clone(), stack.model.clone())
                .with_cache(2048)
                .with_fleet_seed(fleet_seed),
        );
        let planned = Arc::new(
            SessionManager::new(stack.engine.clone(), stack.model.clone())
                .with_cache(2048)
                .with_fleet_seed(fleet_seed),
        );
        for m in [&baseline, &planned] {
            for s in 0..tenants {
                m.open_session(&format!("t{s}")).unwrap();
            }
        }
        // Baseline: every tenant plans alone, no sharing.
        let mut plans = Vec::new();
        for r in 0..rounds {
            for s in 0..tenants {
                let q = &stack.queries[(query_salt + s + r * 3) % stack.queries.len()];
                plans.push(baseline.plan_cycle(&format!("t{s}"), &q.tokens, 10).unwrap());
            }
        }
        let base = CycleScheduler::for_manager(&baseline, 2).run(plans);

        // Planner: identical workload, decoys shared across tenants.
        let planner = GhostPlanner::with_config(planned.clone(), PlannerConfig::default());
        for r in 0..rounds {
            for s in 0..tenants {
                let q = &stack.queries[(query_salt + s + r * 3) % stack.queries.len()];
                planner.plan_cycle(&format!("t{s}"), &q.tokens, 10).unwrap();
            }
        }
        let shared = CycleScheduler::for_manager(&planned, 2).run(vec![planner.take_queue()]);

        prop_assert_eq!(genuine_hits(&base), genuine_hits(&shared));
    }
}
