//! # toppriv-adversary
//!
//! Implementations of the four adversary strategies of Section IV-D —
//! discounting ghost queries by plausibility, discounting high-exposure
//! topics, eliminating words of high-exposure topics, and probing replays
//! of the ghost-generation algorithm — together with evaluation harnesses
//! that measure each attack's success rate against chance.
//!
//! The paper argues each attack fails; experiment `adv1` of the
//! reproduction quantifies that empirically.

pub mod attacks;
pub mod classifier;
pub mod eval;
pub mod logview;
pub mod online;
pub mod timing;

pub use attacks::{CoherenceAttack, ExposureRankAttack, ProbingAttack, TermEliminationAttack};
pub use classifier::{run_classifier_attack, ClassifierAttackReport, NaiveBayes};
pub use eval::{
    jaccard, run_coherence_attack, run_exposure_attack, run_probing_attack,
    run_term_elimination_attack, AttackReport,
};
pub use logview::{merge_shard_logs, LogAnalysis, LogAnalyzer, LogAnalyzerConfig, WindowAnalysis};
pub use online::{DriftSample, OnlineEstimatorConfig, OnlineLogEstimator};
pub use timing::{
    guess_genuine, run_timing_attack, segment_by_gap, TimingAttackReport, TimingHeuristic,
};
