//! Reduced-data LDA training — the future-work direction of Section V-A.
//!
//! The paper notes that the only scaling obstacle of TopPriv is "the
//! computation time and memory needed to train the LDA model on the entire
//! corpus", and suggests training on "a representative dataset, comprising
//! documents sampled from the corpus and/or only the more 'impactful' words
//! (e.g., as determined by TF-IDF values) in the vocabulary", leaving "a
//! systematic study of them for future work". This module implements both
//! reductions:
//!
//! - [`sample_docs`]: seeded uniform document sampling without replacement;
//! - [`VocabMap`]: TF-IDF impact-ranked vocabulary pruning with a
//!   bidirectional term-id mapping;
//! - [`ReducedModel`]: an LDA model trained on the reduced data that can
//!   still answer `Pr(t|q)` for full-vocabulary queries (out-of-vocabulary
//!   terms are projected away, exactly as GibbsLDA++ drops unseen words in
//!   inference mode), and can be [expanded](ReducedModel::expand) back to
//!   the full term space for drop-in use by the belief engine and ghost
//!   generator.
//!
//! The systematic study itself is experiment `reduced` in the bench harness,
//! which measures how far the training data can be reduced before the ghost
//! queries stop suppressing the user intention *as judged by an adversary
//! holding the full model*.

use crate::model::LdaModel;
use crate::train::{LdaConfig, LdaTrainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tsearch_text::TermId;

/// Per-term corpus statistics used to rank terms by impact.
#[derive(Debug, Clone)]
pub struct TermStats {
    /// Document frequency: number of documents containing the term.
    df: Vec<u32>,
    /// Collection frequency: total occurrences of the term.
    cf: Vec<u64>,
    /// Number of documents scanned.
    num_docs: usize,
}

impl TermStats {
    /// Scans the tokenized corpus once and tallies document and collection
    /// frequencies for every term id below `vocab_size`.
    pub fn compute(docs: &[&[TermId]], vocab_size: usize) -> Self {
        let mut df = vec![0u32; vocab_size];
        let mut cf = vec![0u64; vocab_size];
        let mut last_doc = vec![u32::MAX; vocab_size];
        for (d, doc) in docs.iter().enumerate() {
            for &w in *doc {
                let w = w as usize;
                cf[w] += 1;
                if last_doc[w] != d as u32 {
                    last_doc[w] = d as u32;
                    df[w] += 1;
                }
            }
        }
        TermStats {
            df,
            cf,
            num_docs: docs.len(),
        }
    }

    /// Document frequency of a term.
    pub fn df(&self, w: TermId) -> u32 {
        self.df[w as usize]
    }

    /// Collection frequency of a term.
    pub fn cf(&self, w: TermId) -> u64 {
        self.cf[w as usize]
    }

    /// Number of documents scanned.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// The TF-IDF impact score the paper alludes to: collection frequency
    /// damped by inverse document frequency, `cf(w) · ln(1 + N/df(w))`.
    /// Terms that appear nowhere score zero; terms that appear in every
    /// document are damped towards zero influence.
    pub fn impact(&self, w: TermId) -> f64 {
        let df = self.df[w as usize];
        if df == 0 {
            return 0.0;
        }
        let idf = (1.0 + self.num_docs as f64 / df as f64).ln();
        self.cf[w as usize] as f64 * idf
    }
}

/// A bidirectional mapping between the full vocabulary and a pruned one.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct VocabMap {
    /// Reduced id → full id, ascending in full id.
    kept: Vec<TermId>,
    /// Full id → reduced id (`u32::MAX` = pruned).
    forward: Vec<u32>,
}

impl VocabMap {
    /// Keeps the `keep` terms with the highest [`TermStats::impact`].
    /// Deterministic: ties break towards the lower term id.
    pub fn top_impact(stats: &TermStats, keep: usize) -> Self {
        let vocab_size = stats.df.len();
        let keep = keep.min(vocab_size);
        let mut order: Vec<u32> = (0..vocab_size as u32).collect();
        order.sort_by(|&a, &b| {
            stats
                .impact(b)
                .partial_cmp(&stats.impact(a))
                .expect("finite impact")
                .then(a.cmp(&b))
        });
        order.truncate(keep);
        order.sort_unstable();
        Self::from_kept(order, vocab_size)
    }

    /// Builds a map that keeps exactly the given full term ids
    /// (must be sorted and unique).
    pub fn from_kept(kept: Vec<TermId>, vocab_size: usize) -> Self {
        debug_assert!(kept.windows(2).all(|w| w[0] < w[1]), "kept ids sorted");
        let mut forward = vec![u32::MAX; vocab_size];
        for (new, &old) in kept.iter().enumerate() {
            forward[old as usize] = new as u32;
        }
        VocabMap { kept, forward }
    }

    /// The identity map over a full vocabulary (no pruning).
    pub fn identity(vocab_size: usize) -> Self {
        Self::from_kept((0..vocab_size as u32).collect(), vocab_size)
    }

    /// Size of the full vocabulary.
    pub fn full_size(&self) -> usize {
        self.forward.len()
    }

    /// Size of the pruned vocabulary.
    pub fn reduced_size(&self) -> usize {
        self.kept.len()
    }

    /// Maps a full term id into the reduced space, or `None` if pruned.
    pub fn to_reduced(&self, w: TermId) -> Option<TermId> {
        match self.forward.get(w as usize) {
            Some(&r) if r != u32::MAX => Some(r),
            _ => None,
        }
    }

    /// Maps a reduced term id back to its full id.
    pub fn to_full(&self, w: TermId) -> TermId {
        self.kept[w as usize]
    }

    /// Projects a full-vocabulary token sequence into the reduced space,
    /// dropping pruned terms.
    pub fn project(&self, tokens: &[TermId]) -> Vec<TermId> {
        tokens.iter().filter_map(|&w| self.to_reduced(w)).collect()
    }
}

/// Seeded uniform sampling without replacement: returns the sorted indices
/// of `ceil(rate · n)` documents. `rate ≥ 1` returns every index.
pub fn sample_docs(num_docs: usize, rate: f64, seed: u64) -> Vec<usize> {
    assert!(rate > 0.0, "sample rate must be positive");
    if rate >= 1.0 {
        return (0..num_docs).collect();
    }
    let take = ((num_docs as f64 * rate).ceil() as usize).clamp(1, num_docs);
    // Partial Fisher–Yates: after `take` swaps the prefix is a uniform
    // sample without replacement.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..num_docs).collect();
    for i in 0..take {
        let j = rng.gen_range(i..num_docs);
        idx.swap(i, j);
    }
    idx.truncate(take);
    idx.sort_unstable();
    idx
}

/// How much of the corpus to train on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReductionConfig {
    /// Fraction of documents to sample (0, 1].
    pub doc_rate: f64,
    /// Fraction of the vocabulary to keep, by TF-IDF impact (0, 1].
    pub vocab_rate: f64,
    /// Seed for the document sample.
    pub seed: u64,
}

impl Default for ReductionConfig {
    fn default() -> Self {
        ReductionConfig {
            doc_rate: 1.0,
            vocab_rate: 1.0,
            seed: 0x5eed_0b5e,
        }
    }
}

/// An LDA model trained on reduced data, carrying the vocabulary mapping
/// needed to serve full-vocabulary queries.
#[derive(Debug, Clone)]
pub struct ReducedModel {
    model: LdaModel,
    vocab_map: VocabMap,
    /// Documents actually trained on.
    sampled_docs: usize,
    /// Tokens dropped by the vocabulary pruning, over the sampled docs.
    dropped_tokens: u64,
    /// Tokens kept, over the sampled docs.
    kept_tokens: u64,
}

impl ReducedModel {
    /// Trains on `docs` after applying the reduction: sample documents,
    /// prune the vocabulary by TF-IDF impact (statistics are computed on
    /// the *sampled* documents — the client never needs the full corpus),
    /// remap term ids, and run the standard collapsed Gibbs trainer.
    pub fn train(
        docs: &[&[TermId]],
        vocab_size: usize,
        lda: LdaConfig,
        reduction: ReductionConfig,
    ) -> Self {
        assert!(
            reduction.vocab_rate > 0.0 && reduction.vocab_rate <= 1.0,
            "vocab_rate in (0, 1]"
        );
        let sample = sample_docs(docs.len(), reduction.doc_rate, reduction.seed);
        let sampled: Vec<&[TermId]> = sample.iter().map(|&i| docs[i]).collect();
        let stats = TermStats::compute(&sampled, vocab_size);
        let keep = ((vocab_size as f64 * reduction.vocab_rate).ceil() as usize).max(1);
        let vocab_map = if keep >= vocab_size {
            VocabMap::identity(vocab_size)
        } else {
            VocabMap::top_impact(&stats, keep)
        };
        let mut dropped = 0u64;
        let mut kept = 0u64;
        let projected: Vec<Vec<TermId>> = sampled
            .iter()
            .map(|doc| {
                let p = vocab_map.project(doc);
                dropped += (doc.len() - p.len()) as u64;
                kept += p.len() as u64;
                p
            })
            .collect();
        let refs: Vec<&[TermId]> = projected.iter().map(|d| d.as_slice()).collect();
        let model = LdaTrainer::train(&refs, vocab_map.reduced_size(), lda);
        ReducedModel {
            model,
            vocab_map,
            sampled_docs: sample.len(),
            dropped_tokens: dropped,
            kept_tokens: kept,
        }
    }

    /// Reassembles a reduced model from persisted parts (see
    /// `examples/thin_client.rs` for the store round-trip).
    /// `kept_tokens` is the training token count after pruning, used by
    /// [`expand`](Self::expand) to estimate the smoothing floor; persist
    /// [`kept_tokens`](Self::kept_tokens) alongside the model.
    pub fn from_parts(model: LdaModel, vocab_map: VocabMap, kept_tokens: u64) -> Self {
        assert_eq!(
            model.vocab_size(),
            vocab_map.reduced_size(),
            "model vocabulary must match the map's reduced size"
        );
        ReducedModel {
            sampled_docs: model.num_docs(),
            model,
            vocab_map,
            dropped_tokens: 0,
            kept_tokens,
        }
    }

    /// Training token count after pruning (persist with the model so
    /// [`from_parts`](Self::from_parts) can restore expansion behaviour).
    pub fn kept_tokens(&self) -> u64 {
        self.kept_tokens
    }

    /// The underlying (reduced-vocabulary) model.
    pub fn model(&self) -> &LdaModel {
        &self.model
    }

    /// The vocabulary mapping.
    pub fn vocab_map(&self) -> &VocabMap {
        &self.vocab_map
    }

    /// Number of documents the model was trained on.
    pub fn sampled_docs(&self) -> usize {
        self.sampled_docs
    }

    /// Fraction of training tokens lost to vocabulary pruning.
    pub fn token_drop_rate(&self) -> f64 {
        let total = self.dropped_tokens + self.kept_tokens;
        if total == 0 {
            0.0
        } else {
            self.dropped_tokens as f64 / total as f64
        }
    }

    /// Projects a full-vocabulary query into the reduced term space
    /// (out-of-vocabulary terms are dropped, as in GibbsLDA++ inference).
    pub fn project_query(&self, tokens: &[TermId]) -> Vec<TermId> {
        self.vocab_map.project(tokens)
    }

    /// Client-side bytes of the reduced model: the pruned `Pr(w|t)` matrix
    /// and prior, plus 4 bytes per kept term for the id mapping.
    pub fn client_bytes(&self) -> usize {
        self.model.size_breakdown().client_bytes() + self.vocab_map.reduced_size() * 4
    }

    /// Expands the model back to the full term space so it can be used
    /// directly by components that speak full term ids (belief engine,
    /// ghost generator). Pruned words receive the probability the collapsed
    /// Gibbs estimator assigns to an unseen word — the β-smoothing floor —
    /// and each topic's distribution is renormalized.
    ///
    /// The expansion is a *view for computation*; the client stores and
    /// ships only [`client_bytes`](Self::client_bytes).
    pub fn expand(&self) -> LdaModel {
        let full = self.vocab_map.full_size();
        let reduced = self.vocab_map.reduced_size();
        let k = self.model.num_topics();
        if reduced == full {
            return self.model.clone();
        }
        // The Gibbs estimate for an unseen word is β / (n_t + V·β); we do
        // not retain per-topic token counts n_t in the model, so estimate
        // n_t by an even share of the kept training tokens.
        let n_t = self.kept_tokens as f64 / k as f64;
        let beta = self.model.beta();
        let floor = beta / (n_t + full as f64 * beta);
        let dropped = (full - reduced) as f64;
        let kept_mass_scale = 1.0 - dropped * floor;
        assert!(
            kept_mass_scale > 0.0,
            "smoothing floor exceeds unit mass; corpus too small for expansion"
        );
        let mut phi = vec![0.0f64; full * k];
        for w_full in 0..full as u32 {
            let row = &mut phi[w_full as usize * k..(w_full as usize + 1) * k];
            match self.vocab_map.to_reduced(w_full) {
                Some(w_red) => {
                    for (t, slot) in row.iter_mut().enumerate() {
                        *slot = self.model.phi(t, w_red) * kept_mass_scale;
                    }
                }
                None => row.fill(floor),
            }
        }
        let theta: Vec<f64> = (0..self.model.num_docs())
            .flat_map(|d| self.model.doc_topics(d).to_vec())
            .collect();
        let expanded =
            LdaModel::from_parts(k, full, self.model.alpha(), self.model.beta(), phi, theta);
        debug_assert!(expanded.validate().is_ok());
        expanded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 30 docs over 12 words: words 0–3 topic A, 4–7 topic B,
    /// 8–11 are rare noise (low impact).
    fn toy_docs() -> Vec<Vec<TermId>> {
        (0..30)
            .map(|d| {
                let base = if d % 2 == 0 { 0 } else { 4 };
                let mut doc: Vec<TermId> = (0..24).map(|i| base + i % 4).collect();
                if d == 0 {
                    doc.push(8 + (d % 4) as TermId);
                }
                doc
            })
            .collect()
    }

    fn refs(docs: &[Vec<TermId>]) -> Vec<&[TermId]> {
        docs.iter().map(|d| d.as_slice()).collect()
    }

    #[test]
    fn term_stats_counts() {
        let docs = toy_docs();
        let stats = TermStats::compute(&refs(&docs), 12);
        assert_eq!(stats.num_docs(), 30);
        assert_eq!(stats.df(0), 15); // every even doc
        assert_eq!(stats.cf(0), 15 * 6); // 6 occurrences per doc
        assert_eq!(stats.df(8), 1);
        assert_eq!(stats.cf(8), 1);
        assert_eq!(stats.df(11), 0);
        assert_eq!(stats.impact(11), 0.0);
        assert!(stats.impact(0) > stats.impact(8));
    }

    #[test]
    fn impact_damps_ubiquitous_terms() {
        // One term in every doc many times vs a term in half the docs.
        let docs: Vec<Vec<TermId>> = (0..10)
            .map(|d| {
                let mut v = vec![0u32; 10];
                if d % 2 == 0 {
                    v.extend_from_slice(&[1, 1, 1, 1, 1, 1, 1, 1]);
                }
                v
            })
            .collect();
        let stats = TermStats::compute(&refs(&docs), 2);
        // Term 0: cf=100, df=10 → idf=ln(2). Term 1: cf=40, df=5 → idf=ln(3).
        assert!((stats.impact(0) - 100.0 * 2.0f64.ln()).abs() < 1e-9);
        assert!((stats.impact(1) - 40.0 * 3.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn vocab_map_keeps_top_terms() {
        let docs = toy_docs();
        let stats = TermStats::compute(&refs(&docs), 12);
        let map = VocabMap::top_impact(&stats, 8);
        assert_eq!(map.reduced_size(), 8);
        assert_eq!(map.full_size(), 12);
        // The 8 topical words dominate the rare noise words.
        for w in 0..8u32 {
            assert!(map.to_reduced(w).is_some(), "word {w} should be kept");
        }
        for w in 8..12u32 {
            assert!(map.to_reduced(w).is_none(), "word {w} should be pruned");
        }
    }

    #[test]
    fn vocab_map_roundtrip() {
        let map = VocabMap::from_kept(vec![1, 3, 4, 7], 9);
        for new in 0..4u32 {
            assert_eq!(map.to_reduced(map.to_full(new)), Some(new));
        }
        assert_eq!(map.to_reduced(0), None);
        assert_eq!(map.to_reduced(8), None);
        assert_eq!(map.project(&[0, 1, 2, 3, 4, 7, 8]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn identity_map_is_lossless() {
        let map = VocabMap::identity(5);
        assert_eq!(map.reduced_size(), 5);
        assert_eq!(map.project(&[4, 2, 0]), vec![4, 2, 0]);
    }

    #[test]
    fn sample_docs_full_rate() {
        assert_eq!(sample_docs(5, 1.0, 1), vec![0, 1, 2, 3, 4]);
        assert_eq!(sample_docs(5, 2.0, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sample_docs_deterministic_and_uniform_size() {
        let a = sample_docs(100, 0.3, 42);
        let b = sample_docs(100, 0.3, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
        let c = sample_docs(100, 0.3, 43);
        assert_ne!(a, c, "different seeds give different samples");
    }

    #[test]
    fn sample_docs_at_least_one() {
        assert_eq!(sample_docs(50, 0.001, 7).len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sample_docs_rejects_zero_rate() {
        sample_docs(10, 0.0, 1);
    }

    #[test]
    fn reduced_training_recovers_topics() {
        let docs = toy_docs();
        let reduced = ReducedModel::train(
            &refs(&docs),
            12,
            LdaConfig {
                iterations: 40,
                seed: 9,
                ..LdaConfig::with_topics(2)
            },
            ReductionConfig {
                doc_rate: 0.8,
                vocab_rate: 0.7, // keeps ceil(8.4)=9 words — all topical ones
                ..Default::default()
            },
        );
        assert_eq!(reduced.sampled_docs(), 24);
        assert!(reduced.token_drop_rate() < 0.01);
        // Block structure: the dominant topic of word 0 and word 4 differ.
        let m = reduced.model();
        let w0 = reduced.vocab_map().to_reduced(0).unwrap();
        let w4 = reduced.vocab_map().to_reduced(4).unwrap();
        let t0 = (0..2).max_by(|&a, &b| m.phi(a, w0).partial_cmp(&m.phi(b, w0)).unwrap());
        let t4 = (0..2).max_by(|&a, &b| m.phi(a, w4).partial_cmp(&m.phi(b, w4)).unwrap());
        assert_ne!(t0, t4, "the two word blocks map to different topics");
    }

    #[test]
    fn project_query_drops_oov() {
        let docs = toy_docs();
        let reduced = ReducedModel::train(
            &refs(&docs),
            12,
            LdaConfig {
                iterations: 10,
                ..LdaConfig::with_topics(2)
            },
            ReductionConfig {
                vocab_rate: 0.5, // keep 6 of 12
                ..Default::default()
            },
        );
        let q: Vec<TermId> = (0..12).collect();
        let projected = reduced.project_query(&q);
        assert_eq!(projected.len(), 6);
    }

    #[test]
    fn expansion_is_valid_and_orders_match() {
        let docs = toy_docs();
        let reduced = ReducedModel::train(
            &refs(&docs),
            12,
            LdaConfig {
                iterations: 30,
                seed: 3,
                ..LdaConfig::with_topics(2)
            },
            ReductionConfig {
                vocab_rate: 0.7,
                ..Default::default()
            },
        );
        let full = reduced.expand();
        assert_eq!(full.vocab_size(), 12);
        assert_eq!(full.num_topics(), 2);
        full.validate().unwrap();
        // Kept words preserve their within-topic ordering.
        let m = reduced.model();
        for t in 0..2 {
            let a = reduced.vocab_map().to_reduced(0).unwrap();
            let b = reduced.vocab_map().to_reduced(4).unwrap();
            let reduced_order = m.phi(t, a) < m.phi(t, b);
            let full_order = full.phi(t, 0) < full.phi(t, 4);
            assert_eq!(reduced_order, full_order);
        }
        // Pruned words sit at the floor: strictly below any kept topical word's max.
        let pruned_phi = full.phi(0, 11);
        assert!(pruned_phi > 0.0);
        assert!(pruned_phi < full.top_words(0, 1)[0].1);
    }

    #[test]
    fn expansion_identity_when_unpruned() {
        let docs = toy_docs();
        let reduced = ReducedModel::train(
            &refs(&docs),
            12,
            LdaConfig {
                iterations: 10,
                ..LdaConfig::with_topics(2)
            },
            ReductionConfig::default(),
        );
        let full = reduced.expand();
        for w in 0..12u32 {
            for t in 0..2 {
                assert_eq!(full.phi(t, w), reduced.model().phi(t, w));
            }
        }
    }

    #[test]
    fn from_parts_restores_expansion() {
        let docs = toy_docs();
        let original = ReducedModel::train(
            &refs(&docs),
            12,
            LdaConfig {
                iterations: 20,
                seed: 4,
                ..LdaConfig::with_topics(2)
            },
            ReductionConfig {
                vocab_rate: 0.7,
                ..Default::default()
            },
        );
        let restored = ReducedModel::from_parts(
            original.model().clone(),
            original.vocab_map().clone(),
            original.kept_tokens(),
        );
        let a = original.expand();
        let b = restored.expand();
        for t in 0..2 {
            for w in 0..12u32 {
                assert_eq!(a.phi(t, w), b.phi(t, w));
            }
        }
    }

    #[test]
    #[should_panic(expected = "reduced size")]
    fn from_parts_rejects_mismatched_map() {
        let docs = toy_docs();
        let original = ReducedModel::train(
            &refs(&docs),
            12,
            LdaConfig {
                iterations: 5,
                ..LdaConfig::with_topics(2)
            },
            ReductionConfig::default(),
        );
        ReducedModel::from_parts(
            original.model().clone(),
            VocabMap::from_kept(vec![0, 1], 12),
            10,
        );
    }

    #[test]
    fn client_bytes_shrink_with_reduction() {
        let docs = toy_docs();
        let full = ReducedModel::train(
            &refs(&docs),
            12,
            LdaConfig {
                iterations: 5,
                ..LdaConfig::with_topics(2)
            },
            ReductionConfig::default(),
        );
        let half = ReducedModel::train(
            &refs(&docs),
            12,
            LdaConfig {
                iterations: 5,
                ..LdaConfig::with_topics(2)
            },
            ReductionConfig {
                vocab_rate: 0.5,
                ..Default::default()
            },
        );
        assert!(half.client_bytes() < full.client_bytes());
    }
}
