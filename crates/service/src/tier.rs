//! The search tier behind the service: one engine or many shards.
//!
//! Every service component that touches the engine (session resolution,
//! the cycle scheduler's workers, the server's log-capacity plumbing)
//! goes through [`SearchTier`], so the same service stack runs unchanged
//! over a single [`SearchEngine`] or a term-sharded [`ShardedEngine`].
//! The tier is also where submissions learn their *shard set* — the
//! sorted list of shards a query's terms route to — which the
//! [`crate::CycleScheduler`] uses to drain shards independently.

use std::sync::Arc;
use tsearch_search::{SearchEngine, SearchHit, ShardedEngine};
use tsearch_text::{Analyzer, TermId, Vocabulary};

/// A handle to the search tier: a single engine or a sharded one.
///
/// Cloning is cheap (the variants hold `Arc`s).
#[derive(Clone)]
pub enum SearchTier {
    /// One monolithic engine (the seed's layout).
    Single(Arc<SearchEngine>),
    /// A term-sharded engine; queries fan out to their shard sets.
    Sharded(Arc<ShardedEngine>),
}

impl SearchTier {
    /// Number of shards (1 for a single engine).
    pub fn num_shards(&self) -> usize {
        match self {
            SearchTier::Single(_) => 1,
            SearchTier::Sharded(e) => e.num_shards(),
        }
    }

    /// The sorted shard set a token query touches (always `[0]` for a
    /// single engine with a non-empty query).
    pub fn shard_set(&self, tokens: &[TermId]) -> Vec<usize> {
        match self {
            SearchTier::Single(_) => {
                if tokens.is_empty() {
                    Vec::new()
                } else {
                    vec![0]
                }
            }
            SearchTier::Sharded(e) => e.shard_set(tokens),
        }
    }

    /// Executes a token query (logged by the engine / touched shards).
    pub fn search_tokens(&self, tokens: &[TermId], k: usize) -> Vec<SearchHit> {
        match self {
            SearchTier::Single(e) => e.search_tokens(tokens, k),
            SearchTier::Sharded(e) => e.search_tokens(tokens, k),
        }
    }

    /// The tier's analyzer.
    pub fn analyzer(&self) -> &Analyzer {
        match self {
            SearchTier::Single(e) => e.analyzer(),
            SearchTier::Sharded(e) => e.analyzer(),
        }
    }

    /// The tier's vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        match self {
            SearchTier::Single(e) => e.vocab(),
            SearchTier::Sharded(e) => e.vocab(),
        }
    }

    /// Bounds the adversary query log: the single engine's one log, or
    /// **each** shard's log, to `capacity` entries.
    pub fn set_query_log_capacity(&self, capacity: usize) {
        match self {
            SearchTier::Single(e) => e.set_query_log_capacity(capacity),
            SearchTier::Sharded(e) => e.set_query_log_capacity(capacity),
        }
    }

    /// Clears the adversary query log(s).
    pub fn clear_query_logs(&self) {
        match self {
            SearchTier::Single(e) => e.clear_query_log(),
            SearchTier::Sharded(e) => e.clear_query_logs(),
        }
    }

    /// The single engine, if this tier is unsharded.
    pub fn as_single(&self) -> Option<&Arc<SearchEngine>> {
        match self {
            SearchTier::Single(e) => Some(e),
            SearchTier::Sharded(_) => None,
        }
    }

    /// The sharded engine, if this tier is sharded.
    pub fn as_sharded(&self) -> Option<&Arc<ShardedEngine>> {
        match self {
            SearchTier::Single(_) => None,
            SearchTier::Sharded(e) => Some(e),
        }
    }
}

impl From<Arc<SearchEngine>> for SearchTier {
    fn from(engine: Arc<SearchEngine>) -> Self {
        SearchTier::Single(engine)
    }
}

impl From<Arc<ShardedEngine>> for SearchTier {
    fn from(engine: Arc<ShardedEngine>) -> Self {
        SearchTier::Sharded(engine)
    }
}
