//! `toppriv-scenarios`: named end-to-end fleet scenarios.
//!
//! The experiments under [`crate::experiments`] measure one mechanism
//! each; a scenario exercises the **whole fleet** — a live
//! [`SessionManager`] / [`toppriv_service::CycleScheduler`] / sharded
//! search tier — through an operational event, and is simultaneously a
//! test and a benchmark:
//!
//! - as a test, it asserts the privacy and correctness invariants that
//!   must hold *across* the event (exposure ≤ mask level through a
//!   churn storm, accounting continuity through a model hot-swap,
//!   bit-identical restored accounting after a crash);
//! - as a benchmark, it records per-stage p50/p99 and sustained qps
//!   into one `BENCH_scenario_<name>.json` snapshot per scenario via
//!   `toppriv-obs`, each carrying a structured
//!   [`toppriv_obs::InvariantBlock`] verdict.
//!
//! The matrix ([`SCENARIOS`]): `churn`, `hotswap`, `evolution`,
//! `flashcrowd`, `recovery`, `chaos`. `cargo run --bin reproduce --
//! scenarios` runs all six; the driver exits non-zero if any invariant
//! fails, so CI's nightly `scenarios` job is a fleet regression gate,
//! not just a perf recorder.

pub mod chaos;
pub mod churn;
pub mod evolution;
pub mod flashcrowd;
pub mod hotswap;
pub mod recovery;

use crate::context::ExperimentContext;
use crate::obsbench;
use std::sync::Arc;
use toppriv_obs::BenchSnapshot;
use toppriv_service::{SearchTier, SessionManager};
use tsearch_search::ShardedEngine;
use tsearch_text::Analyzer;

/// The scenario matrix, in run order.
pub const SCENARIOS: [&str; 6] = [
    "churn",
    "hotswap",
    "evolution",
    "flashcrowd",
    "recovery",
    "chaos",
];

/// Fixed fleet secret: every scenario plans the identical ghost
/// workload run to run, so snapshots are comparable across commits.
pub const FLEET_SEED: u64 = 0x5CE7A210;

/// Shards the scenario tiers run on.
pub const SHARDS: usize = 4;

/// Total scheduler workers per drain.
pub const WORKERS: usize = 4;

/// Results fetched per query.
pub const TOP_K: usize = 10;

/// The outcome of one scenario: its bench snapshot (already written as
/// `BENCH_scenario_<name>.json`) with the invariant verdicts inside.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The emitted snapshot; `snapshot.experiment` is
    /// `scenario_<name>` and `snapshot.invariants.pass` the verdict.
    pub snapshot: BenchSnapshot,
}

impl ScenarioReport {
    /// The bare scenario name (snapshot experiment minus the
    /// `scenario_` prefix).
    pub fn name(&self) -> &str {
        self.snapshot
            .experiment
            .strip_prefix("scenario_")
            .unwrap_or(&self.snapshot.experiment)
    }

    /// Whether every invariant held.
    pub fn pass(&self) -> bool {
        self.snapshot.invariants.pass
    }
}

/// Builds a term-sharded engine over the context's corpus (the
/// context's own engine stays untouched — its query log belongs to
/// other experiments).
pub(crate) fn sharded_tier(ctx: &ExperimentContext, shards: usize) -> SearchTier {
    let docs = ctx.corpus.token_docs();
    let texts: Vec<String> = ctx.corpus.docs.iter().map(|d| d.text.clone()).collect();
    SearchTier::Sharded(Arc::new(ShardedEngine::build(
        &docs,
        &texts,
        Analyzer::new(),
        ctx.corpus.vocab.clone(),
        ctx.engine.model(),
        shards,
    )))
}

/// A fresh fleet manager on `tier` with the scenario fleet seed, a
/// result cache (decoys are content-deterministic, so cross-tenant
/// cache identity is part of what scenarios exercise), and the privacy
/// audit plane attached — every scenario run is continuously audited,
/// and [`finish_with`] folds the auditor's verdict into the scenario's
/// invariant block.
pub(crate) fn fleet_manager(ctx: &ExperimentContext, tier: SearchTier) -> Arc<SessionManager> {
    Arc::new(
        SessionManager::with_tier(tier, ctx.default_model().clone())
            .with_cache(4096)
            .with_fleet_seed(FLEET_SEED)
            .with_auditor(toppriv_service::AuditConfig::default()),
    )
}

/// Per-cycle masking violation: how far the intention's boost sticks
/// out above **both** the decoy topics and the ε2 negligibility
/// threshold, `min(exposure − mask_level, exposure − ε2)`. The fleet
/// invariant is `violation ≤ 0` (within float tolerance) for every
/// cycle: the intention is either out-boosted by a decoy topic or
/// negligibly boosted — it never stands out. Strict
/// `exposure ≤ mask_level` alone is *not* guaranteed: a satisfied
/// cycle can have every topic's boost below ε2, with the intention's
/// tiny boost above the decoys'.
pub(crate) fn masking_violation(metrics: &toppriv_core::PrivacyMetrics, eps2: f64) -> f64 {
    (metrics.exposure - metrics.mask_level).min(metrics.exposure - eps2)
}

/// Opens `n` tenants named `tenant-0..n` on the manager.
pub(crate) fn open_tenants(manager: &SessionManager, n: usize) {
    for s in 0..n {
        manager
            .open_session(&format!("tenant-{s}"))
            .expect("tenant id is fresh");
    }
}

/// Finalizes one scenario: stamps qps and stage stats from the
/// manager's registry into the snapshot, emits
/// `BENCH_scenario_<name>.json`, and prints the verdict line.
pub(crate) fn finish(
    name: &str,
    manager: &SessionManager,
    qps: f64,
    notes: String,
    invariants: toppriv_obs::InvariantBlock,
) -> ScenarioReport {
    finish_with(name, manager, qps, notes, invariants, Vec::new())
}

/// [`finish`] with extra per-scenario stage rows (e.g. the flash-crowd
/// per-shard service breakdown) appended to the snapshot.
pub(crate) fn finish_with(
    name: &str,
    manager: &SessionManager,
    qps: f64,
    notes: String,
    invariants: toppriv_obs::InvariantBlock,
    extra_stages: Vec<toppriv_obs::StageStats>,
) -> ScenarioReport {
    let mut snap = obsbench::service_bench_snapshot(
        &format!("scenario_{name}"),
        manager.metrics_registry().registry(),
        qps,
        notes,
    );
    snap.stages.extend(extra_stages);
    let mut invariants = invariants;
    if let Some(auditor) = manager.auditor() {
        let health = auditor.health();
        invariants.check(
            "audit_plane_healthy",
            format!(
                "auditor saw {} cycle(s), {} breach(es), verdict {}",
                health.cycles_audited,
                health.breaches,
                health.verdict()
            ),
            health.healthy,
        );
    }
    snap.invariants = invariants;
    obsbench::emit_bench(&snap);
    let verdict = if snap.invariants.pass { "PASS" } else { "FAIL" };
    println!(
        "  scenario {name}: {verdict} ({} invariant check(s), {:.0} qps)",
        snap.invariants.checks.len(),
        snap.qps
    );
    for c in snap.invariants.checks.iter().filter(|c| !c.pass) {
        println!("    FAILED {}: {}", c.name, c.detail);
    }
    ScenarioReport { snapshot: snap }
}

/// Runs the full scenario matrix in [`SCENARIOS`] order.
pub fn run_all(ctx: &ExperimentContext) -> Vec<ScenarioReport> {
    SCENARIOS
        .iter()
        .map(|&name| run_one(ctx, name).expect("matrix names are exhaustive"))
        .collect()
}

/// Runs one scenario by name (`None` for an unknown name).
pub fn run_one(ctx: &ExperimentContext, name: &str) -> Option<ScenarioReport> {
    match name {
        "churn" => Some(churn::run(ctx)),
        "hotswap" => Some(hotswap::run(ctx)),
        "evolution" => Some(evolution::run(ctx)),
        "flashcrowd" => Some(flashcrowd::run(ctx)),
        "recovery" => Some(recovery::run(ctx)),
        "chaos" => Some(chaos::run(ctx)),
        _ => None,
    }
}
