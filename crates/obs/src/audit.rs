//! Structured audit events, the bounded ring journal, and health reports.
//!
//! The privacy guarantee a tenant pays υ× overhead for must be an
//! always-on observable, not a test-time assertion. This module is the
//! substrate of that audit plane:
//!
//! - [`AuditEvent`] — one typed, severity-tagged observation (an ε2
//!   breach, a low-headroom warning, a journal spill);
//! - [`AuditLog`] — a bounded ring journal of events, same design as the
//!   span journal ([`crate::Tracer`]): one atomic head reserves slots,
//!   each slot has its own tiny mutex, so concurrent auditors never
//!   contend on a global lock and a panicked recorder poisons at most
//!   one slot;
//! - [`HealthReport`] — the aggregated verdict a `Health` protocol op or
//!   a `--audit-interval` tick reads out.
//!
//! The service-layer `PrivacyAuditor` (in `toppriv-service`) owns the
//! per-tenant accounting and pushes here; this crate only defines the
//! bounded, serializable substrate.
//!
//! ```
//! use toppriv_obs::{AuditLog, AuditSeverity};
//!
//! let log = AuditLog::new(64);
//! log.push(AuditSeverity::Breach, "eps2_breach", "alice", 3, "exposure 0.5 > eps2 0.01");
//! assert_eq!(log.breaches(), 1);
//! assert_eq!(log.tail(10).len(), 1);
//! assert_eq!(log.tail(10)[0].tenant, "alice");
//! ```

use crate::recover_lock;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Severity of one audit event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditSeverity {
    /// Operational bookkeeping (journal spill, auditor start).
    Info,
    /// Near-breach: the guarantee still holds but headroom is low.
    Warning,
    /// The per-cycle fleet invariant failed — the guarantee was violated.
    Breach,
}

/// One structured audit observation, as journaled and as spilled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEvent {
    /// Journal sequence number (emission order, monotone).
    pub seq: u64,
    /// Event severity.
    pub severity: AuditSeverity,
    /// Short machine-readable code (`eps2_breach`, `low_headroom`,
    /// `journal_spill` — see the taxonomy in ARCHITECTURE.md).
    pub code: String,
    /// Tenant (session id) the event concerns; empty for fleet-wide
    /// events.
    pub tenant: String,
    /// Cycle id the event concerns (0 for non-cycle events).
    pub cycle: u64,
    /// Human-readable evidence: what was compared, what was observed.
    pub detail: String,
}

/// A bounded ring journal of [`AuditEvent`]s.
///
/// Pushing is wait-free up to the per-slot mutex (never contended unless
/// two pushes land on the same ring slot simultaneously); the journal
/// retains the most recent `capacity` events and counts every severity
/// forever, so the health verdict survives ring overwrite.
#[derive(Debug)]
pub struct AuditLog {
    next_seq: AtomicU64,
    head: AtomicUsize,
    warnings: AtomicU64,
    breaches: AtomicU64,
    slots: Vec<Mutex<Option<AuditEvent>>>,
}

impl AuditLog {
    /// A journal retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        AuditLog {
            next_seq: AtomicU64::new(0),
            head: AtomicUsize::new(0),
            warnings: AtomicU64::new(0),
            breaches: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Journals one event, returning its sequence number.
    pub fn push(
        &self,
        severity: AuditSeverity,
        code: impl Into<String>,
        tenant: impl Into<String>,
        cycle: u64,
        detail: impl Into<String>,
    ) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.store(AuditEvent {
            seq,
            severity,
            code: code.into(),
            tenant: tenant.into(),
            cycle,
            detail: detail.into(),
        });
        seq
    }

    fn store(&self, event: AuditEvent) {
        match event.severity {
            AuditSeverity::Info => {}
            AuditSeverity::Warning => {
                self.warnings.fetch_add(1, Ordering::Relaxed);
            }
            AuditSeverity::Breach => {
                self.breaches.fetch_add(1, Ordering::Relaxed);
            }
        }
        let slot = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *recover_lock(&self.slots[slot]) = Some(event);
    }

    /// Restores spilled events (e.g. an unsealed journal container) into
    /// the ring, preserving their sequence numbers; fresh events continue
    /// after the highest restored one.
    pub fn restore(&self, events: &[AuditEvent]) {
        for event in events {
            self.next_seq.fetch_max(event.seq + 1, Ordering::Relaxed);
            self.store(event.clone());
        }
    }

    /// Every retained event, oldest first (by sequence number).
    pub fn events(&self) -> Vec<AuditEvent> {
        let mut out: Vec<AuditEvent> = self
            .slots
            .iter()
            .filter_map(|s| recover_lock(s).clone())
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// The most recent `limit` events, oldest first.
    pub fn tail(&self, limit: usize) -> Vec<AuditEvent> {
        let mut events = self.events();
        let skip = events.len().saturating_sub(limit);
        events.drain(..skip);
        events
    }

    /// Total events journaled since creation (including overwritten).
    pub fn recorded(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Breach events journaled since creation (survives ring overwrite).
    pub fn breaches(&self) -> u64 {
        self.breaches.load(Ordering::Relaxed)
    }

    /// Warning events journaled since creation (survives ring overwrite).
    pub fn warnings(&self) -> u64 {
        self.warnings.load(Ordering::Relaxed)
    }

    /// Empties the ring (severity totals and sequence numbering keep
    /// counting — the health verdict must not forget a breach).
    pub fn clear(&self) {
        for slot in &self.slots {
            *recover_lock(slot) = None;
        }
    }
}

/// The aggregated audit-plane verdict: what a `Health` protocol op, a
/// `--audit-interval` tick, or a scenario's closing invariant reads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// `true` iff no breach has ever been journaled.
    pub healthy: bool,
    /// Tenants currently under audit.
    pub tenants: usize,
    /// Cycles whose fleet invariant has been evaluated.
    pub cycles_audited: u64,
    /// Breach events journaled since start.
    pub breaches: u64,
    /// Warning events journaled since start.
    pub warnings: u64,
    /// Worst (smallest) per-tenant budget headroom `ε2 − trace_exposure`
    /// across live tenants (0 when no tenant is under audit).
    pub worst_headroom: f64,
    /// Smallest cycles-until-ε2-exhaustion estimate across live tenants
    /// at the current burn slope (−1 when no tenant is burning budget).
    pub burn_cycles_min: i64,
    /// Free-form summary.
    pub detail: String,
}

impl HealthReport {
    /// A vacuously healthy report (no tenants, nothing audited).
    pub fn empty() -> Self {
        HealthReport {
            healthy: true,
            tenants: 0,
            cycles_audited: 0,
            breaches: 0,
            warnings: 0,
            worst_headroom: 0.0,
            burn_cycles_min: -1,
            detail: "no tenants under audit".into(),
        }
    }

    /// The one-word verdict string (`healthy` / `degraded`).
    pub fn verdict(&self) -> &'static str {
        if self.healthy {
            "healthy"
        } else {
            "degraded"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_counts_by_severity() {
        let log = AuditLog::new(8);
        log.push(AuditSeverity::Info, "journal_spill", "", 0, "spilled");
        log.push(AuditSeverity::Warning, "low_headroom", "a", 1, "w");
        log.push(AuditSeverity::Breach, "eps2_breach", "a", 2, "b");
        log.push(AuditSeverity::Breach, "eps2_breach", "b", 1, "b");
        assert_eq!(log.recorded(), 4);
        assert_eq!(log.warnings(), 1);
        assert_eq!(log.breaches(), 2);
        let events = log.events();
        assert_eq!(events.len(), 4);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn ring_keeps_most_recent_but_totals_survive() {
        let log = AuditLog::new(4);
        for i in 0..10u64 {
            log.push(AuditSeverity::Breach, "eps2_breach", "t", i, "x");
        }
        assert_eq!(log.events().len(), 4);
        assert_eq!(log.breaches(), 10, "totals must survive overwrite");
        assert_eq!(log.tail(2).len(), 2);
        assert_eq!(log.tail(2)[1].cycle, 9);
        log.clear();
        assert!(log.events().is_empty());
        assert_eq!(log.breaches(), 10, "clear must not forget breaches");
    }

    #[test]
    fn restore_preserves_sequence_numbers() {
        let log = AuditLog::new(8);
        let spilled = vec![
            AuditEvent {
                seq: 5,
                severity: AuditSeverity::Warning,
                code: "low_headroom".into(),
                tenant: "a".into(),
                cycle: 1,
                detail: "w".into(),
            },
            AuditEvent {
                seq: 9,
                severity: AuditSeverity::Breach,
                code: "eps2_breach".into(),
                tenant: "b".into(),
                cycle: 2,
                detail: "b".into(),
            },
        ];
        log.restore(&spilled);
        assert_eq!(log.events(), spilled);
        assert_eq!(log.breaches(), 1);
        let next = log.push(AuditSeverity::Info, "journal_spill", "", 0, "s");
        assert_eq!(next, 10, "fresh events continue after the restore");
    }

    #[test]
    fn event_roundtrips_through_json() {
        let event = AuditEvent {
            seq: 7,
            severity: AuditSeverity::Breach,
            code: "eps2_breach".into(),
            tenant: "tenant-3".into(),
            cycle: 12,
            detail: "exposure 0.50 above mask 0.00 and eps2 0.01".into(),
        };
        let json = serde_json::to_string(&event).unwrap();
        let back: AuditEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, event);
    }

    #[test]
    fn health_report_verdict() {
        let mut h = HealthReport::empty();
        assert_eq!(h.verdict(), "healthy");
        h.healthy = false;
        h.breaches = 1;
        assert_eq!(h.verdict(), "degraded");
        let json = serde_json::to_string(&h).unwrap();
        let back: HealthReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn concurrent_pushes_lose_no_totals() {
        let log = std::sync::Arc::new(AuditLog::new(32));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let log = log.clone();
                s.spawn(move || {
                    for i in 0..500u64 {
                        log.push(AuditSeverity::Breach, "eps2_breach", "t", i, "x");
                    }
                });
            }
        });
        assert_eq!(log.recorded(), 4000);
        assert_eq!(log.breaches(), 4000);
    }
}
